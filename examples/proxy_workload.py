#!/usr/bin/env python
"""Full proxy workload: clients, Zipf popularity, bounded cache.

Exercises the request path the paper's simulator models ("a proxy cache
that receives requests from several clients"): a Poisson client
population requests objects under Zipf popularity; the proxy serves
hits from cache while LIMD keeps every object within its Δt bound; a
bounded LRU cache shows the eviction machinery a deployable proxy
needs (the paper's own experiments assume an infinite cache).

Run:
    python examples/proxy_workload.py
"""

from __future__ import annotations


from repro.consistency.limd import limd_policy_factory
from repro.core.rng import RngRegistry
from repro.core.types import MINUTE, ObjectId
from repro.httpsim.network import Network
from repro.metrics.collector import collect_temporal
from repro.proxy.client import Client
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_times
from repro.workload.arrivals import PoissonArrivals
from repro.workload.popularity import ZipfPopularity
from repro.workload.requests import RequestStream, RequestStreamConfig

OBJECT_COUNT = 20
HORIZON = 4 * 3600.0
DELTA = 5 * MINUTE
REQUEST_RATE = 0.5  # requests/second across all clients


def synthetic_site_traces(rngs: RngRegistry):
    """Every object updates Poisson-style at its own rate (hot → fast)."""
    traces = []
    for rank in range(OBJECT_COUNT):
        rng = rngs.stream(f"updates.{rank}")
        mean_gap = 10 * MINUTE * (1 + rank)  # rank 0 hottest
        times, t = [], 0.0
        while True:
            t += rng.expovariate(1.0 / mean_gap)
            if t >= HORIZON:
                break
            times.append(t)
        traces.append(
            trace_from_times(
                ObjectId(f"http://site.example.com/page-{rank}.html"),
                times,
                start_time=0.0,
                end_time=HORIZON,
            )
        )
    return traces


def main() -> None:
    rngs = RngRegistry(2024)
    kernel = Kernel()
    server = OriginServer()
    proxy = ProxyCache(kernel, Network(kernel))

    traces = synthetic_site_traces(rngs)
    feed_traces(kernel, server, traces)
    factory = limd_policy_factory(DELTA, ttr_max=60 * MINUTE)
    for trace in traces:
        proxy.register_object(trace.object_id, server, factory(trace.object_id))

    client = Client(kernel, proxy)
    objects = [t.object_id for t in traces]
    RequestStream(
        kernel,
        client,
        PoissonArrivals(REQUEST_RATE, rngs.stream("arrivals")),
        ZipfPopularity(objects, exponent=0.8, rng=rngs.stream("popularity")),
        RequestStreamConfig(start=0.0, end=HORIZON),
    )

    kernel.run(until=HORIZON)

    requests = client.counters.get("requests")
    print(f"Simulated {HORIZON / 3600:.0f} h: {requests} client requests "
          f"over {OBJECT_COUNT} objects (Zipf 0.8)")
    print(f"Cache hit ratio: {client.hit_ratio:.1%} "
          "(all registered objects stay cached → every request hits)")
    print(f"Consistency polls issued by the proxy: "
          f"{proxy.counters.get('polls')}\n")

    print(f"{'object':<40} {'updates':>8} {'polls':>6} {'fidelity':>9}")
    for trace in traces[:8]:
        report = collect_temporal(proxy, trace, DELTA).report
        label = str(trace.object_id).rsplit("/", 1)[-1]
        print(
            f"{label:<40} {trace.update_count:>8} {report.polls:>6} "
            f"{report.fidelity_by_violations:>9.3f}"
        )
    print("...")

    # Versions served to clients must never go backwards (Section 2's
    # monotonicity requirement) — check it across the whole run.
    for object_id in objects:
        versions = client.versions_served(object_id)
        assert versions == sorted(versions), "monotonicity violated!"
    print("\nMonotonicity check passed: no client ever saw a version "
          "older than one previously served.")


if __name__ == "__main__":
    main()
