#!/usr/bin/env python
"""Sports scores: n-object mutual consistency for a live scoreboard.

The paper's second motivating example (Section 1): "a proxy should
ensure that scores of individual players and the overall score are
mutually consistent".  At the server the team total always equals the
sum of the player scores — every scoring event updates one player and
the total *atomically*.  A proxy caching six objects (five players plus
the total) with per-object consistency only will routinely show an
*impossible* scoreboard: the cached copies originate at different
server instants, so the cached total disagrees with the sum of the
cached player scores.

This example registers all six objects under LIMD (Δt = 60 s individual
staleness bound) and compares the paper's three Section 3.2 modes:

* **none** — baseline LIMD, no mutual support;
* **heuristic** — trigger partner polls only for partners changing at a
  similar-or-faster rate;
* **triggered** — on every detected update, poll every group partner
  (unless its previous/next poll falls within δ).

The scoreboard-skew metric is |cached total − Σ cached players|: zero
for a mutually consistent view, and bounded by the points scored in any
δ window when copies originate within δ of each other.

Run:
    python examples/sports_scores.py
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.consistency.limd import LimdPolicy
from repro.consistency.mutual_temporal import (
    MutualTemporalCoordinator,
    MutualTemporalMode,
)
from repro.consistency.mutual_value import group_f_history, total_minus_parts
from repro.core.types import TTRBounds
from repro.groups.registry import GroupRegistry
from repro.httpsim.network import Network
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel
from repro.traces.sports import SportsMatchSpec, generate_match

DELTA_T = 60.0  # individual bound: each cached copy at most 60 s stale
MUTUAL_DELTA = 10.0  # copies must originate within 10 s of each other
SKEW_TOLERANCE = 4.0  # points of scoreboard skew the user will notice
SEED = 20010401


def scoreboard_skew(
    knots: List[Tuple[float, float]], horizon: float
) -> Tuple[float, float]:
    """(max |skew|, fraction of time |skew| < tolerance) from f knots."""
    if not knots:
        return 0.0, 0.0
    worst = max(abs(f) for _, f in knots)
    consistent = 0.0
    for (time, f), (next_time, _next) in zip(
        knots, knots[1:] + [(horizon, 0.0)]
    ):
        if abs(f) < SKEW_TOLERANCE:
            consistent += max(0.0, next_time - time)
    span = horizon - knots[0][0]
    return worst, (consistent / span if span > 0 else 1.0)


def run_mode(traces, members, mode: MutualTemporalMode):
    """Assemble the full stack and run the match under one mutual mode."""
    kernel = Kernel()
    server = OriginServer()
    feed_traces(kernel, server, traces)
    proxy = ProxyCache(kernel, Network(kernel))
    groups = GroupRegistry()
    groups.create_group("scoreboard", members, MUTUAL_DELTA)
    coordinator = MutualTemporalCoordinator(proxy, groups, mode=mode)
    for trace in traces:
        proxy.register_object(
            trace.object_id,
            server,
            LimdPolicy(
                DELTA_T, bounds=TTRBounds(ttr_min=DELTA_T, ttr_max=600.0)
            ),
        )
    kernel.run(until=traces[0].end_time)
    return proxy, coordinator


def main() -> None:
    spec = SportsMatchSpec(scoring_events=240)
    match = generate_match(spec, random.Random(SEED))
    traces = [match.players[m] for m in match.players] + [match.total]
    members = tuple(t.object_id for t in traces)

    print(f"Match: {len(match.events)} scoring events over "
          f"{spec.duration / 60:.0f} minutes")
    for object_id, score in match.final_scores().items():
        print(f"  {object_id}: {score} points")
    print(f"  {match.total.object_id}: "
          f"{match.total.records[-1].value:.0f} points (= sum, by construction)")
    print(f"\nIndividual guarantee: every copy at most {DELTA_T:.0f} s stale "
          f"(LIMD)\nMutual guarantee sought: copies originate within "
          f"{MUTUAL_DELTA:.0f} s (Eq. 4, n objects)\n")

    print(f"{'mode':<10} {'polls':>6} {'extra polls':>12} "
          f"{'max skew':>9} {'within-4pt time':>16}")
    for mode in (
        MutualTemporalMode.NONE,
        MutualTemporalMode.HEURISTIC,
        MutualTemporalMode.TRIGGERED,
    ):
        proxy, coordinator = run_mode(traces, members, mode)
        knots = group_f_history(proxy, members, total_minus_parts)
        worst, fraction = scoreboard_skew(knots, spec.duration)
        print(f"{mode.value:<10} {proxy.counters.get('polls'):>6} "
              f"{coordinator.extra_polls:>12} {worst:>9.1f} "
              f"{fraction:>15.1%}")

    print(
        "\nTriggered polls re-synchronise all six copies whenever any"
        "\nmember is seen to change, collapsing the windows in which the"
        "\ncached total disagrees with the cached players — the residual"
        "\nskew is bounded by the source object's own detection latency."
    )


if __name__ == "__main__":
    main()
