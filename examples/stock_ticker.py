#!/usr/bin/env python
"""Stock ticker: value-domain mutual consistency for a price pair.

The paper's motivating example: a user watches two stocks to see if one
outperforms the other by more than δ dollars.  The proxy must keep
``f = price_a − price_b`` within δ of its server-side value (Eq. 5)
while polling as little as possible.

Compares the two Section 4.2 approaches on synthetic AT&T / Yahoo tick
traces calibrated to Table 3, at a user tolerance of δ = $0.60 (the
Figure 8 setting), and prints how tightly each approach tracked the
true difference.

Run:
    python examples/stock_ticker.py
"""

from __future__ import annotations

from repro.consistency.mutual_value import difference, paired_f_history
from repro.core.types import TTRBounds
from repro.api.runs import (
    run_mutual_value_adaptive,
    run_mutual_value_partitioned,
)
from repro.experiments.workloads import stock_trace
from repro.metrics.collector import collect_mutual_value

MUTUAL_DELTA = 0.60  # dollars
BOUNDS = TTRBounds(ttr_min=1.0, ttr_max=60.0)


def describe(trace) -> str:
    values = [r.value for r in trace.records]
    return (
        f"{trace.metadata.name}: {trace.update_count} ticks over "
        f"{trace.duration / 3600:.0f} h, "
        f"range [${min(values):.2f}, ${max(values):.2f}]"
    )


def main() -> None:
    att = stock_trace("att")
    yahoo = stock_trace("yahoo")
    print(describe(att))
    print(describe(yahoo))
    print(f"\nGuarantee: |f(server) − f(proxy)| < ${MUTUAL_DELTA:.2f} "
          f"where f = price difference\n")

    rows = []

    adaptive = run_mutual_value_adaptive(
        att, yahoo, MUTUAL_DELTA, bounds=BOUNDS
    )
    adaptive_report = collect_mutual_value(
        adaptive.proxy, att, yahoo, MUTUAL_DELTA, f=difference
    )
    rows.append(("adaptive-f", adaptive, adaptive_report))

    partitioned = run_mutual_value_partitioned(
        att, yahoo, MUTUAL_DELTA, bounds=BOUNDS
    )
    partitioned_report = collect_mutual_value(
        partitioned.proxy, att, yahoo, MUTUAL_DELTA, f=difference
    )
    rows.append(("partitioned", partitioned, partitioned_report))

    print(f"{'approach':<12} {'polls':>6} {'fidelity (Eq.13)':>17} "
          f"{'fidelity (Eq.14)':>17}")
    for name, _run, pair in rows:
        print(
            f"{name:<12} {pair.total_polls:>6} "
            f"{pair.report.fidelity_by_violations:>17.3f} "
            f"{pair.report.fidelity_by_time:>17.3f}"
        )

    # How tightly did each approach track the true difference?
    for name, run_result, _pair in rows:
        knots = paired_f_history(
            run_result.proxy, att.object_id, yahoo.object_id, difference
        )
        errors = []
        for time, proxy_f in knots:
            sa = att.latest_at(time)
            sb = yahoo.latest_at(time)
            if sa and sb and sa.value is not None and sb.value is not None:
                errors.append(abs(difference(sa.value, sb.value) - proxy_f))
        if errors:
            print(
                f"\n{name}: mean tracking error at refresh instants "
                f"${sum(errors) / len(errors):.4f} "
                f"(max ${max(errors):.4f} over {len(errors)} refreshes)"
            )

    if partitioned.partitioned is not None:
        delta_a, delta_b = partitioned.partitioned.current_split
        print(
            f"\nFinal partitioned split: AT&T gets δa = ${delta_a:.3f}, "
            f"Yahoo gets δb = ${delta_b:.3f} "
            "(the faster mover earns the tighter tolerance)"
        )


if __name__ == "__main__":
    main()
