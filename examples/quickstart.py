#!/usr/bin/env python
"""Quickstart: maintain Δt-consistency for one cached news page.

Builds the smallest useful simulation — one origin server, one object
driven by a synthetic news-update trace, one proxy running the paper's
LIMD algorithm — then reports the polls incurred and the fidelity
achieved, compared against the poll-every-Δ baseline.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MINUTE,
    collect_temporal,
    fixed_policy_factory,
    limd_policy_factory,
    news_trace,
    run_individual,
)


def main() -> None:
    # A synthetic trace calibrated to the paper's CNN/FN workload
    # (113 updates over ~49.5 hours, quiet at night).
    trace = news_trace("cnn_fn")
    delta = 10 * MINUTE  # the Δt-consistency bound we promise users

    print(f"Workload: {trace.metadata.name}")
    print(
        f"  {trace.update_count} updates over "
        f"{trace.duration / 3600:.1f} h "
        f"(one every {trace.duration / trace.update_count / 60:.1f} min)"
    )
    print(f"Guarantee: cached copy never more than {delta / 60:.0f} min stale\n")

    # --- LIMD: the paper's adaptive algorithm --------------------------
    limd_run = run_individual([trace], limd_policy_factory(delta))
    limd = collect_temporal(limd_run.proxy, trace, delta).report

    # --- Baseline: poll the server every Δ ------------------------------
    base_run = run_individual([trace], fixed_policy_factory(delta))
    base = collect_temporal(base_run.proxy, trace, delta).report

    print(f"{'approach':<10} {'polls':>6} {'fidelity (Eq.13)':>17} "
          f"{'fidelity (Eq.14)':>17}")
    for name, report in (("LIMD", limd), ("baseline", base)):
        print(
            f"{name:<10} {report.polls:>6} "
            f"{report.fidelity_by_violations:>17.3f} "
            f"{report.fidelity_by_time:>17.3f}"
        )

    saved = 1 - limd.polls / base.polls
    print(
        f"\nLIMD used {saved:.0%} fewer polls than the baseline while "
        f"keeping {limd.fidelity_by_time:.0%} of the time in bound."
    )


if __name__ == "__main__":
    main()
