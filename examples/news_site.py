#!/usr/bin/env python
"""Breaking-news site: mutual consistency for a story and its media.

The paper's motivating example #1: a breaking-news story consists of an
HTML page plus embedded images and clips, all updated as the story
develops.  A proxy must keep the cached pieces *mutually* consistent —
users should never see a caption from revision 7 next to a photo from
revision 3.

This example:

1. parses the story HTML to discover embedded objects (the Section 5.2
   syntactic relationship extraction),
2. builds a dependency graph and a mutual-consistency group from it,
3. runs LIMD + triggered polls over correlated update traces, and
4. reports polls, individual fidelity, and mutual fidelity vs a
   baseline without mutual support.

Run:
    python examples/news_site.py
"""

from __future__ import annotations

import random

from repro.consistency.limd import LimdParameters, limd_policy_factory
from repro.consistency.mutual_temporal import (
    MutualTemporalCoordinator,
    MutualTemporalMode,
)
from repro.core.types import MINUTE, ObjectId
from repro.groups.dependency import DependencyGraph
from repro.groups.html_links import relate_document
from repro.groups.registry import GroupRegistry, groups_from_components
from repro.httpsim.network import Network
from repro.metrics.collector import collect_mutual_synchrony, collect_temporal
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel
from repro.traces.synthetic import FollowerSpec, correlated_group_traces

STORY_URL = "http://news.example.com/breaking/quake.html"
STORY_HTML = """
<html>
  <head><link rel="stylesheet" href="/styles/breaking.css"></head>
  <body>
    <h1>Earthquake strikes — live updates</h1>
    <img src="/media/quake-photo.jpg" alt="damage">
    <video src="/media/quake-clip.mp4"></video>
    <a href="/world/index.html">More world news</a>
  </body>
</html>
"""

DELTA = 5 * MINUTE         # individual staleness bound
MUTUAL_DELTA = 2 * MINUTE  # members must originate within 2 min
HORIZON = 6 * 3600.0       # simulate six hours of the story


def correlated_story_traces(object_ids, *, seed=7):
    """Updates for a developing story: bursts hitting page + media.

    Every burst always updates the HTML; each media object joins the
    burst with some probability (captions change more often than the
    video is re-cut), with a small per-object lag.
    """
    rng = random.Random(seed)
    page, *media = object_ids
    followers = [
        FollowerSpec(
            str(oid),
            join_probability=(0.8, 0.5, 0.3)[index % 3],
            max_lag=60.0,
        )
        for index, oid in enumerate(media)
    ]
    traces = correlated_group_traces(
        str(page),
        followers,
        rng,
        burst_rate=1 / (25 * MINUTE),
        end=HORIZON,
    )
    # Keep the page first; drop members that never updated.
    ordered = [traces[page]] + [
        traces[oid] for oid in media if traces[oid].update_count > 0
    ]
    return ordered


def run_once(mode: MutualTemporalMode):
    kernel = Kernel()
    server = OriginServer()
    proxy = ProxyCache(kernel, Network(kernel))

    # 1. Discover the story's embedded objects syntactically.
    graph = DependencyGraph()
    embedded = relate_document(graph, STORY_URL, STORY_HTML)
    members = [ObjectId(STORY_URL), *embedded]

    # 2. One mutual-consistency group per connected component.
    registry = GroupRegistry()
    for spec in groups_from_components(graph, mutual_delta=MUTUAL_DELTA):
        registry.add_group(spec)

    coordinator = MutualTemporalCoordinator(proxy, registry, mode=mode)

    # 3. Drive the origin with correlated story updates and register
    #    every member under LIMD.
    traces = correlated_story_traces(members)
    feed_traces(kernel, server, traces)
    factory = limd_policy_factory(
        DELTA, ttr_max=60 * MINUTE, parameters=LimdParameters()
    )
    for trace in traces:
        proxy.register_object(trace.object_id, server, factory(trace.object_id))

    kernel.run(until=HORIZON)
    return proxy, coordinator, traces


def main() -> None:
    print(f"Story page: {STORY_URL}")
    print(
        f"Guarantees: delta = {DELTA / 60:.0f} min, "
        f"mutual delta = {MUTUAL_DELTA / 60:.0f} min\n"
    )

    results = {}
    for mode in (MutualTemporalMode.NONE, MutualTemporalMode.TRIGGERED):
        proxy, coordinator, traces = run_once(mode)
        total_polls = proxy.counters.get("polls")
        page_trace = traces[0]
        individual = collect_temporal(proxy, page_trace, DELTA).report
        # Mutual fidelity of the page against each media object.
        mutual_fidelities = []
        for media_trace in traces[1:]:
            pair = collect_mutual_synchrony(
                proxy,
                page_trace.object_id,
                media_trace.object_id,
                MUTUAL_DELTA,
            )
            mutual_fidelities.append(pair.report.fidelity_by_violations)
        worst_mutual = min(mutual_fidelities) if mutual_fidelities else 1.0
        results[mode] = (total_polls, individual, worst_mutual, coordinator)

    print(
        f"{'mode':<12} {'polls':>6} {'page fidelity':>14} "
        f"{'worst mutual':>13} {'extra polls':>12}"
    )
    for mode, (polls, individual, worst, coordinator) in results.items():
        print(
            f"{mode.value:<12} {polls:>6} "
            f"{individual.fidelity_by_violations:>14.3f} "
            f"{worst:>13.3f} {coordinator.extra_polls:>12}"
        )

    none_polls = results[MutualTemporalMode.NONE][0]
    trig_polls = results[MutualTemporalMode.TRIGGERED][0]
    print(
        f"\nTriggered polls changed the total poll count by "
        f"{(trig_polls - none_polls) / none_polls:+.1%} (triggered polls "
        "keep partners fresh, so their own scheduled polls find 304s and "
        "back off) and raised the worst-pair mutual fidelity from "
        f"{results[MutualTemporalMode.NONE][2]:.3f} to "
        f"{results[MutualTemporalMode.TRIGGERED][2]:.3f}."
    )


if __name__ == "__main__":
    main()
