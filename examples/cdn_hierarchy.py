#!/usr/bin/env python
"""CDN-style hierarchy: edge proxies behind a shared parent cache.

The paper studies one proxy against one origin; its related work
(hierarchical WAN caching, refs [10] and [11]) motivates this scenario:
several regional edge proxies serve clients, all fed by one parent
proxy that alone talks to the origin.  Every level runs the paper's
LIMD policy against the level above it.

Two effects are on display:

* **origin offload** — the origin answers only the parent's polls, no
  matter how many edges exist;
* **staleness composition** — each level adds up to its own Δ of
  staleness, so an edge honours roughly 2Δ against the origin.  The
  snapshot-based fidelity metric (which evaluates the versions the edge
  *actually held*, not just when it polled) quantifies this.

Run:
    python examples/cdn_hierarchy.py
"""

from __future__ import annotations

from repro.consistency.limd import LimdPolicy
from repro.core.types import MINUTE, TTRBounds
from repro.experiments.workloads import news_trace
from repro.httpsim.network import Network
from repro.metrics.fidelity import temporal_fidelity_from_snapshots
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel

DELTA = 10 * MINUTE  # per-level staleness bound
EDGE_COUNT = 4


def limd_policy() -> LimdPolicy:
    return LimdPolicy(
        DELTA, bounds=TTRBounds(ttr_min=DELTA, ttr_max=60 * MINUTE)
    )


def edge_fidelity(trace, proxy, delta) -> float:
    fetch_log = proxy.entry_for(trace.object_id).fetch_log
    return temporal_fidelity_from_snapshots(
        trace, fetch_log, delta
    ).fidelity_by_time


def main() -> None:
    trace = news_trace("cnn_fn")
    print(f"Workload: {trace.metadata.name}, {trace.update_count} updates "
          f"over {trace.duration / 3600:.0f} h\n")

    kernel = Kernel()
    origin = OriginServer(name="origin")
    feed_traces(kernel, origin, [trace])

    parent = ProxyCache(kernel, Network(kernel), name="parent")
    parent.register_object(trace.object_id, origin, limd_policy())

    edges = []
    for index in range(EDGE_COUNT):
        edge = ProxyCache(kernel, Network(kernel), name=f"edge-{index}")
        edge.register_object(trace.object_id, parent, limd_policy())
        edges.append(edge)

    kernel.run(until=trace.end_time)

    print(f"origin requests: {origin.counters.get('requests')} "
          f"(all from the parent — {EDGE_COUNT} edges never reach it)")
    print(f"parent polls of origin: {parent.counters.get('polls')}")
    print(f"parent requests served downstream: "
          f"{parent.counters.get('downstream_requests')}\n")

    print(f"{'proxy':<9} {'polls':>6} {'fidelity @ Δ':>13} "
          f"{'fidelity @ 2Δ':>14}")
    print(f"{'parent':<9} {parent.counters.get('polls'):>6} "
          f"{edge_fidelity(trace, parent, DELTA):>13.3f} "
          f"{edge_fidelity(trace, parent, 2 * DELTA):>14.3f}")
    for edge in edges:
        print(f"{edge.name:<9} {edge.counters.get('polls'):>6} "
              f"{edge_fidelity(trace, edge, DELTA):>13.3f} "
              f"{edge_fidelity(trace, edge, 2 * DELTA):>14.3f}")

    print(
        "\nThe parent honours Δ against the origin; each edge honours Δ"
        "\nagainst the parent, hence ~2Δ against the origin — staleness"
        "\nbounds compose additively down a hierarchy."
    )


if __name__ == "__main__":
    main()
