"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.rng import RngRegistry
from repro.core.types import ObjectId
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_ticks, trace_from_times


@pytest.fixture
def kernel() -> Kernel:
    """A fresh simulation kernel starting at t=0."""
    return Kernel()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for direct use in tests."""
    return random.Random(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    """A deterministic RNG registry."""
    return RngRegistry(12345)


@pytest.fixture
def simple_trace():
    """A small temporal trace: updates at t = 100, 200, ..., 1000."""
    return trace_from_times(
        ObjectId("obj"),
        [100.0 * i for i in range(1, 11)],
        start_time=0.0,
        end_time=1100.0,
    )


@pytest.fixture
def valued_trace():
    """A small value trace: ticks every 10 s, value ramps 0 → 99."""
    return trace_from_ticks(
        ObjectId("stock"),
        [(10.0 * (i + 1), float(i)) for i in range(100)],
        start_time=0.0,
        end_time=1010.0,
    )
