"""Unit tests for the generic synthetic workload builders."""

from __future__ import annotations

import random

import pytest

from repro.core.types import ObjectId
from repro.traces.synthetic import (
    FollowerSpec,
    correlated_group_traces,
    poisson_trace,
    poisson_update_times,
    random_walk_trace,
)


class TestPoisson:
    def test_rate_roughly_matched(self, rng):
        times = poisson_update_times(rng, rate=0.1, end=100000.0)
        assert len(times) == pytest.approx(10000, rel=0.05)

    def test_times_inside_window_and_sorted(self, rng):
        times = poisson_update_times(rng, rate=0.5, start=100.0, end=200.0)
        assert all(100.0 < t < 200.0 for t in times)
        assert times == sorted(times)

    def test_invalid_window_rejected(self, rng):
        with pytest.raises(ValueError):
            poisson_update_times(rng, rate=1.0, start=10.0, end=10.0)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            poisson_update_times(rng, rate=0.0, end=10.0)

    def test_poisson_trace_wrapping(self, rng):
        trace = poisson_trace("obj", rng, rate=0.05, end=10000.0)
        assert trace.object_id == ObjectId("obj")
        assert trace.start_time == 0.0
        assert trace.end_time == 10000.0
        assert trace.metadata.source == "synthetic:poisson"


class TestCorrelatedGroup:
    def _build(self, rng, join=0.5, max_lag=30.0):
        followers = [
            FollowerSpec("img", join_probability=join, max_lag=max_lag),
            FollowerSpec("clip", join_probability=join / 2, max_lag=max_lag),
        ]
        return correlated_group_traces(
            "page", followers, rng, burst_rate=1 / 600.0, end=7 * 24 * 3600.0
        )

    def test_all_members_present(self, rng):
        traces = self._build(rng)
        assert set(traces) == {
            ObjectId("page"), ObjectId("img"), ObjectId("clip")
        }

    def test_leader_updates_most(self, rng):
        traces = self._build(rng)
        assert (
            traces[ObjectId("page")].update_count
            >= traces[ObjectId("img")].update_count
            >= traces[ObjectId("clip")].update_count
        )

    def test_join_probability_respected(self, rng):
        traces = self._build(rng, join=0.5)
        ratio = (
            traces[ObjectId("img")].update_count
            / traces[ObjectId("page")].update_count
        )
        assert ratio == pytest.approx(0.5, abs=0.1)

    def test_follower_updates_lag_bursts(self, rng):
        traces = self._build(rng, join=1.0, max_lag=30.0)
        page_times = [r.time for r in traces[ObjectId("page")].records]
        for record in traces[ObjectId("img")].records:
            nearest = min(abs(record.time - t) for t in page_times)
            assert nearest <= 30.0 + 1e-9

    def test_zero_lag_is_simultaneous(self, rng):
        followers = [FollowerSpec("img", join_probability=1.0, max_lag=0.0)]
        traces = correlated_group_traces(
            "page", followers, rng, burst_rate=1 / 100.0, end=10000.0
        )
        page_times = {r.time for r in traces[ObjectId("page")].records}
        img_times = {r.time for r in traces[ObjectId("img")].records}
        assert img_times <= page_times

    def test_invalid_follower_spec_rejected(self):
        with pytest.raises(ValueError):
            FollowerSpec("x", join_probability=1.5)
        with pytest.raises(ValueError):
            FollowerSpec("x", join_probability=0.5, max_lag=-1.0)


class TestRandomWalk:
    def test_regular_tick_spacing(self, rng):
        trace = random_walk_trace(
            "w", rng, tick_interval=5.0, end=100.0
        )
        times = [r.time for r in trace.records]
        assert times == [5.0 * i for i in range(1, len(times) + 1)]

    def test_values_present_and_finite(self, rng):
        trace = random_walk_trace("w", rng, tick_interval=1.0, end=500.0)
        assert trace.has_values
        assert all(abs(r.value) < 1e6 for r in trace.records)

    def test_mean_reversion_bounds_excursions(self):
        wild = random_walk_trace(
            "a", random.Random(5), tick_interval=1.0, end=20000.0,
            step_sigma=1.0, mean_reversion=0.0,
        )
        tame = random_walk_trace(
            "b", random.Random(5), tick_interval=1.0, end=20000.0,
            step_sigma=1.0, mean_reversion=0.1,
        )
        def spread(trace):
            values = [r.value for r in trace.records]
            return max(values) - min(values)
        assert spread(tame) < spread(wild)

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            random_walk_trace("w", rng, tick_interval=0.0, end=10.0)
        with pytest.raises(ValueError):
            random_walk_trace(
                "w", rng, tick_interval=1.0, end=10.0, mean_reversion=1.0
            )


class TestPropertyRoundTrips:
    def test_csv_round_trip_of_synthetic_traces(self, rng):
        from repro.traces.io import trace_from_csv_string, trace_to_csv_string

        for maker in (
            lambda: poisson_trace("p", rng, rate=0.01, end=5000.0),
            lambda: random_walk_trace("w", rng, tick_interval=7.0, end=5000.0),
        ):
            trace = maker()
            back = trace_from_csv_string(
                trace_to_csv_string(trace), str(trace.object_id),
                start_time=trace.start_time, end_time=trace.end_time,
            )
            assert [(r.time, r.version, r.value) for r in back.records] == [
                (r.time, r.version, r.value) for r in trace.records
            ]
