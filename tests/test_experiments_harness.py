"""Unit tests for the experiment harness: sweep, render, workloads."""

from __future__ import annotations

import math

import pytest

from repro.analysis.timeseries import Series
from repro.core.errors import ExperimentError
from repro.experiments.render import (
    format_cell,
    render_dict_rows,
    render_series,
    render_series_block,
    render_table,
)
from repro.experiments.sweep import run_sweep
from repro.experiments.workloads import (
    DEFAULT_SEED,
    news_trace,
    news_traces,
    stock_trace,
    stock_traces,
)


class TestSweep:
    def test_rows_carry_parameter_and_builder_columns(self):
        result = run_sweep("x", [1.0, 2.0], lambda x: {"square": x * x})
        assert result.values() == [1.0, 2.0]
        assert result.column("square") == [1.0, 4.0]

    def test_extra_columns_merged(self):
        result = run_sweep(
            "x", [1.0], lambda x: {"y": 2.0}, extra_columns={"trace": "cnn"}
        )
        assert result.rows[0]["trace"] == "cnn"

    def test_builder_cannot_override_parameter(self):
        with pytest.raises(ExperimentError, match="reserved"):
            run_sweep("x", [1.0], lambda x: {"x": 99.0})

    def test_missing_column_raises(self):
        result = run_sweep("x", [1.0], lambda x: {"y": 1.0})
        with pytest.raises(ExperimentError, match="missing"):
            result.column("z")

    def test_row_for_matches_value(self):
        result = run_sweep("x", [1.0, 2.0], lambda x: {"y": x})
        assert result.row_for(2.0)["y"] == 2.0
        with pytest.raises(ExperimentError):
            result.row_for(3.0)


class TestRender:
    def test_format_cell_variants(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(1.0) == "1"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"
        assert format_cell("text") == "text"
        assert format_cell(1e-9) == "1e-09"

    def test_render_table_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_render_dict_rows_infers_columns(self):
        out = render_dict_rows([{"a": 1, "b": 2}])
        assert "a" in out and "b" in out

    def test_render_dict_rows_empty(self):
        assert "(empty)" in render_dict_rows([], title="T")

    def test_render_series_shows_range(self):
        series = Series(start=0.0, bin_width=1.0, values=(0.0, 5.0, 10.0),
                        label="s")
        out = render_series(series)
        assert "s" in out
        assert "[0, 10]" in out

    def test_render_series_handles_nan(self):
        series = Series(
            start=0.0, bin_width=1.0, values=(math.nan, 1.0), label="s"
        )
        out = render_series(series)
        assert "_" in out

    def test_render_series_downsamples(self):
        series = Series(
            start=0.0, bin_width=1.0, values=tuple(float(i) for i in range(100)),
            label="s",
        )
        out = render_series(series, width=10)
        body = out.split("|")[1]
        assert len(body) == 10

    def test_render_series_block(self):
        a = Series(start=0.0, bin_width=1.0, values=(1.0,), label="a")
        b = Series(start=0.0, bin_width=1.0, values=(2.0,), label="b")
        out = render_series_block([a, b], title="Block")
        assert out.splitlines()[0] == "Block"
        assert len(out.splitlines()) == 3


class TestWorkloads:
    def test_news_traces_deterministic(self):
        t1 = news_traces(123)["cnn_fn"]
        t2 = news_traces(123)["cnn_fn"]
        assert [r.time for r in t1.records] == [r.time for r in t2.records]

    def test_different_seeds_differ(self):
        t1 = news_trace("cnn_fn", 1)
        t2 = news_trace("cnn_fn", 2)
        assert [r.time for r in t1.records] != [r.time for r in t2.records]

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError):
            news_trace("bbc")
        with pytest.raises(KeyError):
            stock_trace("msft")

    def test_stock_traces_have_values(self):
        for trace in stock_traces(DEFAULT_SEED).values():
            assert trace.has_values
