"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.trace == "cnn_fn"
        assert args.pair == ("cnn_fn", "nyt_ap")

    def test_seed_option(self):
        args = build_parser().parse_args(["figure3", "--seed", "7"])
        assert args.seed == 7

    def test_pair_option(self):
        args = build_parser().parse_args(
            ["figure5", "--pair", "guardian", "nyt_ap"]
        )
        assert args.pair == ["guardian", "nyt_ap"]

    def test_invalid_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3", "--trace", "bbc"])

    def test_workers_option(self):
        args = build_parser().parse_args(["figure5", "--workers", "4"])
        assert args.workers == 4

    def test_workers_defaults_to_serial(self):
        assert build_parser().parse_args(["table2"]).workers is None

    def test_nonpositive_workers_rejected(self):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["figure3", "--workers", bad])


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "table2" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["figure99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_table2_prints_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CNN" in out
        assert "Guardian" in out

    def test_table3_prints_table(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "AT&T" in out

    def test_table2_with_workers_matches_serial(self, capsys):
        assert main(["table2"]) == 0
        serial = capsys.readouterr().out
        assert main(["table2", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_figure4_runs(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "TTR" in out

    def test_hierarchy_runs(self, capsys):
        assert main(["hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "flat" in out and "hierarchy" in out
        assert "origin_requests" in out


class TestApiReference:
    def test_api_md_is_in_sync_with_docstrings(self):
        """docs/API.md must match what tools/gen_api_md.py generates."""
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "gen_api_md", root / "tools" / "gen_api_md.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        expected = module.generate()
        actual = (root / "docs" / "API.md").read_text()
        assert actual == expected, (
            "docs/API.md is stale; run `python tools/gen_api_md.py`"
        )
