"""Deprecation shims: old entry points warn *and* behave identically.

The pytest configuration turns :class:`ReproDeprecationWarning` into an
error suite-wide (``filterwarnings`` in ``pyproject.toml``), so any
in-repo caller still on a deprecated path fails loudly.  This module is
the one place the shims are exercised on purpose — ``pytest.warns``
both asserts the warning and keeps it from escalating.
"""

from __future__ import annotations

import warnings
from functools import partial

import pytest

from repro import api
from repro.api.deprecation import ReproDeprecationWarning
from repro.consistency.base import fixed_policy_factory
from repro.core.types import ObjectId
from repro.experiments import runner
from repro.scenarios import registry as scenario_registry
from repro.traces.model import trace_from_times


@pytest.fixture
def trace():
    return trace_from_times(
        ObjectId("obj"),
        [100.0 * i for i in range(1, 11)],
        start_time=0.0,
        end_time=1100.0,
    )


class TestRunnerShims:
    def test_run_individual_warns_and_matches(self, trace):
        with pytest.warns(
            ReproDeprecationWarning, match="repro.api.run_individual"
        ):
            old = runner.run_individual([trace], fixed_policy_factory(200.0))
        new = api.run_individual([trace], fixed_policy_factory(200.0))
        assert old.total_polls == new.total_polls
        assert old.polls_of(trace.object_id) == new.polls_of(trace.object_id)
        # Same class object on both paths: isinstance keeps working.
        assert type(old) is api.RunResult

    def test_run_many_warns_and_matches(self):
        tasks = [partial(int, "7"), partial(int, "8")]
        with pytest.warns(ReproDeprecationWarning, match="repro.api.run_many"):
            old = runner.run_many(tasks)
        assert old == api.run_many(tasks) == [7, 8]

    def test_build_stack_helper_warns(self, trace):
        with pytest.warns(
            ReproDeprecationWarning, match="repro.api.build_stack"
        ):
            kernel, server, proxy, event_log = runner._build_stack(
                [trace],
                supports_history=True,
                want_history=True,
            )
        assert proxy is not None

    @pytest.mark.parametrize(
        "name",
        [
            "run_mutual_temporal",
            "run_mutual_value_adaptive",
            "run_mutual_value_partitioned",
            "run_mutual_value_group",
        ],
    )
    def test_every_run_function_is_shimmed(self, name):
        shim = getattr(runner, name)
        assert shim is not getattr(api, name)
        assert f"repro.api.{name}" in (shim.__doc__ or "")

    def test_importing_runner_module_does_not_warn(self):
        import importlib

        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            importlib.reload(runner)


class TestScenarioRegistryShims:
    def test_get_scenario_warns_and_matches(self):
        with pytest.warns(ReproDeprecationWarning, match="SCENARIOS.get"):
            old = scenario_registry.get_scenario("figure3")
        assert old is scenario_registry.SCENARIOS.get("figure3")

    def test_scenario_names_warns_and_matches(self):
        with pytest.warns(ReproDeprecationWarning, match="SCENARIOS.names"):
            old = scenario_registry.scenario_names()
        assert old == scenario_registry.SCENARIOS.names()

    def test_list_scenarios_warns_and_matches(self):
        with pytest.warns(ReproDeprecationWarning, match="SCENARIOS.values"):
            old = scenario_registry.list_scenarios()
        assert [e.spec.name for e in old] == scenario_registry.SCENARIOS.names()

    def test_unknown_name_still_raises_through_shim(self):
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(
                scenario_registry.UnknownScenarioError, match="no_such"
            ):
                scenario_registry.get_scenario("no_such")


class TestSuiteWideEscalation:
    def test_repro_deprecations_are_errors_outside_this_module(self):
        """The pytest filter turns the shim warning into an error."""
        import repro.api.deprecation as deprecation

        with pytest.raises(ReproDeprecationWarning):
            with warnings.catch_warnings():
                warnings.simplefilter("error", ReproDeprecationWarning)
                deprecation.warn_deprecated("old", "new")
