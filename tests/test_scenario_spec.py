"""Unit tests for ScenarioSpec serialization and validation."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.spec import (
    ScenarioSpec,
    ScenarioSpecError,
    parse_param_overrides,
)


def make_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        name="toy",
        description="a toy scenario",
        axis="delta_min",
        values=(1.0, 2.0, 5.0),
        params={"trace": "cnn_fn", "knob": 3, "nested": {"a": [1, 2]}},
        columns=("delta_min", "polls"),
        title="Toy scenario",
        tags=("test",),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = make_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self):
        spec = make_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_serializable(self):
        # Nested tuples in params must come out as plain lists.
        payload = json.dumps(make_spec().to_dict())
        restored = ScenarioSpec.from_dict(json.loads(payload))
        assert restored == make_spec()

    def test_minimal_spec_round_trips(self):
        spec = ScenarioSpec(
            name="mini", description="d", axis="x", values=(1,)
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_string_axis_values_survive(self):
        spec = make_spec(values=("flat", "hierarchy"))
        assert ScenarioSpec.from_json(spec.to_json()).values == (
            "flat",
            "hierarchy",
        )

    def test_every_registered_spec_round_trips(self):
        from repro.scenarios.registry import SCENARIOS

        for entry in SCENARIOS.values():
            spec = entry.spec
            assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestRejection:
    def test_unknown_field_rejected(self):
        data = make_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ScenarioSpecError, match="unknown spec field"):
            ScenarioSpec.from_dict(data)

    def test_missing_required_field_rejected(self):
        data = make_spec().to_dict()
        del data["axis"]
        with pytest.raises(ScenarioSpecError, match="missing spec field"):
            ScenarioSpec.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ScenarioSpecError, match="must be a mapping"):
            ScenarioSpec.from_dict([("name", "x")])  # type: ignore[arg-type]

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioSpecError, match="invalid spec JSON"):
            ScenarioSpec.from_json("{not json")

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioSpecError, match="name"):
            make_spec(name="")

    def test_non_string_name_rejected(self):
        with pytest.raises(ScenarioSpecError, match="name must be a string"):
            make_spec(name=3)

    def test_empty_values_rejected(self):
        with pytest.raises(ScenarioSpecError, match="values"):
            make_spec(values=())

    def test_bool_axis_value_rejected(self):
        with pytest.raises(ScenarioSpecError, match="axis values"):
            make_spec(values=(True,))

    def test_non_scalar_axis_value_rejected(self):
        with pytest.raises(ScenarioSpecError, match="axis values"):
            make_spec(values=([1, 2],))

    def test_scalar_values_rejected(self):
        with pytest.raises(ScenarioSpecError, match="values must be a sequence"):
            make_spec(values=7)

    def test_non_string_param_key_rejected(self):
        with pytest.raises(ScenarioSpecError, match="param names"):
            make_spec(params={3: "x"})

    def test_non_jsonable_param_value_rejected(self):
        with pytest.raises(ScenarioSpecError, match="non-JSON-serializable"):
            make_spec(params={"bad": object()})

    def test_non_jsonable_nested_param_rejected(self):
        with pytest.raises(ScenarioSpecError, match="non-JSON-serializable"):
            make_spec(params={"bad": {"deep": [object()]}})

    def test_non_string_columns_rejected(self):
        with pytest.raises(ScenarioSpecError, match="columns"):
            make_spec(columns=(1, 2))


class TestOverrides:
    def test_with_params_merges(self):
        spec = make_spec().with_params({"knob": 9})
        assert spec.params["knob"] == 9
        assert spec.params["trace"] == "cnn_fn"

    def test_with_params_rejects_unknown(self):
        with pytest.raises(ScenarioSpecError, match="unknown parameter"):
            make_spec().with_params({"typo": 1})

    def test_with_params_does_not_mutate_original(self):
        original = make_spec()
        original.with_params({"knob": 9})
        assert original.params["knob"] == 3

    def test_with_values_replaces(self):
        assert make_spec().with_values([7.0]).values == (7.0,)


class TestParamOverridesParsing:
    def test_json_values_parsed(self):
        parsed = parse_param_overrides(
            ["a=1", "b=2.5", "c=true", 'd=[1,2]', 'e={"k":1}']
        )
        assert parsed == {
            "a": 1,
            "b": 2.5,
            "c": True,
            "d": [1, 2],
            "e": {"k": 1},
        }

    def test_bare_strings_fall_back(self):
        assert parse_param_overrides(["trace=guardian"]) == {
            "trace": "guardian"
        }

    def test_missing_equals_rejected(self):
        with pytest.raises(ScenarioSpecError, match="malformed"):
            parse_param_overrides(["nope"])

    def test_empty_key_rejected(self):
        with pytest.raises(ScenarioSpecError, match="malformed"):
            parse_param_overrides(["=3"])
