"""End-to-end integration tests: full stacks over calibrated workloads.

These reproduce the paper's headline claims in miniature (small traces
where exact behaviour is predictable, plus seeded slices of the real
experiment workloads), crossing every module boundary: trace → feeder →
server → network → proxy → policy → metrics.
"""

from __future__ import annotations

import pytest

from repro.consistency.base import fixed_policy_factory
from repro.consistency.limd import limd_policy_factory
from repro.consistency.mutual_temporal import MutualTemporalMode
from repro.core.types import MINUTE, ObjectId, TTRBounds
from repro.api.runs import (
    run_individual,
    run_mutual_temporal,
    run_mutual_value_adaptive,
    run_mutual_value_partitioned,
)
from repro.experiments.workloads import news_trace, stock_trace
from repro.metrics.collector import (
    collect_mutual_synchrony,
    collect_mutual_value,
    collect_temporal,
)
from repro.traces.model import trace_from_times


class TestIndividualTemporalEndToEnd:
    def test_baseline_perfect_fidelity_on_real_workload(self):
        trace = news_trace("nyt_ap")
        delta = 10 * MINUTE
        result = run_individual([trace], fixed_policy_factory(delta))
        report = collect_temporal(result.proxy, trace, delta).report
        assert report.violations == 0
        assert report.fidelity_by_violations == 1.0
        assert report.fidelity_by_time == 1.0
        # Baseline polls ≈ duration / delta (+1 initial fetch).
        expected = int(trace.duration // delta) + 1
        assert report.polls == pytest.approx(expected, abs=2)

    def test_limd_beats_baseline_on_poll_count(self):
        trace = news_trace("cnn_fn")
        delta = 5 * MINUTE
        limd = run_individual([trace], limd_policy_factory(delta))
        base = run_individual([trace], fixed_policy_factory(delta))
        limd_polls = limd.polls_of(trace.object_id)
        base_polls = base.polls_of(trace.object_id)
        assert limd_polls < base_polls
        # And retains reasonable fidelity.
        report = collect_temporal(limd.proxy, trace, delta).report
        assert report.fidelity_by_violations >= 0.7

    def test_limd_converges_to_baseline_for_loose_delta(self):
        trace = news_trace("cnn_fn")
        delta = 60 * MINUTE  # looser than the mean update interval
        # The paper's configuration pins TTR_max = 60 min, so at
        # Δ = 60 min the TTR is clamped to exactly Δ and LIMD behaves
        # like the baseline.
        limd = run_individual(
            [trace], limd_policy_factory(delta, ttr_max=60 * MINUTE)
        )
        base = run_individual([trace], fixed_policy_factory(delta))
        assert limd.polls_of(trace.object_id) == pytest.approx(
            base.polls_of(trace.object_id), rel=0.1
        )

    def test_multiple_objects_run_independently(self):
        traces = [news_trace("cnn_fn"), news_trace("nyt_ap")]
        delta = 10 * MINUTE
        result = run_individual(traces, limd_policy_factory(delta))
        for trace in traces:
            assert result.polls_of(trace.object_id) > 10
        assert result.total_polls == sum(
            result.polls_of(t.object_id) for t in traces
        )

    def test_deterministic_across_runs(self):
        trace = news_trace("guardian")
        delta = 10 * MINUTE
        first = run_individual([trace], limd_policy_factory(delta))
        second = run_individual([trace], limd_policy_factory(delta))
        assert first.total_polls == second.total_polls


class TestMutualTemporalEndToEnd:
    def test_triggered_operational_fidelity_is_one(self):
        trace_a = news_trace("cnn_fn")
        trace_b = news_trace("nyt_ap")
        delta = 10 * MINUTE
        mutual_delta = 2 * MINUTE
        result = run_mutual_temporal(
            trace_a,
            trace_b,
            limd_policy_factory(delta),
            mutual_delta,
            MutualTemporalMode.TRIGGERED,
        )
        pair = collect_mutual_synchrony(
            result.proxy, trace_a.object_id, trace_b.object_id, mutual_delta
        )
        assert pair.report.fidelity_by_violations == 1.0

    def test_heuristic_cheaper_than_triggered(self):
        trace_a = news_trace("cnn_fn")
        trace_b = news_trace("nyt_ap")
        delta = 10 * MINUTE
        mutual_delta = 1 * MINUTE
        triggered = run_mutual_temporal(
            trace_a, trace_b, limd_policy_factory(delta),
            mutual_delta, MutualTemporalMode.TRIGGERED,
        )
        heuristic = run_mutual_temporal(
            trace_a, trace_b, limd_policy_factory(delta),
            mutual_delta, MutualTemporalMode.HEURISTIC,
        )
        assert (
            heuristic.mutual_coordinator.extra_polls
            <= triggered.mutual_coordinator.extra_polls
        )

    def test_baseline_mode_never_triggers(self):
        trace_a = news_trace("cnn_fn")
        trace_b = news_trace("nyt_ap")
        result = run_mutual_temporal(
            trace_a, trace_b, limd_policy_factory(10 * MINUTE),
            2 * MINUTE, MutualTemporalMode.NONE,
        )
        assert result.mutual_coordinator.extra_polls == 0


class TestMutualValueEndToEnd:
    BOUNDS = TTRBounds(ttr_min=1.0, ttr_max=60.0)

    def test_partitioned_beats_adaptive_on_fidelity(self):
        att = stock_trace("att")
        yahoo = stock_trace("yahoo")
        delta = 1.0
        adaptive = run_mutual_value_adaptive(att, yahoo, delta, bounds=self.BOUNDS)
        partitioned = run_mutual_value_partitioned(
            att, yahoo, delta, bounds=self.BOUNDS
        )
        adaptive_f = collect_mutual_value(
            adaptive.proxy, att, yahoo, delta
        ).report.fidelity_by_violations
        partitioned_f = collect_mutual_value(
            partitioned.proxy, att, yahoo, delta
        ).report.fidelity_by_violations
        assert partitioned_f >= adaptive_f

    def test_looser_delta_means_fewer_polls(self):
        att = stock_trace("att")
        yahoo = stock_trace("yahoo")
        tight = run_mutual_value_adaptive(att, yahoo, 0.5, bounds=self.BOUNDS)
        loose = run_mutual_value_adaptive(att, yahoo, 5.0, bounds=self.BOUNDS)
        assert loose.total_polls <= tight.total_polls

    def test_adaptive_polls_both_objects_equally(self):
        att = stock_trace("att")
        yahoo = stock_trace("yahoo")
        result = run_mutual_value_adaptive(att, yahoo, 1.0, bounds=self.BOUNDS)
        assert result.polls_of(att.object_id) == result.polls_of(
            yahoo.object_id
        )


class TestSmallPredictableScenario:
    """A hand-computable scenario crossing the whole stack."""

    def test_exact_poll_schedule_and_detection(self):
        # One object updated at t=15 and t=45; fixed 10 s polling.
        trace = trace_from_times(
            ObjectId("obj"), [15.0, 45.0], start_time=0.0, end_time=60.0
        )
        result = run_individual(
            [trace], fixed_policy_factory(10.0), log_events=True
        )
        entry = result.proxy.entry_for(ObjectId("obj"))
        times = [r.time for r in entry.fetch_log]
        assert times == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        modified = [r.time for r in entry.fetch_log if r.modified]
        # Initial fetch (t=0) is a 200; updates detected at 20 and 50.
        assert modified == [0.0, 20.0, 50.0]
        # The final cached version is 2 with Last-Modified 45.
        assert entry.snapshot.version == 2
        assert entry.snapshot.last_modified == 45.0
