"""SimulationBuilder, run_simulation, Registry, and `repro run` CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    LevelConfig,
    Registry,
    RegistryError,
    SimulationBuilder,
    SimulationConfig,
    SimulationConfigError,
    run_individual,
    run_simulation,
)
from repro.api.workloads import resolve_workload, workload_source_names
from repro.cli import main
from repro.consistency.base import fixed_policy_factory
from repro.core.errors import PolicyConfigurationError


def _tiny_builder() -> SimulationBuilder:
    return (
        SimulationBuilder()
        .workload("poisson", "obj", rate_per_hour=30.0, hours=6.0)
        .policy("baseline", delta=600.0)
        .fidelity_delta(600.0)
        .seed(7)
    )


class TestBuilder:
    def test_fluent_chain_builds_expected_config(self):
        config = (
            SimulationBuilder()
            .workload("news", "cnn_fn", "nyt_ap")
            .policy("limd", delta=600.0, ttr_max=3600.0)
            .topology("hierarchy", edge_count=3)
            .network(5.0, jitter_s=1.0)
            .seed(42)
            .horizon(7200.0)
            .fidelity_delta(600.0)
            .history(supports=True, want=False)
            .log_events()
            .build()
        )
        assert config.workload.objects == ("cnn_fn", "nyt_ap")
        assert config.policy.params["ttr_max"] == 3600.0
        assert config.topology.edge_count == 3
        assert config.network.one_way_latency_s == 5.0
        assert config.seed == 42
        assert config.horizon_s == 7200.0
        assert not config.want_history
        assert config.log_events

    def test_builder_from_existing_config_overrides(self):
        base = _tiny_builder().build()
        derived = SimulationBuilder(base).seed(11).build()
        assert derived.seed == 11
        assert derived.workload == base.workload

    def test_build_output_round_trips(self):
        config = _tiny_builder().build()
        assert SimulationConfig.from_json(config.to_json()) == config

    def test_topology_levels_inherited_while_kind_stays_tree(self):
        # Omitted keywords inherit, exactly as edge_count does.
        levels = [LevelConfig(fan_out=1), LevelConfig(fan_out=2)]
        builder = _tiny_builder().topology("tree", levels=levels)
        config = builder.topology("tree").build()
        assert config.topology.levels == tuple(levels)

    def test_tree_horizon_shorter_than_warm_up_rejected(self):
        # Latent links defer deep-level registration; a horizon inside
        # that warm-up can never produce rows for the deep nodes.
        builder = (
            _tiny_builder()
            .topology(
                "tree",
                levels=[LevelConfig(fan_out=1), LevelConfig(fan_out=2)],
            )
            .network(0.05)
            .horizon(0.05)
        )
        with pytest.raises(SimulationConfigError, match="warm-up"):
            builder.run()

    def test_hierarchy_horizon_shorter_than_warm_up_rejected(self):
        # The single/hierarchy path shares the tree's deferred
        # registration, so it shares the guard too.
        builder = (
            _tiny_builder()
            .topology("hierarchy", edge_count=2)
            .network(60.0)
            .horizon(100.0)
        )
        with pytest.raises(SimulationConfigError, match="warm-up"):
            builder.run()

    def test_topology_levels_reset_when_kind_changes(self):
        levels = [LevelConfig(fan_out=1)]
        builder = _tiny_builder().topology("tree", levels=levels)
        config = builder.topology("single").build()
        assert config.topology.kind == "single"
        assert config.topology.levels == ()


class TestRunSimulation:
    def test_matches_direct_run_individual(self):
        config = _tiny_builder().build()
        outcome = run_simulation(config)
        traces = resolve_workload(config.workload, config.seed)
        direct = run_individual(traces, fixed_policy_factory(600.0))
        assert outcome.run.total_polls == direct.total_polls
        (row,) = outcome.results.to_records()
        assert row["polls"] == direct.polls_of(traces[0].object_id)
        assert row["node"] == "proxy"
        assert row["updates"] == traces[0].update_count

    def test_deterministic_in_seed(self):
        config = _tiny_builder().build()
        first = run_simulation(config).results.to_json()
        second = run_simulation(config).results.to_json()
        assert first == second
        other = run_simulation(config.with_seed(8)).results.to_json()
        assert other != first

    def test_hierarchy_reports_parent_and_edges(self):
        config = _tiny_builder().topology("hierarchy", edge_count=2).build()
        outcome = run_simulation(config)
        nodes = outcome.results.column("node")
        assert nodes == ["parent", "edge-0", "edge-1"]
        assert len(outcome.edges) == 2

    def test_fidelity_skipped_without_delta(self):
        config = _tiny_builder().fidelity_delta(None).build()
        (row,) = run_simulation(config).results.to_records()
        assert row["fidelity_by_time"] is None
        assert row["fidelity_by_violations"] is None
        assert row["polls"] > 0

    def test_unknown_policy_rejected(self):
        config = _tiny_builder().policy("teleport").build()
        with pytest.raises(PolicyConfigurationError, match="teleport"):
            run_simulation(config)

    def test_unknown_source_rejected(self):
        config = _tiny_builder().workload("tea-leaves", "obj").build()
        with pytest.raises(SimulationConfigError, match="tea-leaves"):
            run_simulation(config)

    def test_unknown_trace_key_rejected(self):
        config = _tiny_builder().workload("news", "bbc").build()
        with pytest.raises(SimulationConfigError, match="bbc"):
            run_simulation(config)

    def test_builtin_sources_registered(self):
        assert {"news", "stocks", "poisson"} <= set(workload_source_names())

    def test_default_config_is_runnable(self):
        outcome = run_simulation(SimulationConfig())
        assert outcome.run.total_polls > 0

    def test_bad_policy_params_are_a_config_error(self):
        config = _tiny_builder().policy("limd").build()  # delta missing
        with pytest.raises(SimulationConfigError, match="policy 'limd'"):
            run_simulation(config)
        config = _tiny_builder().policy("baseline", delta=600.0, bogus=1).build()
        with pytest.raises(SimulationConfigError, match="bogus"):
            run_simulation(config)

    def test_bad_workload_params_are_a_config_error(self):
        config = (
            _tiny_builder()
            .workload("poisson", "obj", rate_per_hour=[1])
            .build()
        )
        with pytest.raises(SimulationConfigError, match="poisson"):
            run_simulation(config)

    def test_network_jitter_perturbs_results_deterministically(self):
        still = (
            _tiny_builder().network(30.0, jitter_s=0.0).run().results.to_json()
        )
        jittery = _tiny_builder().network(30.0, jitter_s=20.0)
        first = jittery.run().results.to_json()
        assert first != still  # jitter actually reaches the link model
        assert jittery.run().results.to_json() == first  # seeded, stable


class TestRunSimulationTree:
    def test_tree_reports_one_row_per_node(self):
        config = (
            _tiny_builder()
            .topology(
                "tree",
                levels=[
                    {"fan_out": 1},
                    {"fan_out": 2},
                    {"fan_out": 2},
                ],
            )
            .build()
        )
        outcome = run_simulation(config)
        nodes = outcome.results.column("node")
        assert nodes == [
            "L0.N0",
            "L1.N0",
            "L1.N1",
            "L2.N0",
            "L2.N1",
            "L2.N2",
            "L2.N3",
        ]
        assert outcome.tree is not None
        assert outcome.tree.node_count == 7
        assert len(outcome.edges) == 4
        assert outcome.run.proxy is outcome.tree.root.proxy

    def test_hybrid_push_root_runs_passively(self):
        config = (
            _tiny_builder()
            .topology(
                "tree",
                levels=[{"fan_out": 1, "mode": "push"}, {"fan_out": 2}],
            )
            .build()
        )
        outcome = run_simulation(config)
        rows = outcome.results.to_records()
        root_row = rows[0]
        # The push root fetches once per update plus the initial fetch.
        assert root_row["polls"] == root_row["updates"] + 1
        assert root_row["fidelity_by_time"] == 1.0
        assert outcome.tree is not None
        assert outcome.tree.push_notifications() == root_row["updates"]

    def test_per_level_policy_override(self):
        config = (
            _tiny_builder()
            .topology(
                "tree",
                levels=[
                    {"fan_out": 1},
                    {
                        "fan_out": 1,
                        "policy": {
                            "name": "baseline",
                            "params": {"delta": 60.0},
                        },
                    },
                ],
            )
            .build()
        )
        outcome = run_simulation(config)
        rows = outcome.results.to_records()
        # The edge polls its parent 10x more often than the parent
        # polls the origin (delta 60 s vs the top-level 600 s).
        assert rows[1]["polls"] > 5 * rows[0]["polls"]

    def test_tree_deterministic_in_seed(self):
        config = (
            _tiny_builder()
            .topology("tree", levels=[{"fan_out": 1}, {"fan_out": 3}])
            .build()
        )
        first = run_simulation(config).results.to_json()
        assert run_simulation(config).results.to_json() == first
        assert run_simulation(config.with_seed(9)).results.to_json() != first

    def test_depth_n_tree_chain_reproduces_proxy_chain_rows(self):
        """A fan-out-1 tree config matches the deprecated ProxyChain."""
        from repro.api.deprecation import ReproDeprecationWarning
        from repro.consistency.base import FixedTTRPolicy
        from repro.proxy.hierarchy import ProxyChain
        from repro.server.updates import feed_traces
        from repro.server.origin import OriginServer
        from repro.sim.kernel import Kernel

        depth = 3
        config = (
            _tiny_builder()
            .topology("tree", levels=[{"fan_out": 1}] * depth)
            .build()
        )
        outcome = run_simulation(config)
        (trace,) = resolve_workload(config.workload, config.seed)

        kernel = Kernel()
        origin = OriginServer()
        feed_traces(kernel, origin, [trace])
        with pytest.warns(ReproDeprecationWarning):
            chain = ProxyChain(kernel, origin, depth=depth)
        chain.register_object(
            trace.object_id, lambda _level, _oid: FixedTTRPolicy(ttr=600.0)
        )
        kernel.run(until=trace.end_time)

        tree_polls = [row["polls"] for row in outcome.results.to_records()]
        chain_polls = chain.polls_per_level(trace.object_id)
        assert tree_polls == chain_polls
        assert (
            outcome.tree.origin_request_count()
            == chain.origin_request_count()
        )
        tree_log = [
            (record.time, record.snapshot.version, record.modified)
            for node in outcome.tree.nodes
            for record in node.proxy.entry_for(trace.object_id).fetch_log
        ]
        chain_log = [
            (record.time, record.snapshot.version, record.modified)
            for proxy in chain.proxies
            for record in proxy.entry_for(trace.object_id).fetch_log
        ]
        assert tree_log == chain_log

    def test_push_level_with_policy_rejected_at_config_time(self):
        with pytest.raises(SimulationConfigError, match="push"):
            _tiny_builder().topology(
                "tree",
                levels=[
                    {
                        "fan_out": 1,
                        "mode": "push",
                        "policy": {"name": "baseline", "params": {}},
                    }
                ],
            )


class TestRunCli:
    @pytest.fixture
    def config_path(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(_tiny_builder().build().to_json())
        return str(path)

    def test_table_output(self, config_path, capsys):
        assert main(["run", "--config", config_path]) == 0
        out = capsys.readouterr().out
        assert "polls" in out
        assert "baseline" in out

    def test_json_output_is_result_set(self, config_path, capsys):
        assert main(["run", "--config", config_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["columns"][:2] == ["node", "object"]
        assert payload["rows"][0]["object"] == "obj"

    def test_csv_output(self, config_path, capsys):
        assert main(["run", "--config", config_path, "--csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("node,object,updates,polls")
        assert len(lines) == 2

    def test_seed_override_changes_rows(self, config_path, capsys):
        assert main(["run", "--config", config_path, "--json"]) == 0
        base = capsys.readouterr().out
        assert main(["run", "--config", config_path, "--seed", "8", "--json"]) == 0
        assert capsys.readouterr().out != base

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["run", "--config", str(tmp_path / "nope.json")]) == 2
        assert "cannot read config" in capsys.readouterr().err

    def test_invalid_config_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"surprise": 1}')
        assert main(["run", "--config", str(path)]) == 2
        assert "invalid simulation configuration" in capsys.readouterr().err

    def test_bad_policy_params_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad_params.json"
        path.write_text(
            _tiny_builder().policy("limd", bogus=1).build().to_json()
        )
        assert main(["run", "--config", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid simulation configuration" in err
        assert "bogus" in err


class TestRegistry:
    def test_register_get_names(self):
        reg: Registry[int] = Registry("gadget")
        reg.register("b", 2)
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert reg.names() == ["a", "b"]
        assert reg.items() == [("a", 1), ("b", 2)]
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2
        assert list(reg) == ["a", "b"]

    def test_duplicate_rejected(self):
        reg: Registry[int] = Registry("gadget")
        reg.register("a", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("a", 2)

    def test_unknown_lists_known_names(self):
        reg: Registry[int] = Registry("gadget")
        reg.register("alpha", 1)
        with pytest.raises(RegistryError, match="alpha"):
            reg.get("beta")

    def test_custom_error_factory(self):
        class Boom(Exception):
            pass

        reg: Registry[int] = Registry(
            "gadget", error_factory=lambda name, known: Boom(name)
        )
        with pytest.raises(Boom):
            reg.get("zap")

    def test_lazy_loader_runs_once_before_first_read(self):
        calls = []

        def load() -> None:
            calls.append(1)
            reg.register("late", 9)

        reg: Registry[int] = Registry("gadget", loader=load)
        assert not calls  # construction does not load
        assert reg.get("late") == 9
        assert reg.names() == ["late"]
        assert calls == [1]
