"""Property-based tests (hypothesis) on core invariants.

These cover the data structures and algorithms whose correctness the
whole evaluation rests on: the kernel's event ordering, trace queries,
LIMD bound preservation, the fidelity metrics' range, and the interval
arithmetic behind mutual-consistency evaluation.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.consistency.detection import make_detector
from repro.consistency.limd import LimdParameters, LimdPolicy
from repro.core.types import ObjectId, ObjectSnapshot, PollOutcome, TTRBounds
from repro.metrics.fidelity import temporal_fidelity, value_fidelity
from repro.metrics.mutual import interval_gap
from repro.sim.kernel import Kernel
from repro.sim.stats import SummaryStats, TimeWeightedValue
from repro.traces.model import trace_from_ticks, trace_from_times

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
times_strategy = st.lists(
    st.floats(min_value=0.1, max_value=1e5, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
    unique=True,
)

poll_times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.1e5, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
    unique=True,
)


class TestKernelProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_events_always_fire_in_nondecreasing_time_order(self, schedule):
        kernel = Kernel()
        fired = []
        for when in schedule:
            kernel.schedule_at(when, lambda k: fired.append(k.now()))
        kernel.run()
        assert fired == sorted(fired)
        assert len(fired) == len(schedule)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_run_until_never_processes_later_events(self, schedule, until):
        kernel = Kernel()
        fired = []
        for when in schedule:
            kernel.schedule_at(when, lambda k, w=when: fired.append(w))
        kernel.run(until=until)
        assert all(t <= until for t in fired)
        assert kernel.now() >= until


class TestTraceProperties:
    @given(times_strategy)
    @settings(max_examples=100)
    def test_versions_sequential_and_times_sorted(self, times):
        trace = trace_from_times(ObjectId("x"), times)
        recorded = [r.time for r in trace.records]
        assert recorded == sorted(recorded)
        assert [r.version for r in trace.records] == list(range(len(times)))

    @given(times_strategy, st.floats(min_value=0.0, max_value=1.2e5))
    @settings(max_examples=100)
    def test_latest_at_and_next_after_partition_the_timeline(self, times, t):
        trace = trace_from_times(ObjectId("x"), times)
        latest = trace.latest_at(t)
        nxt = trace.next_after(t)
        if latest is not None:
            assert latest.time <= t
        if nxt is not None:
            assert nxt.time > t
        if latest is not None and nxt is not None:
            assert latest.version + 1 == nxt.version

    @given(
        times_strategy,
        st.floats(min_value=0.0, max_value=6e4),
        st.floats(min_value=0.1, max_value=6e4),
    )
    @settings(max_examples=100)
    def test_updates_in_matches_bruteforce(self, times, start, width):
        trace = trace_from_times(ObjectId("x"), times)
        end = start + width
        got = [u.time for u in trace.updates_in(start, end)]
        expected = sorted(t for t in times if start < t <= end)
        assert got == expected


class TestLimdProperties:
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_ttr_always_within_bounds(self, steps):
        """No outcome sequence can push the TTR outside [min, max]."""
        delta = 10.0
        bounds = TTRBounds(ttr_min=delta, ttr_max=300.0)
        policy = LimdPolicy(
            delta,
            bounds=bounds,
            parameters=LimdParameters(),
            detector=make_detector("history", delta),
        )
        t = 0.0
        version = 0
        last_modified = 0.0
        for modified, gap in steps:
            t += gap
            if modified:
                version += 1
                last_modified = max(last_modified + 1e-6, t - gap / 2.0)
            outcome = PollOutcome(
                poll_time=t,
                modified=modified,
                snapshot=ObjectSnapshot(
                    ObjectId("x"), version=version, last_modified=last_modified
                ),
                first_unseen_update=last_modified if modified else None,
            )
            ttr = policy.next_ttr(outcome)
            assert bounds.ttr_min <= ttr <= bounds.ttr_max

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=30)
    def test_case1_growth_is_monotone_in_l(self, l):
        delta = 10.0
        policy = LimdPolicy(
            delta,
            parameters=LimdParameters(linear_increase=l),
        )
        outcome = PollOutcome(
            poll_time=20.0,
            modified=False,
            snapshot=ObjectSnapshot(ObjectId("x"), version=0, last_modified=0.0),
        )
        ttr = policy.next_ttr(outcome)
        assert ttr >= delta


class TestFidelityProperties:
    @given(times_strategy, poll_times_strategy,
           st.floats(min_value=0.1, max_value=1e4))
    @settings(max_examples=100)
    def test_temporal_fidelity_in_unit_range(self, times, polls, delta):
        trace = trace_from_times(
            ObjectId("x"), times, end_time=1.2e5
        )
        report = temporal_fidelity(trace, polls, delta)
        assert 0.0 <= report.fidelity_by_violations <= 1.0
        assert 0.0 <= report.fidelity_by_time <= 1.0
        assert report.violations <= report.polls
        assert report.out_sync_time <= report.duration + 1e-6

    @given(times_strategy, poll_times_strategy,
           st.floats(min_value=0.1, max_value=1e4),
           st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=50)
    def test_larger_delta_never_more_violations(self, times, polls, delta, factor):
        trace = trace_from_times(ObjectId("x"), times, end_time=1.2e5)
        tight = temporal_fidelity(trace, polls, delta)
        loose = temporal_fidelity(trace, polls, delta * factor)
        assert loose.violations <= tight.violations
        assert loose.out_sync_time <= tight.out_sync_time + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
            unique_by=lambda tv: tv[0],
        ),
        st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=100)
    def test_value_fidelity_in_unit_range(self, ticks, delta):
        trace = trace_from_ticks(ObjectId("s"), ticks, end_time=1.1e4)
        fetches = [(t, v) for t, v in sorted(ticks)][:5]
        report = value_fidelity(trace, fetches, delta)
        assert 0.0 <= report.fidelity_by_violations <= 1.0
        assert 0.0 <= report.fidelity_by_time <= 1.0


class TestIntervalGapProperties:
    interval = st.tuples(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    ).map(lambda p: (min(p), max(p)))

    @given(interval, interval)
    @settings(max_examples=100)
    def test_gap_is_symmetric_and_non_negative(self, a, b):
        assert interval_gap(a, b) == interval_gap(b, a)
        assert interval_gap(a, b) >= 0.0

    @given(interval)
    @settings(max_examples=50)
    def test_gap_with_self_is_zero(self, a):
        assume(a[1] > a[0])
        assert interval_gap(a, a) == 0.0

    @given(interval, interval)
    @settings(max_examples=100)
    def test_gap_zero_iff_touch_or_overlap(self, a, b):
        gap = interval_gap(a, b)
        overlaps = max(a[0], b[0]) <= min(a[1], b[1])
        assert (gap == 0.0) == overlaps


class TestStatsProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=100)
    def test_summary_stats_match_bruteforce(self, data):
        stats = SummaryStats()
        for x in data:
            stats.observe(x)
        assert stats.minimum == min(data)
        assert stats.maximum == max(data)
        naive_mean = sum(data) / len(data)
        assert math.isclose(stats.mean, naive_mean, rel_tol=1e-9, abs_tol=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_time_weighted_integral_matches_bruteforce(self, changes):
        changes = sorted(changes, key=lambda c: c[0])
        signal = TimeWeightedValue(start=0.0, initial=0.0)
        for when, value in changes:
            signal.set(when, value)
        horizon = changes[-1][0] + 10.0
        # Brute force: integrate the step function.
        knots = [(0.0, 0.0)] + changes
        expected = 0.0
        for (t0, v0), (t1, _v1) in zip(knots, knots[1:]):
            expected += v0 * (t1 - t0)
        expected += knots[-1][1] * (horizon - knots[-1][0])
        assert math.isclose(
            signal.integral(horizon), expected, rel_tol=1e-9, abs_tol=1e-6
        )
