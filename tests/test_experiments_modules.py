"""Smoke tests for the per-table/figure experiment modules.

The full sweeps live in ``benchmarks/``; here each module runs on a
reduced parameter set to verify wiring, rendering, and the headline
shape, keeping the unit suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table2,
    table3,
)
from repro.experiments.ablations import (
    ablate_partition,
    ablate_trigger_semantics,
    render_ablation,
)


class TestTables:
    def test_table2_rows_match_paper_counts(self):
        rows = table2.run()
        counts = {row["key"]: row["num_updates"] for row in rows}
        assert counts == {
            key: spec["num_updates"]
            for key, spec in table2.PAPER_TABLE2.items()
        }

    def test_table2_render_contains_all_traces(self):
        out = table2.render()
        assert "CNN" in out and "Guardian" in out

    def test_table3_rows_match_paper_ranges(self):
        rows = table3.run()
        by_key = {row["key"]: row for row in rows}
        assert by_key["att"]["min_value"] == pytest.approx(35.8)
        assert by_key["yahoo"]["max_value"] == pytest.approx(171.2)

    def test_table3_render(self):
        out = table3.render()
        assert "AT&T" in out and "Yahoo" in out


class TestFigure3:
    def test_reduced_sweep_shape(self):
        result = figure3.run(deltas_min=(2, 30))
        tight = result.row_for(2)
        loose = result.row_for(30)
        assert tight["limd_polls"] < tight["baseline_polls"]
        assert loose["baseline_fidelity_violations"] == 1.0
        assert figure3.render(result).startswith("Figure 3")


class TestFigure4:
    def test_series_cover_trace_window(self):
        result = figure4.run()
        assert result.update_frequency.start == 0.0
        assert result.ttr.values
        assert "Figure 4" in figure4.render(result)


class TestFigure5:
    def test_reduced_sweep_shape(self):
        result = figure5.run(mutual_deltas_min=(2,))
        row = result.rows[0]
        assert row["triggered_fidelity"] == 1.0
        assert row["heuristic_polls"] >= row["baseline_polls"] * 0.95
        assert "Figure 5" in figure5.render(result)


class TestFigure6:
    def test_series_and_decisions(self):
        result = figure6.run()
        assert len(result.rate_ratio) == len(result.extra_polls)
        assert result.total_extra_polls >= 0
        assert "Figure 6" in figure6.render(result)


class TestFigure7:
    def test_reduced_sweep_shape(self):
        result = figure7.run(mutual_deltas=(0.6, 4.0))
        tight = result.row_for(0.6)
        loose = result.row_for(4.0)
        assert loose["adaptive_polls"] <= tight["adaptive_polls"]
        assert loose["partitioned_fidelity"] >= tight["partitioned_fidelity"]
        assert "Figure 7" in figure7.render(result)


class TestFigure8:
    def test_series_aligned_and_rendered(self):
        result = figure8.run()
        assert len(result.server) == len(result.adaptive_proxy)
        assert len(result.server) == len(result.partitioned_proxy)
        assert result.tracking_error("partitioned") >= 0.0
        assert "Figure 8" in figure8.render(result)


class TestAblationsSmoke:
    def test_partition_ablation_rows(self):
        rows = ablate_partition()
        assert {row["split"] for row in rows} == {"static", "dynamic"}
        assert "static" in render_ablation(rows, "t")

    def test_trigger_semantics_rows(self):
        rows = ablate_trigger_semantics()
        assert {row["semantics"] for row in rows} == {"additional", "replace"}
        for row in rows:
            assert row["fidelity"] == 1.0


class TestHierarchyExperiment:
    def test_rows_and_render(self):
        from repro.experiments import hierarchy

        rows = hierarchy.run(edge_count=3)
        assert [row["topology"] for row in rows] == ["flat", "hierarchy"]
        flat, hier = rows
        assert hier["origin_requests"] < flat["origin_requests"]
        assert hier["parent_polls"] == hier["origin_requests"]
        out = hierarchy.render(rows, edge_count=3)
        assert "flat" in out and "hierarchy" in out

    def test_edge_count_respected(self):
        from repro.experiments import hierarchy

        rows = hierarchy.run(edge_count=2)
        assert rows[0]["edges"] == 2


class TestGroupMtExperiment:
    def test_reduced_sweep_shape(self):
        from repro.experiments import group_mt

        rows = group_mt.run(mutual_deltas_min=(2.0, 30.0))
        tight, loose = rows
        assert tight["triggered_fidelity_time"] >= tight[
            "baseline_fidelity_time"
        ] - 1e-9
        assert tight["triggered_extra"] >= loose["triggered_extra"]
        out = group_mt.render(rows)
        assert "n-object" in out

    def test_limd_ablation_rows(self):
        from repro.experiments.ablations import ablate_limd_parameters

        rows = ablate_limd_parameters()
        tunings = [row["tuning"] for row in rows]
        assert "paper" in tunings and "optimistic" in tunings

    def test_latency_ablation_rows(self):
        from repro.experiments.ablations import ablate_latency

        rows = ablate_latency(latencies=(0.0, 600.0))
        assert rows[0]["one_way_latency_s"] == 0.0
        assert rows[1]["latency_over_delta"] == 1.0
        assert rows[1]["fidelity_time"] <= rows[0]["fidelity_time"]
