"""RL203 fixture: exception handlers used purely as control flow."""

from typing import Dict, List


def total(entries: Dict[str, float], keys: List[str]) -> float:
    out = 0.0
    for key in keys:
        try:
            out += entries[key]
        except KeyError:
            continue
    return out
