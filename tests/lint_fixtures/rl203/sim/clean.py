"""RL203 fixture: test the condition, or handle the error for real."""

from typing import Dict, List


def total(entries: Dict[str, float], keys: List[str]) -> float:
    out = 0.0
    for key in keys:
        value = entries.get(key)
        if value is not None:
            out += value
    return out


def parse(raw: str) -> float:
    try:
        return float(raw)
    except ValueError as exc:
        raise RuntimeError(f"bad value {raw!r}") from exc
