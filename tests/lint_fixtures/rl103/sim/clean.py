"""RL103 fixture: sorted() is the sanctioned bridge out of a set."""

from typing import List, Set


def names(seen: Set[str]) -> List[str]:
    return sorted(seen)


def render(seen: Set[str]) -> str:
    return ", ".join(sorted(seen))
