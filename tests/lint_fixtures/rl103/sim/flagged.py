"""RL103 fixture: set iteration order leaking into ordered output."""

from typing import List, Set


def names(seen: Set[str]) -> List[str]:
    return [name for name in seen]


def render(seen: Set[str]) -> str:
    return ", ".join(seen)
