"""Scope fixture: the same pattern outside the deterministic core.

RL101 is scoped to the simulation packages; this file lives in no
scoped directory, so the wall-clock read below must NOT be flagged.
"""

import time


def stamp() -> float:
    return time.time()
