"""RL105 fixture: private heaps outside the kernel's scheduler seam."""

import heapq
from heapq import heappush


def earliest(entries):
    heap = list(entries)
    heapq.heapify(heap)
    heappush(heap, (0.0, 0))
    return heap[0]
