"""RL105 fixture: scheduling routed through the kernel seam."""

from repro.sim.kernel import make_scheduler


def earliest(entries):
    scheduler = make_scheduler("wheel")
    for when, sequence, item in entries:
        scheduler.push(when, sequence, item)
    return scheduler.peek()
