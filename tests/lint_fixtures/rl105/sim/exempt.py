"""RL105 fixture: ``repro.sim`` itself may use heapq (the seam's home)."""

import heapq
from heapq import heappop


def drain(heap):
    heapq.heapify(heap)
    while heap:
        yield heappop(heap)
