"""RL201 fixture: hot-path classes must declare __slots__."""

from dataclasses import dataclass


class Unslotted:
    def __init__(self) -> None:
        self.count = 0


@dataclass
class UnslottedRecord:
    count: int = 0
