"""RL201 fixture: slotted classes, plus the exempt categories."""

from dataclasses import dataclass
from enum import Enum


class Slotted:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


@dataclass(slots=True)
class SlottedRecord:
    count: int = 0


class Mode(Enum):
    PULL = "pull"


class CacheMissError(Exception):
    pass
