"""RL301 fixture: a config class with one-way serialisation."""

from typing import Dict


class HalfConfig:
    """Serialises but cannot round-trip."""

    def __init__(self, size: int) -> None:
        self.size = size

    def to_dict(self) -> Dict[str, int]:
        return {"size": self.size}
