"""RL301 fixture: to_dict/from_dict paired, directly or via a base."""

from typing import Dict


class WholeConfig:
    """Round-trips through a plain dict."""

    def __init__(self, size: int) -> None:
        self.size = size

    def to_dict(self) -> Dict[str, int]:
        return {"size": self.size}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "WholeConfig":
        return cls(size=data["size"])
