"""RL102 fixture: global random state and un-seeded generators."""

import random


def draw() -> float:
    return random.random()


def generator() -> random.Random:
    return random.Random()
