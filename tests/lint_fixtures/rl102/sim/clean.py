"""RL102 fixture: explicitly seeded, locally owned generators."""

import random


def generator(seed: int) -> random.Random:
    return random.Random(seed)


def draw(rng: random.Random) -> float:
    return rng.random()
