"""RL302 fixture: a scenario registration missing its smoke config."""

from typing import Callable, Dict

_Point = Callable[[], None]


def scenario(**kwargs: object) -> Callable[[_Point], _Point]:
    def wrap(func: _Point) -> _Point:
        return func

    return wrap


TINY_CONFIGS: Dict[str, Dict[str, object]] = {
    "covered": {"values": (1.0,)},
}


@scenario(name="covered")
def _covered_point() -> None:
    return None


@scenario(name="uncovered")
def _uncovered_point() -> None:
    return None
