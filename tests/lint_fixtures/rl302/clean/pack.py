"""RL302 fixture: every registration has a TINY_CONFIGS entry."""

from typing import Callable, Dict

_Point = Callable[[], None]


def scenario(**kwargs: object) -> Callable[[_Point], _Point]:
    def wrap(func: _Point) -> _Point:
        return func

    return wrap


TINY_CONFIGS: Dict[str, Dict[str, object]] = {
    "covered": {"values": (1.0,)},
    "also_covered": {"values": (2.0,)},
}


@scenario(name="covered")
def _covered_point() -> None:
    return None


@scenario(name="also_covered")
def _also_covered_point() -> None:
    return None
