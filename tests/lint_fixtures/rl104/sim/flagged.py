"""RL104 fixture: hash()/id() feeding orderings."""

from typing import List


def order(items: List[str]) -> List[str]:
    return sorted(items, key=lambda item: hash(item))


class Keyed:
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __lt__(self, other: "Keyed") -> bool:
        return id(self) < id(other)
