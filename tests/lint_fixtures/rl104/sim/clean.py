"""RL104 fixture: orderings over stable, value-based keys."""

from typing import List


def order(items: List[str]) -> List[str]:
    return sorted(items)


class Keyed:
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __lt__(self, other: "Keyed") -> bool:
        return self.value < other.value
