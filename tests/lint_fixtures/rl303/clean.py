"""RL303 fixture: the replacement APIs the shims point at."""

from repro.api import run_individual
from repro.scenarios.registry import SCENARIOS

__all__ = ["SCENARIOS", "run_individual"]
