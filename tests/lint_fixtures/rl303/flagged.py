"""RL303 fixture: imports reaching into deprecated shim modules."""

from repro.experiments.runner import run_individual
from repro.scenarios.registry import get_scenario

__all__ = ["get_scenario", "run_individual"]
