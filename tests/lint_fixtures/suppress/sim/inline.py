"""Suppression fixture: an inline disable silences one finding."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=RL101 (fixture: log label only)
