"""Suppression fixture: a file-wide disable covers every finding."""

# repro-lint: disable-file=RL101 (fixture: wall-clock timing helper)

import time


def stamp() -> float:
    return time.time()


def stamp_ns() -> int:
    return time.time_ns()
