"""RL202 fixture: every written attribute is a declared slot."""


class Steady:
    __slots__ = ("count", "latest")

    def __init__(self) -> None:
        self.count = 0
        self.latest = 0.0

    def mark(self) -> None:
        self.latest = 1.0
