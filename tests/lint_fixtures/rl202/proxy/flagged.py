"""RL202 fixture: attribute creation escaping __slots__."""


class Drifting:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def mark(self) -> None:
        self.latest = 1.0
