"""RL101 fixture: wall-clock reads inside the deterministic scope."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def label() -> str:
    return datetime.now().isoformat()
