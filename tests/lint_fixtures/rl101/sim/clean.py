"""RL101 fixture: clock reads go through the simulation kernel."""


class FakeKernel:
    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now


def stamp(kernel: FakeKernel) -> float:
    return kernel.now()
