"""Differential tests: the timer wheel dispatches exactly like the heap.

The scheduler seam (:class:`repro.sim.kernel.Scheduler`) promises that
the choice of implementation is unobservable: for any interleaving of
schedule / cancel / run / advance operations, the wheel and the heap
must fire the same events at the same times in the same sequence
order — including same-tick ties and lazily cancelled entries.  These
tests drive both kernels through identical randomized operation scripts
(hypothesis) and compare the full dispatch transcripts.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Kernel

#: A dispatch transcript entry: (fire time, event label).  Labels are
#: unique per scheduled event, so transcript equality pins the exact
#: (time, sequence) dispatch order, not just the times.
Transcript = List[Tuple[float, str]]

# Quantized delays collide often (coincident timestamps exercise the
# sequence tie-break); the float tail covers arbitrary spacings, and
# the large values push entries into the wheel's overflow spill.
_DELAYS = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 2.5, 7.0]),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.sampled_from([5_000.0, 80_000.0, 2_000_000.0]),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("chain"), _DELAYS, _DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=999)),
        st.tuples(st.just("run"), _DELAYS),
        st.tuples(st.just("run_batch"), _DELAYS),
        st.tuples(st.just("step"), st.just(0)),
        st.tuples(st.just("advance"), _DELAYS),
    ),
    max_size=60,
)


def _execute(scheduler: str, ops: List[Tuple[object, ...]]) -> Transcript:
    """Run one operation script on a fresh kernel; return its transcript."""
    kernel = Kernel(scheduler=scheduler)
    fired: Transcript = []
    handles = []
    labels = iter(range(10**6))

    def recorder(label: str) -> Callable[[Kernel], None]:
        return lambda k: fired.append((k.now(), label))

    def chained(label: str, delay: float) -> Callable[[Kernel], None]:
        # Schedule-during-callback: the follow-up competes for sequence
        # numbers with everything else scheduled mid-run.
        def fire(k: Kernel) -> None:
            fired.append((k.now(), label))
            k.schedule_at(
                k.now() + delay, recorder(f"{label}+"), label=f"{label}+"
            )

        return fire

    for op in ops:
        kind = op[0]
        if kind == "schedule":
            label = f"e{next(labels)}"
            handles.append(
                kernel.schedule_at(
                    kernel.now() + float(op[1]), recorder(label), label=label
                )
            )
        elif kind == "chain":
            label = f"c{next(labels)}"
            handles.append(
                kernel.schedule_at(
                    kernel.now() + float(op[1]),
                    chained(label, float(op[2])),
                    label=label,
                )
            )
        elif kind == "cancel":
            if handles:
                handles[int(op[1]) % len(handles)].cancel_if_pending()
        else:
            if kind == "run":
                kernel.run(until=kernel.now() + float(op[1]))
            elif kind == "run_batch":
                kernel.run_batch(kernel.now() + float(op[1]))
            elif kind == "step":
                kernel.step()
            else:  # advance: clamp to the next pending event, as the
                # fast-forward engine's analytic jumps do.
                target = kernel.now() + float(op[1])
                pending = kernel.peek_next_time()
                if pending is not None and pending < target:
                    target = pending
                kernel.advance_clock(target)
            # Checkpoint the queue state into the transcript, so a
            # wheel/heap divergence in pending bookkeeping or the next
            # visible head fails the comparison even if dispatch order
            # happens to agree.
            fired.append((float(kernel.pending_count), "#pending"))
            head = kernel.peek_next_time()
            fired.append((-1.0 if head is None else head, "#head"))
    kernel.run()
    return fired


class TestSchedulerEquivalence:
    @given(_OPS)
    @settings(max_examples=200, deadline=None)
    def test_wheel_matches_heap_transcript(self, ops):
        assert _execute("wheel", ops) == _execute("heap", ops)

    @given(
        st.lists(
            st.sampled_from([0.0, 1.0, 1.0, 3.0]), min_size=1, max_size=30
        ),
        st.sets(st.integers(min_value=0, max_value=29)),
    )
    @settings(max_examples=100)
    def test_coincident_timestamps_fire_in_arm_order(self, delays, cancels):
        """Heavily colliding schedules + cancels keep FIFO tie order."""
        transcripts = []
        for scheduler in ("wheel", "heap"):
            kernel = Kernel(scheduler=scheduler)
            fired: Transcript = []
            handles = [
                kernel.schedule_at(
                    delay,
                    (lambda lab: lambda k: fired.append((k.now(), lab)))(
                        f"e{index}"
                    ),
                    label=f"e{index}",
                )
                for index, delay in enumerate(delays)
            ]
            for index in sorted(cancels):
                if index < len(handles):
                    handles[index].cancel_if_pending()
            kernel.run()
            transcripts.append(fired)
        assert transcripts[0] == transcripts[1]
        # FIFO within each timestamp: label indices increase per time.
        by_time: dict = {}
        for time, label in transcripts[0]:
            by_time.setdefault(time, []).append(int(label[1:]))
        for indices in by_time.values():
            assert indices == sorted(indices)

    def test_events_processed_and_clock_agree(self):
        kernels = {
            kind: Kernel(scheduler=kind) for kind in ("wheel", "heap")
        }
        for kernel in kernels.values():
            for index in range(100):
                kernel.schedule_at(float(index % 7), lambda k: None)
            kernel.run(until=3.0)
        wheel, heap = kernels["wheel"], kernels["heap"]
        assert wheel.events_processed == heap.events_processed
        assert wheel.now() == heap.now()
        assert wheel.pending_count == heap.pending_count
