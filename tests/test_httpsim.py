"""Unit tests for the simulated HTTP layer."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ProtocolError
from repro.core.types import ObjectId
from repro.httpsim import headers as h
from repro.httpsim.messages import (
    Headers,
    Method,
    Response,
    Status,
    conditional_get,
)
from repro.httpsim.network import LatencyModel, Network
from repro.httpsim.semantics import (
    MAX_HISTORY_LENGTH,
    evaluate_conditional_get,
)
from repro.sim.kernel import Kernel


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers()
        headers.set("Last-Modified", "5.0")
        assert headers.get("last-modified") == "5.0"
        assert "LAST-MODIFIED" in headers

    def test_set_overwrites(self):
        headers = Headers({"a": "1"})
        headers.set("A", "2")
        assert headers.get("a") == "2"
        assert len(headers) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Headers().set("", "x")

    def test_copy_is_independent(self):
        original = Headers({"a": "1"})
        copy = original.copy()
        copy.set("a", "2")
        assert original.get("a") == "1"

    def test_equality(self):
        assert Headers({"a": "1"}) == Headers({"A": "1"})
        assert Headers({"a": "1"}) != Headers({"a": "2"})

    def test_history_format_round_trip(self):
        times = [1.5, 2.25, 3.125]
        assert h.parse_history(h.format_history(times)) == times

    def test_empty_history(self):
        assert h.parse_history("") == []
        assert h.format_history([]) == ""


class TestConditionalGetBuilder:
    def test_carries_ims_and_history_flag(self):
        request = conditional_get(
            ObjectId("x"), if_modified_since=9.5, want_history=True
        )
        assert request.if_modified_since == 9.5
        assert request.wants_history
        assert request.method is Method.GET

    def test_tolerances_encoded(self):
        request = conditional_get(
            ObjectId("x"), consistency_delta=5.0, mutual_consistency_delta=2.0
        )
        assert request.consistency_delta == 5.0
        assert request.mutual_consistency_delta == 2.0

    def test_omitted_fields_absent(self):
        request = conditional_get(ObjectId("x"))
        assert request.if_modified_since is None
        assert not request.wants_history
        assert request.consistency_delta is None


class TestConditionalGetSemantics:
    def _evaluate(self, *, ims=None, last_modified=50.0, version=3,
                  value=None, history=(10.0, 30.0, 50.0), want_history=False,
                  now=100.0):
        request = conditional_get(
            ObjectId("x"), if_modified_since=ims, want_history=want_history
        )
        return evaluate_conditional_get(
            request,
            now=now,
            last_modified=last_modified,
            version=version,
            value=value,
            history_times=history,
        )

    def test_unknown_object_is_404(self):
        response = self._evaluate(last_modified=None, version=None)
        assert response.status is Status.NOT_FOUND

    def test_no_ims_returns_200(self):
        response = self._evaluate(ims=None)
        assert response.status is Status.OK
        assert response.last_modified == 50.0
        assert response.version == 3

    def test_unchanged_returns_304(self):
        response = self._evaluate(ims=50.0)
        assert response.status is Status.NOT_MODIFIED
        assert response.last_modified == 50.0

    def test_changed_returns_200(self):
        response = self._evaluate(ims=49.0)
        assert response.status is Status.OK

    def test_ims_after_last_modified_returns_304(self):
        response = self._evaluate(ims=60.0)
        assert response.status is Status.NOT_MODIFIED

    def test_value_header_on_200(self):
        response = self._evaluate(ims=None, value=42.5)
        assert response.value == 42.5

    def test_history_contains_only_unseen_updates(self):
        response = self._evaluate(ims=10.0, want_history=True)
        assert response.modification_history == [30.0, 50.0]

    def test_history_without_ims_is_full(self):
        response = self._evaluate(ims=None, want_history=True)
        assert response.modification_history == [10.0, 30.0, 50.0]

    def test_history_absent_when_not_requested(self):
        response = self._evaluate(ims=10.0, want_history=False)
        assert response.modification_history is None

    def test_history_truncated_to_cap(self):
        history = tuple(float(i) for i in range(1, 200))
        response = self._evaluate(
            ims=0.5, last_modified=199.0, history=history,
            want_history=True, now=300.0,
        )
        got = response.modification_history
        assert got is not None
        assert len(got) == MAX_HISTORY_LENGTH
        assert got[-1] == 199.0  # most recent entries kept

    def test_empty_history_on_304(self):
        response = self._evaluate(ims=50.0, want_history=True)
        assert response.status is Status.NOT_MODIFIED
        assert response.modification_history == []

    def test_require_ok_or_not_modified(self):
        ok = self._evaluate(ims=None)
        assert ok.require_ok_or_not_modified() is ok
        missing = self._evaluate(last_modified=None, version=None)
        with pytest.raises(ProtocolError):
            missing.require_ok_or_not_modified()


class TestLatencyModel:
    def test_synchronous_default(self):
        assert LatencyModel().is_synchronous

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(one_way=-1.0)

    def test_jitter_exceeding_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(one_way=1.0, jitter=2.0)

    def test_sample_without_jitter_is_constant(self):
        model = LatencyModel(one_way=0.5)
        assert model.sample_one_way(None) == 0.5

    def test_sample_with_jitter_in_range(self):
        model = LatencyModel(one_way=1.0, jitter=0.5)
        rng = random.Random(0)
        for _ in range(100):
            sample = model.sample_one_way(rng)
            assert 0.5 <= sample <= 1.5


class TestNetwork:
    def _handler(self, request, now):
        return Response(
            status=Status.OK, object_id=request.object_id, served_at=now
        )

    def test_synchronous_exchange_completes_inline(self, kernel):
        network = Network(kernel)
        responses = []
        network.exchange(
            conditional_get(ObjectId("x")), self._handler, responses.append
        )
        assert len(responses) == 1
        assert responses[0].served_at == 0.0

    def test_latency_delays_delivery(self):
        kernel = Kernel()
        network = Network(kernel, LatencyModel(one_way=2.0))
        responses = []
        network.exchange(
            conditional_get(ObjectId("x")), self._handler, responses.append
        )
        assert responses == []  # not yet delivered
        kernel.run()
        assert len(responses) == 1
        # Served after forward trip, response observed after round trip.
        assert responses[0].served_at == 2.0
        assert kernel.now() == 4.0

    def test_request_counter(self, kernel):
        network = Network(kernel)
        for _ in range(3):
            network.exchange(
                conditional_get(ObjectId("x")), self._handler, lambda r: None
            )
        assert network.requests_sent == 3
