"""Unit tests for temporal violation detection modes (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.consistency.detection import (
    HistoryViolationDetector,
    InferredViolationDetector,
    LastModifiedViolationDetector,
    make_detector,
)
from repro.core.types import ObjectId, ObjectSnapshot, PollOutcome

DELTA = 10.0


def outcome(poll_time, *, modified, last_modified, first_unseen=None):
    return PollOutcome(
        poll_time=poll_time,
        modified=modified,
        snapshot=ObjectSnapshot(
            ObjectId("x"), version=1, last_modified=last_modified
        ),
        first_unseen_update=first_unseen,
    )


class TestHistoryDetector:
    def test_unmodified_never_violates(self):
        detector = HistoryViolationDetector(DELTA)
        judgement = detector.judge(outcome(100.0, modified=False, last_modified=0.0))
        assert not judgement.violated

    def test_figure_1a_violation(self):
        """Single update, older than delta at the poll."""
        detector = HistoryViolationDetector(DELTA)
        judgement = detector.judge(
            outcome(100.0, modified=True, last_modified=80.0, first_unseen=80.0)
        )
        assert judgement.violated
        assert judgement.observed_out_sync == pytest.approx(20.0)

    def test_figure_1b_violation(self):
        """Latest update recent, but the FIRST unseen update is old."""
        detector = HistoryViolationDetector(DELTA)
        judgement = detector.judge(
            outcome(100.0, modified=True, last_modified=95.0, first_unseen=50.0)
        )
        assert judgement.violated
        assert judgement.observed_out_sync == pytest.approx(50.0)

    def test_recent_first_update_is_clean(self):
        detector = HistoryViolationDetector(DELTA)
        judgement = detector.judge(
            outcome(100.0, modified=True, last_modified=95.0, first_unseen=95.0)
        )
        assert not judgement.violated

    def test_boundary_exactly_delta_is_clean(self):
        """The paper's condition is 'larger than delta' (strict)."""
        detector = HistoryViolationDetector(DELTA)
        judgement = detector.judge(
            outcome(100.0, modified=True, last_modified=90.0, first_unseen=90.0)
        )
        assert not judgement.violated

    def test_degrades_to_last_modified_without_history(self):
        detector = HistoryViolationDetector(DELTA)
        judgement = detector.judge(
            outcome(100.0, modified=True, last_modified=80.0, first_unseen=None)
        )
        assert judgement.violated
        assert judgement.basis == "last-modified"


class TestLastModifiedDetector:
    def test_detects_stale_latest_update(self):
        detector = LastModifiedViolationDetector(DELTA)
        judgement = detector.judge(outcome(100.0, modified=True, last_modified=85.0))
        assert judgement.violated

    def test_misses_figure_1b_case(self):
        """Without history the 1(b) pattern goes undetected — exactly
        the limitation the paper's Section 5.1 extension addresses."""
        detector = LastModifiedViolationDetector(DELTA)
        judgement = detector.judge(
            outcome(100.0, modified=True, last_modified=95.0, first_unseen=50.0)
        )
        assert not judgement.violated


class TestInferredDetector:
    def _train(self, detector, *, gap, count=10, start=0.0):
        """Feed the detector polls showing updates every ``gap`` seconds."""
        t = start
        for i in range(count):
            t += gap
            detector.judge(outcome(t, modified=True, last_modified=t))

    def test_certain_violation_still_detected(self):
        detector = InferredViolationDetector(DELTA)
        judgement = detector.judge(outcome(100.0, modified=True, last_modified=85.0))
        assert judgement.violated

    def test_fast_object_long_interval_inferred_violation(self):
        """An object updating every 5s polled over a 100s interval has
        almost certainly violated a 10s bound even if the newest update
        is recent."""
        detector = InferredViolationDetector(DELTA, probability_threshold=0.5)
        self._train(detector, gap=5.0, count=20)
        t = detector.previous_poll_time
        judgement = detector.judge(
            outcome(t + 100.0, modified=True, last_modified=t + 99.0)
        )
        assert judgement.violated
        assert judgement.basis.startswith("inferred")

    def test_short_interval_cannot_violate(self):
        detector = InferredViolationDetector(DELTA)
        self._train(detector, gap=5.0, count=5)
        t = detector.previous_poll_time
        judgement = detector.judge(
            outcome(t + DELTA, modified=True, last_modified=t + DELTA - 1)
        )
        assert not judgement.violated

    def test_slow_object_not_flagged(self):
        """An object updating every ~500s, polled 30s apart with a
        recent update, is unlikely to have had an early unseen update."""
        detector = InferredViolationDetector(DELTA, probability_threshold=0.9)
        self._train(detector, gap=500.0, count=5)
        t = detector.previous_poll_time
        judgement = detector.judge(
            outcome(t + 30.0, modified=True, last_modified=t + 29.0)
        )
        assert not judgement.violated

    def test_first_poll_has_no_interval(self):
        detector = InferredViolationDetector(DELTA)
        judgement = detector.judge(outcome(100.0, modified=True, last_modified=95.0))
        assert not judgement.violated

    def test_rate_estimator_fed_from_modifications(self):
        detector = InferredViolationDetector(DELTA)
        self._train(detector, gap=7.0, count=10)
        assert detector.estimator.rate() == pytest.approx(1 / 7.0, rel=0.05)


class TestMakeDetector:
    @pytest.mark.parametrize(
        "mode,cls",
        [
            ("history", HistoryViolationDetector),
            ("last_modified_only", LastModifiedViolationDetector),
            ("inferred", InferredViolationDetector),
        ],
    )
    def test_modes(self, mode, cls):
        detector = make_detector(mode, DELTA)
        assert isinstance(detector, cls)
        assert detector.mode == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            make_detector("psychic", DELTA)

    def test_non_positive_delta_rejected(self):
        with pytest.raises(ValueError):
            make_detector("history", 0.0)
