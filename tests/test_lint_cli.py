"""The ``repro lint`` command-line entry point.

Exit-status contract: 0 when every finding is suppressed or baselined,
1 when new findings remain, 2 on usage errors (unknown paths, unknown
rule codes, bad baseline files).
"""

import contextlib
import io
import json
import tempfile
import unittest
from pathlib import Path

from repro.lint import PARSE_ERROR_CODE, iter_python_files
from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

FLAGGED = str(FIXTURES / "rl101" / "sim" / "flagged.py")
CLEAN = str(FIXTURES / "rl101" / "sim" / "clean.py")


class TestExitStatus(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        self.assertEqual(main([CLEAN, "--no-baseline"]), 0)

    def test_new_findings_exit_one(self):
        self.assertEqual(main([FLAGGED, "--no-baseline"]), 1)

    def test_missing_path_exits_two(self):
        self.assertEqual(
            main([str(FIXTURES / "no_such_dir"), "--no-baseline"]), 2
        )

    def test_unknown_rule_code_exits_two(self):
        self.assertEqual(main([CLEAN, "--select", "RL999"]), 2)

    def test_select_restricts_the_run(self):
        # The flagged RL101 fixture is clean under the RL2xx pack.
        self.assertEqual(
            main([FLAGGED, "--no-baseline", "--select", "RL201"]), 0
        )

    def test_malformed_baseline_exits_two(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "baseline.json"
            bad.write_text("{not json", encoding="utf-8")
            self.assertEqual(main([FLAGGED, "--baseline", str(bad)]), 2)


class TestBaselineFlow(unittest.TestCase):
    def test_write_baseline_then_rerun_is_green(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            self.assertEqual(
                main([FLAGGED, "--baseline", str(baseline), "--write-baseline"]),
                0,
            )
            self.assertTrue(baseline.is_file())
            # Grandfathered findings no longer fail the run...
            self.assertEqual(main([FLAGGED, "--baseline", str(baseline)]), 0)
            # ...but they are not blanket immunity: a file with different
            # findings still fails against that baseline.
            other = str(FIXTURES / "rl102" / "sim" / "flagged.py")
            self.assertEqual(main([other, "--baseline", str(baseline)]), 1)

    def test_stale_entries_do_not_fail(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            self.assertEqual(
                main([FLAGGED, "--baseline", str(baseline), "--write-baseline"]),
                0,
            )
            # Linting the clean file leaves every entry stale: reported,
            # exit status still 0.
            self.assertEqual(main([CLEAN, "--baseline", str(baseline)]), 0)


class TestReportsAndCatalog(unittest.TestCase):
    def test_json_format_is_parseable(self):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main([FLAGGED, "--no-baseline", "--format", "json"])
        self.assertEqual(status, 1)
        payload = json.loads(buffer.getvalue())
        self.assertEqual(payload["schema"], "repro-lint/1")
        self.assertEqual(len(payload["findings"]), 2)

    def test_list_rules_prints_the_catalog(self):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main(["--list-rules"])
        self.assertEqual(status, 0)
        output = buffer.getvalue()
        for code in ("RL101", "RL104", "RL201", "RL203", "RL301", "RL303"):
            self.assertIn(code, output)


class TestParseErrors(unittest.TestCase):
    def test_unparseable_file_is_a_finding_not_a_crash(self):
        with tempfile.TemporaryDirectory() as tmp:
            broken = Path(tmp) / "broken.py"
            broken.write_text("def broken(:\n", encoding="utf-8")
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                status = main([str(broken), "--no-baseline", "--format", "json"])
            self.assertEqual(status, 1)
            payload = json.loads(buffer.getvalue())
            (finding,) = payload["findings"]
            self.assertEqual(finding["code"], PARSE_ERROR_CODE)


class TestSourceTreeIsClean(unittest.TestCase):
    def test_src_lints_clean_without_the_baseline(self):
        """The merged tree carries zero unbaselined findings."""
        self.assertEqual(main([str(REPO_ROOT / "src"), "--no-baseline"]), 0)

    def test_iter_python_files_sees_the_whole_tree(self):
        files = iter_python_files([str(REPO_ROOT / "src")])
        self.assertGreater(len(files), 100)
        self.assertEqual(files, sorted(files))


if __name__ == "__main__":
    unittest.main()
