"""Property tests for the hot-path rewrites (PR 2).

The tuple-keyed kernel heap, the alias popularity sampler, and the
streaming metric accumulators are all drop-in replacements for simpler
reference implementations.  These tests pin the equivalences:

* kernel dispatch order equals the reference ``(time, insertion-order)``
  stable sort — the old rich-comparison kernel's contract — including
  under lazy cancellation and mid-run scheduling;
* alias-method draws follow the exact weight distribution (chi-squared
  tolerance under a fixed seed) and are seed-deterministic;
* streaming moments/bin counts equal the list-based aggregates they
  replaced, on random series.
"""

from __future__ import annotations

import math
import random
import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import bin_count
from repro.core.rng import DEFAULT_SEED, derive_seed
from repro.core.types import ObjectId
from repro.metrics.streaming import (
    ReservoirSample,
    StreamingBinCounter,
    StreamingMoments,
)
from repro.sim.kernel import Kernel
from repro.workload.popularity import AliasSampler, ZipfPopularity

# ---------------------------------------------------------------------------
# Kernel heap ordering / FIFO tie-break
# ---------------------------------------------------------------------------

times_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32),
    min_size=1,
    max_size=60,
)


class TestKernelOrdering:
    @given(times=times_lists)
    @settings(max_examples=60)
    def test_dispatch_matches_stable_sort_reference(self, times):
        """Events fire in (time, insertion order) — the old kernel's order."""
        kernel = Kernel()
        fired = []
        for index, when in enumerate(times):
            kernel.schedule_at(
                when, lambda _k, i=index: fired.append(i)
            )
        kernel.run()
        reference = [
            i for _, i in sorted((when, i) for i, when in enumerate(times))
        ]
        assert fired == reference

    @given(times=times_lists, data=st.data())
    @settings(max_examples=60)
    def test_cancellation_removes_exactly_the_cancelled(self, times, data):
        kernel = Kernel()
        fired = []
        handles = []
        for index, when in enumerate(times):
            handles.append(
                kernel.schedule_at(when, lambda _k, i=index: fired.append(i))
            )
        to_cancel = data.draw(
            st.sets(st.integers(0, len(times) - 1), max_size=len(times))
        )
        for index in to_cancel:
            handles[index].cancel()
        kernel.run()
        reference = [
            i
            for _, i in sorted((when, i) for i, when in enumerate(times))
            if i not in to_cancel
        ]
        assert fired == reference
        for index, handle in enumerate(handles):
            assert handle.cancelled == (index in to_cancel)
            assert handle.fired == (index not in to_cancel)

    @given(times=times_lists)
    @settings(max_examples=40)
    def test_same_time_followups_fire_after_existing_ties(self, times):
        """An event scheduled *at the current instant* from inside a
        callback runs after every already-queued event at that instant
        (insertion order is global, monotonic)."""
        kernel = Kernel()
        fired = []
        tie = max(times)
        for index, when in enumerate(times):
            kernel.schedule_at(when, lambda _k, i=index: fired.append(i))

        def spawn(k: Kernel) -> None:
            fired.append("spawner")
            k.schedule_at(tie, lambda _k: fired.append("followup"))

        kernel.schedule_at(tie, spawn)
        kernel.run()
        assert fired[-1] == "followup"
        assert fired[-2] == "spawner"

    def test_run_until_is_inclusive_and_advances_clock(self):
        kernel = Kernel()
        fired = []
        kernel.schedule_at(5.0, lambda k: fired.append(k.now()))
        kernel.schedule_at(10.0, lambda k: fired.append(k.now()))
        processed = kernel.run(until=5.0)
        assert processed == 1 and fired == [5.0] and kernel.now() == 5.0
        kernel.run(until=20.0)
        assert fired == [5.0, 10.0] and kernel.now() == 20.0


# ---------------------------------------------------------------------------
# Alias sampler distribution
# ---------------------------------------------------------------------------

weight_lists = st.lists(
    st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


class TestAliasSampler:
    @given(weights=weight_lists)
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_draws_match_exact_distribution(self, weights):
        """Empirical frequencies track weights within a χ² tolerance."""
        draws = 4000
        sampler = AliasSampler(weights, random.Random(1234))
        counts = [0] * len(weights)
        for _ in range(draws):
            counts[sampler.draw_index()] += 1
        total = sum(weights)
        chi2 = 0.0
        for observed, weight in zip(counts, weights):
            expected = draws * weight / total
            chi2 += (observed - expected) ** 2 / expected
        # 99.99th percentile of χ² with up to 11 dof is ~39; random
        # example search kept finding tail weight-lists near 40, so the
        # bound carries a real margin and the search is derandomized —
        # the draw seed is fixed, this only pins *which* examples run.
        assert chi2 < 55.0

    def test_draws_are_seed_deterministic(self):
        weights = [5.0, 3.0, 1.0, 1.0]
        first = AliasSampler(weights, random.Random(7))
        second = AliasSampler(weights, random.Random(7))
        assert [first.draw_index() for _ in range(200)] == [
            second.draw_index() for _ in range(200)
        ]

    def test_degenerate_single_weight(self):
        sampler = AliasSampler([3.5], random.Random(0))
        assert all(sampler.draw_index() == 0 for _ in range(50))

    def test_zero_weight_entries_never_drawn(self):
        sampler = AliasSampler([0.0, 1.0, 0.0], random.Random(3))
        assert all(sampler.draw_index() == 1 for _ in range(200))

    def test_zipf_matches_probability_of(self):
        objects = [ObjectId(f"o{i}") for i in range(20)]
        model = ZipfPopularity(objects, exponent=1.0, rng=random.Random(99))
        draws = 30000
        counts = {obj: 0 for obj in objects}
        for _ in range(draws):
            counts[model.choose()] += 1
        for obj in objects[:5]:  # the head carries enough mass to test
            expected = model.probability_of(obj)
            assert abs(counts[obj] / draws - expected) < 0.02


# ---------------------------------------------------------------------------
# Streaming accumulators vs list-based aggregates
# ---------------------------------------------------------------------------

value_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=1,
    max_size=200,
)


class TestStreamingEquivalence:
    @given(values=value_lists)
    @settings(max_examples=80)
    def test_moments_equal_list_based_stats(self, values):
        moments = StreamingMoments()
        moments.add_many(values)
        assert moments.count == len(values)
        assert moments.minimum == min(values)
        assert moments.maximum == max(values)
        assert math.isclose(
            moments.mean, statistics.fmean(values), rel_tol=1e-9, abs_tol=1e-9
        )
        if len(values) >= 2:
            assert math.isclose(
                moments.variance,
                statistics.pvariance(values),
                rel_tol=1e-6,
                abs_tol=1e-3,
            )

    @given(values=value_lists, split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=40)
    def test_merge_equals_single_pass(self, values, split):
        split = min(split, len(values))
        left, right = StreamingMoments(), StreamingMoments()
        left.add_many(values[:split])
        right.add_many(values[split:])
        left.merge(right)
        single = StreamingMoments()
        single.add_many(values)
        assert left.count == single.count
        assert math.isclose(left.total, single.total, rel_tol=1e-12, abs_tol=1e-9)
        assert left.minimum == single.minimum
        assert left.maximum == single.maximum

    @given(
        times=st.lists(
            st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
            max_size=150,
        )
    )
    @settings(max_examples=80)
    def test_bin_counter_equals_reference_binning(self, times):
        start, end, width = 0.0, 100.0, 7.0
        counter = StreamingBinCounter(start=start, end=end, bin_width=width)
        counter.add_many(times)
        # The list-based loop bin_count() used before the rewrite.
        n = int(math.ceil((end - start) / width))
        reference = [0.0] * n
        for t in times:
            if start <= t < end:
                reference[int((t - start) / width)] += 1.0
        assert counter.counts == reference
        assert counter.dropped == sum(1 for t in times if not start <= t < end)
        series = bin_count(times, start=start, end=end, bin_width=width)
        assert list(series.values) == reference

    def test_reservoir_holds_everything_under_capacity(self):
        reservoir = ReservoirSample(100, rng=random.Random(5))
        values = [float(i) for i in range(60)]
        for v in values:
            reservoir.add(v)
        assert sorted(reservoir.values()) == values
        assert reservoir.quantile(0.0) == 0.0
        assert reservoir.quantile(1.0) == 59.0

    def test_reservoir_default_rng_is_deterministic(self):
        """Default-constructed reservoirs sample identically (RL102 fix).

        The default used to be an unseeded ``random.Random()``, which
        made quantiles of over-capacity streams vary run to run.
        """
        stream = [math.sin(i) * 100.0 for i in range(500)]

        def run():
            reservoir = ReservoirSample(16)
            for v in stream:
                reservoir.add(v)
            return reservoir.values()

        first, second = run(), run()
        assert first == second
        seeded = ReservoirSample(
            16, rng=random.Random(derive_seed(DEFAULT_SEED, "metrics.reservoir"))
        )
        for v in stream:
            seeded.add(v)
        assert seeded.values() == first

    def test_reservoir_is_uniform_enough(self):
        """Over many trials each element is retained ~capacity/n of the time."""
        rng = random.Random(11)
        capacity, n, trials = 10, 40, 400
        hits = [0] * n
        for _ in range(trials):
            reservoir = ReservoirSample(capacity, rng=rng)
            for i in range(n):
                reservoir.add(float(i))
            for kept in reservoir.values():
                hits[int(kept)] += 1
        expected = trials * capacity / n
        for count in hits:
            assert abs(count - expected) < expected  # within 100% of mean
