"""Unit tests for the mutual value-consistency coordinators (§4.2)."""

from __future__ import annotations

import pytest

from repro.consistency.mutual_value import (
    AdaptiveFCoordinator,
    AdaptiveFParameters,
    PartitionParameters,
    PartitionedMvCoordinator,
    difference,
    paired_f_history,
)
from repro.core.errors import PolicyConfigurationError
from repro.core.types import ObjectId, TTRBounds
from repro.httpsim.network import Network
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_ticks

A = ObjectId("a")
B = ObjectId("b")
BOUNDS = TTRBounds(ttr_min=1.0, ttr_max=50.0)


def build_value_pair(ticks_a, ticks_b, *, horizon=300.0):
    kernel = Kernel()
    server = OriginServer()
    proxy = ProxyCache(kernel, Network(kernel))
    UpdateFeeder(
        kernel, server, trace_from_ticks(A, ticks_a, end_time=horizon)
    )
    UpdateFeeder(
        kernel, server, trace_from_ticks(B, ticks_b, end_time=horizon)
    )
    return kernel, server, proxy


def ramp(start, step, count, dt=10.0, t0=5.0):
    return [(t0 + dt * i, start + step * i) for i in range(count)]


class TestAdaptiveF:
    def test_joint_polls_hit_both_objects(self):
        kernel, server, proxy = build_value_pair(
            ramp(10.0, 0.5, 20), ramp(50.0, -0.5, 20)
        )
        coordinator = AdaptiveFCoordinator(
            proxy, (A, B), delta=1.0, bounds=BOUNDS
        )
        coordinator.setup(server, server)
        kernel.run(until=200.0)
        polls_a = proxy.entry_for(A).poll_count
        polls_b = proxy.entry_for(B).poll_count
        assert polls_a == polls_b
        assert polls_a > 2
        assert coordinator.counters.get("joint_polls") > 0

    def test_f_history_tracks_difference(self):
        kernel, server, proxy = build_value_pair(
            ramp(10.0, 1.0, 20), ramp(5.0, 0.0, 20)
        )
        coordinator = AdaptiveFCoordinator(
            proxy, (A, B), delta=2.0, bounds=BOUNDS
        )
        coordinator.setup(server, server)
        kernel.run(until=200.0)
        history = coordinator.f_history
        assert history[0][1] == pytest.approx(10.0 - 5.0)
        assert history[-1][1] > history[0][1]  # difference grows

    def test_gamma_decreases_on_violation(self):
        # Values jump so fast that every poll interval sees >= delta
        # change in f → gamma must fall below 1.
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 5.0, 30, dt=5.0), ramp(0.0, 0.0, 30, dt=5.0)
        )
        coordinator = AdaptiveFCoordinator(
            proxy, (A, B), delta=1.0, bounds=BOUNDS,
            parameters=AdaptiveFParameters(gamma_increase=0.0),
        )
        coordinator.setup(server, server)
        kernel.run(until=150.0)
        assert coordinator.gamma < 1.0
        assert coordinator.counters.get("observed_violations") > 0

    def test_gamma_recovers_without_violations(self):
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 5.0, 8, dt=5.0), [(5.0, 0.0)]
        )
        coordinator = AdaptiveFCoordinator(
            proxy, (A, B), delta=1.0,
            bounds=TTRBounds(ttr_min=1.0, ttr_max=10.0),
            parameters=AdaptiveFParameters(gamma_decrease=0.5, gamma_increase=0.1),
        )
        coordinator.setup(server, server)
        kernel.run(until=45.0)   # fast phase: violations shrink gamma
        mid = coordinator.gamma
        assert mid < 1.0
        kernel.run(until=290.0)  # quiet phase: gamma recovers
        assert coordinator.gamma > mid

    def test_fast_f_means_frequent_polls(self):
        slow_stack = build_value_pair(ramp(0.0, 0.01, 30), ramp(0.0, 0.0, 30))
        fast_stack = build_value_pair(ramp(0.0, 5.0, 30), ramp(0.0, 0.0, 30))
        results = []
        for kernel, server, proxy in (slow_stack, fast_stack):
            coordinator = AdaptiveFCoordinator(
                proxy, (A, B), delta=1.0, bounds=BOUNDS
            )
            coordinator.setup(server, server)
            kernel.run(until=290.0)
            results.append(proxy.counters.get("polls"))
        slow_polls, fast_polls = results
        assert fast_polls > slow_polls

    def test_identical_pair_members_rejected(self):
        kernel = Kernel()
        proxy = ProxyCache(kernel, Network(kernel))
        with pytest.raises(PolicyConfigurationError):
            AdaptiveFCoordinator(proxy, (A, A), delta=1.0, bounds=BOUNDS)

    def test_stop_halts_polling(self):
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 1.0, 20), ramp(0.0, 0.0, 20)
        )
        coordinator = AdaptiveFCoordinator(proxy, (A, B), delta=1.0, bounds=BOUNDS)
        coordinator.setup(server, server)
        kernel.run(until=20.0)
        polls = proxy.counters.get("polls")
        coordinator.stop()
        kernel.run(until=200.0)
        assert proxy.counters.get("polls") == polls


class TestAdaptiveFParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            AdaptiveFParameters(gamma_decrease=1.0)
        with pytest.raises(Exception):
            AdaptiveFParameters(gamma_min=0.0)
        with pytest.raises(PolicyConfigurationError):
            AdaptiveFParameters(gamma_increase=-0.1)
        with pytest.raises(PolicyConfigurationError):
            AdaptiveFParameters(smoothing_weight=0.0)


class TestPartitioned:
    def test_setup_registers_both_with_half_delta(self):
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 1.0, 20), ramp(0.0, 1.0, 20)
        )
        coordinator = PartitionedMvCoordinator(
            proxy, (A, B), delta=2.0, bounds=BOUNDS,
            parameters=PartitionParameters(reapportion_interval=None),
        )
        coordinator.setup(server, server)
        assert coordinator.current_split == (1.0, 1.0)
        kernel.run(until=100.0)
        assert proxy.entry_for(A).poll_count > 1
        assert proxy.entry_for(B).poll_count > 1

    def test_reapportion_gives_faster_object_smaller_tolerance(self):
        # a changes 10x faster than b.
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 10.0, 25), ramp(0.0, 1.0, 25)
        )
        coordinator = PartitionedMvCoordinator(
            proxy, (A, B), delta=2.0, bounds=BOUNDS,
            parameters=PartitionParameters(reapportion_interval=20.0),
        )
        coordinator.setup(server, server)
        kernel.run(until=250.0)
        delta_a, delta_b = coordinator.current_split
        assert delta_a < delta_b
        assert delta_a + delta_b == pytest.approx(2.0)
        assert coordinator.counters.get("reapportionments") > 0

    def test_static_split_never_reapportions(self):
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 10.0, 20), ramp(0.0, 1.0, 20)
        )
        coordinator = PartitionedMvCoordinator(
            proxy, (A, B), delta=2.0, bounds=BOUNDS,
            parameters=PartitionParameters(reapportion_interval=None),
        )
        coordinator.setup(server, server)
        kernel.run(until=250.0)
        assert coordinator.counters.get("reapportionments") == 0
        assert coordinator.current_split == (1.0, 1.0)

    def test_min_fraction_floor_respected(self):
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 100.0, 25), ramp(0.0, 0.001, 25)
        )
        params = PartitionParameters(
            reapportion_interval=20.0, min_fraction=0.1
        )
        coordinator = PartitionedMvCoordinator(
            proxy, (A, B), delta=2.0, bounds=BOUNDS, parameters=params
        )
        coordinator.setup(server, server)
        kernel.run(until=250.0)
        delta_a, delta_b = coordinator.current_split
        assert delta_a >= 0.2 - 1e-9  # 0.1 * 2.0
        assert delta_b >= 0.2 - 1e-9

    def test_split_history_recorded(self):
        kernel, server, proxy = build_value_pair(
            ramp(0.0, 5.0, 25), ramp(0.0, 1.0, 25)
        )
        coordinator = PartitionedMvCoordinator(
            proxy, (A, B), delta=2.0, bounds=BOUNDS,
            parameters=PartitionParameters(reapportion_interval=50.0),
        )
        coordinator.setup(server, server)
        kernel.run(until=250.0)
        history = coordinator.split_history
        assert history[0][1:] == (1.0, 1.0)
        assert len(history) > 1
        for _, da, db in history:
            assert da + db == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PolicyConfigurationError):
            PartitionParameters(reapportion_interval=0.0)
        with pytest.raises(PolicyConfigurationError):
            PartitionParameters(min_fraction=0.0)
        with pytest.raises(PolicyConfigurationError):
            PartitionParameters(min_fraction=0.6)


class TestPairedFHistory:
    def test_reconstructs_difference_steps(self):
        kernel, server, proxy = build_value_pair(
            ramp(10.0, 1.0, 10), ramp(0.0, 0.0, 10)
        )
        coordinator = PartitionedMvCoordinator(
            proxy, (A, B), delta=1.0, bounds=BOUNDS
        )
        coordinator.setup(server, server)
        kernel.run(until=150.0)
        knots = paired_f_history(proxy, A, B, difference)
        assert knots, "expected at least one knot"
        times = [t for t, _ in knots]
        assert times == sorted(times)
        # The first knot reflects the initial fetched values.
        assert knots[0][1] == pytest.approx(10.0 - 0.0)


class TestDifference:
    def test_difference_function(self):
        assert difference(5.0, 3.0) == 2.0
        assert difference(3.0, 5.0) == -2.0


class TestAdaptiveFCustomFunctions:
    """The coordinator works for any (locally near-linear) f, not just
    the difference — Section 4.2 makes no assumption about f's form."""

    def test_ratio_function_drives_polling(self):
        kernel, server, proxy = build_value_pair(
            ramp(10.0, 0.5, 20), ramp(50.0, -0.5, 20)
        )
        coordinator = AdaptiveFCoordinator(
            proxy,
            (A, B),
            delta=0.02,
            bounds=BOUNDS,
            f=lambda a, b: a / b,
        )
        coordinator.setup(server, server)
        kernel.run(until=200.0)
        assert coordinator.counters.get("joint_polls") > 2
        times, values = zip(*coordinator.f_history)
        # f history must hold the ratio of the cached values, not the
        # difference.
        assert all(v > 0 for v in values)
        assert max(values) < 2.0

    def test_weighted_sum_function(self):
        kernel, server, proxy = build_value_pair(
            ramp(10.0, 1.0, 20), ramp(50.0, 1.0, 20)
        )
        coordinator = AdaptiveFCoordinator(
            proxy,
            (A, B),
            delta=2.0,
            bounds=BOUNDS,
            f=lambda a, b: 0.7 * a + 0.3 * b,
        )
        coordinator.setup(server, server)
        kernel.run(until=200.0)
        _times, values = zip(*coordinator.f_history)
        # The weighted sum of two rising series must be rising.
        assert values[-1] > values[0]

    def test_faster_moving_f_polls_more(self):
        """A steeper f (same data) must produce more joint polls."""

        def run_with(scale):
            kernel, server, proxy = build_value_pair(
                ramp(10.0, 1.0, 25), ramp(10.0, -1.0, 25)
            )
            coordinator = AdaptiveFCoordinator(
                proxy,
                (A, B),
                delta=5.0,
                bounds=BOUNDS,
                f=lambda a, b: scale * (a - b),
            )
            coordinator.setup(server, server)
            kernel.run(until=260.0)
            return coordinator.counters.get("joint_polls")

        assert run_with(4.0) > run_with(0.25)
