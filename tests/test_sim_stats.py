"""Unit tests for simulation statistics primitives."""

from __future__ import annotations

import math

import pytest

from repro.sim.stats import Counter, Histogram, SummaryStats, TimeWeightedValue


class TestCounter:
    def test_increment_and_get(self):
        counter = Counter()
        assert counter.get("polls") == 0
        counter.increment("polls")
        counter.increment("polls", 2)
        assert counter.get("polls") == 3

    def test_negative_increment_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.increment("polls", -1)

    def test_as_dict_is_a_copy(self):
        counter = Counter()
        counter.increment("a")
        snapshot = counter.as_dict()
        snapshot["a"] = 99
        assert counter.get("a") == 1

    def test_iteration_and_len(self):
        counter = Counter()
        counter.increment("a")
        counter.increment("b")
        assert sorted(counter) == ["a", "b"]
        assert len(counter) == 2


class TestTimeWeightedValue:
    def test_constant_signal_integral(self):
        signal = TimeWeightedValue(start=0.0, initial=2.0)
        assert signal.integral(10.0) == pytest.approx(20.0)

    def test_step_changes_accumulate_area(self):
        signal = TimeWeightedValue(start=0.0, initial=0.0)
        signal.set(5.0, 1.0)   # 0 for [0,5)
        signal.set(8.0, 0.0)   # 1 for [5,8)
        assert signal.integral(10.0) == pytest.approx(3.0)

    def test_mean_is_time_weighted(self):
        signal = TimeWeightedValue(start=0.0, initial=4.0)
        signal.set(5.0, 0.0)
        assert signal.mean(10.0) == pytest.approx(2.0)

    def test_query_does_not_mutate(self):
        signal = TimeWeightedValue(start=0.0, initial=1.0)
        assert signal.integral(4.0) == pytest.approx(4.0)
        assert signal.integral(4.0) == pytest.approx(4.0)
        signal.set(10.0, 0.0)
        assert signal.integral(10.0) == pytest.approx(10.0)

    def test_time_going_backwards_rejected(self):
        signal = TimeWeightedValue(start=5.0)
        with pytest.raises(ValueError):
            signal.set(4.0, 1.0)
        with pytest.raises(ValueError):
            signal.integral(4.0)


class TestSummaryStats:
    def test_mean_min_max(self):
        stats = SummaryStats()
        for x in (2.0, 4.0, 6.0):
            stats.observe(x)
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.count == 3

    def test_variance_matches_population_formula(self):
        stats = SummaryStats()
        data = [1.0, 2.0, 3.0, 4.0]
        for x in data:
            stats.observe(x)
        mean = sum(data) / len(data)
        expected = sum((x - mean) ** 2 for x in data) / len(data)
        assert stats.variance == pytest.approx(expected)
        assert stats.stddev == pytest.approx(math.sqrt(expected))

    def test_single_observation_has_zero_variance(self):
        stats = SummaryStats()
        stats.observe(5.0)
        assert stats.variance == 0.0

    def test_empty_min_rejected(self):
        stats = SummaryStats()
        with pytest.raises(ValueError):
            _ = stats.minimum

    def test_non_finite_observation_rejected(self):
        stats = SummaryStats()
        with pytest.raises(ValueError):
            stats.observe(math.inf)

    def test_snapshot_of_empty(self):
        snap = SummaryStats().snapshot()
        assert snap.count == 0
        assert math.isnan(snap.minimum)

    def test_snapshot_is_immutable_copy(self):
        stats = SummaryStats()
        stats.observe(1.0)
        snap = stats.snapshot()
        stats.observe(100.0)
        assert snap.maximum == 1.0


class TestHistogram:
    def test_observations_land_in_correct_bins(self):
        hist = Histogram(0.0, 10.0, bins=5)
        for x in (0.5, 2.5, 4.5, 6.5, 8.5):
            hist.observe(x)
        assert hist.counts == [1, 1, 1, 1, 1]

    def test_underflow_and_overflow_clamped(self):
        hist = Histogram(0.0, 10.0, bins=2)
        hist.observe(-5.0)
        hist.observe(15.0)
        assert hist.counts == [1, 1]
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 2

    def test_boundary_value_goes_to_upper_bin(self):
        hist = Histogram(0.0, 10.0, bins=2)
        hist.observe(5.0)
        assert hist.counts == [0, 1]

    def test_high_edge_counts_as_overflow(self):
        hist = Histogram(0.0, 10.0, bins=2)
        hist.observe(10.0)
        assert hist.overflow == 1

    def test_bin_edges(self):
        hist = Histogram(0.0, 10.0, bins=4)
        assert hist.bin_edges() == [0.0, 2.5, 5.0, 7.5, 10.0]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 10.0, bins=0)
        with pytest.raises(ValueError):
            Histogram(10.0, 0.0, bins=2)
