"""Failure-injection tests: proxy crash-and-recover (paper §3.1).

The paper claims LIMD's minimal state makes proxy recovery trivial —
reset every TTR to TTR_min and resume.  These tests crash the proxy
mid-run and verify (i) the reset actually happens, (ii) polling resumes
and re-adapts, and (iii) consistency guarantees hold across the crash.
"""

from __future__ import annotations

import pytest

from repro.consistency.base import FixedTTRPolicy
from repro.consistency.limd import limd_policy_factory
from repro.consistency.adaptive_value import (
    AdaptiveValueParameters,
    AdaptiveValueTTRPolicy,
)
from repro.core.types import MINUTE, ObjectId, TTRBounds
from repro.experiments.workloads import news_trace
from repro.httpsim.network import Network
from repro.metrics.collector import collect_temporal
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_times

X = ObjectId("x")


class TestPolicyReset:
    def test_limd_reset_restores_ttr_min(self):
        from tests.test_consistency_limd import make_policy, outcome

        policy = make_policy(l=0.5, ttr_max=500.0)
        t = 0.0
        for _ in range(8):
            t += policy.current_ttr
            policy.next_ttr(outcome(t, modified=False, last_modified=0.0))
        assert policy.current_ttr > 10.0
        policy.reset()
        assert policy.current_ttr == 10.0  # back to TTR_min
        assert policy.last_case == "reset"

    def test_adaptive_value_reset_clears_learning(self):
        from tests.test_consistency_adaptive_value import outcome

        bounds = TTRBounds(ttr_min=1.0, ttr_max=100.0)
        policy = AdaptiveValueTTRPolicy(
            1.0, bounds=bounds, parameters=AdaptiveValueParameters()
        )
        policy.next_ttr(outcome(0.0, 0.0))
        policy.next_ttr(outcome(10.0, 0.5))
        assert policy.observed_min_ttr is not None
        policy.reset()
        assert policy.observed_min_ttr is None
        assert policy.current_ttr == 1.0

    def test_fixed_policy_reset_is_noop(self):
        policy = FixedTTRPolicy(ttr=7.0)
        policy.reset()
        assert policy.current_ttr == 7.0


class TestProxyRecovery:
    def _stack(self, trace):
        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        UpdateFeeder(kernel, server, trace)
        return kernel, server, proxy

    def test_recovery_resets_all_objects(self):
        trace = trace_from_times(X, [5.0], end_time=10000.0)
        kernel, server, proxy = self._stack(trace)
        factory = limd_policy_factory(10.0, ttr_max=600.0)
        proxy.register_object(X, server, factory(X))
        kernel.run(until=5000.0)  # long quiet stretch: TTR grows
        policy = proxy.refresher_for(X).policy
        assert policy.current_ttr > 10.0
        recovered = proxy.recover_from_failure()
        assert recovered == 1
        assert policy.current_ttr == 10.0
        assert proxy.counters.get("recoveries") == 1

    def test_polling_resumes_after_recovery(self):
        trace = trace_from_times(X, [5.0], end_time=1000.0)
        kernel, server, proxy = self._stack(trace)
        proxy.register_object(X, server, FixedTTRPolicy(ttr=50.0))
        kernel.run(until=100.0)
        polls_before = proxy.entry_for(X).poll_count
        kernel.schedule_at(100.0, lambda k: proxy.recover_from_failure())
        kernel.run(until=400.0)
        assert proxy.entry_for(X).poll_count > polls_before

    def test_recovery_reschedules_promptly(self):
        """After recovery the next poll happens at TTR_min, not at the
        stale long TTR — a cold object that went hot during the outage
        is re-examined quickly."""
        trace = trace_from_times(X, [5.0], end_time=10000.0)
        kernel, server, proxy = self._stack(trace)
        factory = limd_policy_factory(10.0, ttr_max=3600.0)
        proxy.register_object(X, server, factory(X))
        kernel.run(until=5000.0)
        refresher = proxy.refresher_for(X)
        proxy.recover_from_failure()
        next_poll = refresher.next_poll_time
        assert next_poll is not None
        assert next_poll - kernel.now() == pytest.approx(10.0)

    def test_cache_survives_recovery(self):
        trace = trace_from_times(X, [5.0], end_time=1000.0)
        kernel, server, proxy = self._stack(trace)
        proxy.register_object(X, server, FixedTTRPolicy(ttr=10.0))
        kernel.run(until=50.0)
        version_before = proxy.entry_for(X).snapshot.version
        proxy.recover_from_failure()
        assert proxy.entry_for(X).snapshot.version == version_before

    def test_consistency_maintained_across_crash(self):
        """End-to-end: crash mid-run on a real workload; guarantees
        still hold over the full horizon within normal LIMD fidelity."""
        trace = news_trace("cnn_fn")
        delta = 10 * MINUTE
        kernel, server, proxy = self._stack(trace)
        factory = limd_policy_factory(delta, ttr_max=60 * MINUTE)
        proxy.register_object(trace.object_id, server, factory(trace.object_id))
        crash_at = trace.duration / 2
        kernel.schedule_at(crash_at, lambda k: proxy.recover_from_failure())
        kernel.run(until=trace.end_time)
        report = collect_temporal(proxy, trace, delta).report
        assert report.fidelity_by_time >= 0.85

    def test_recovery_with_passive_policies_is_safe(self):
        from repro.consistency.base import PassivePolicy

        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        server.create_object(X, created_at=0.0)
        proxy.register_object(X, server, PassivePolicy())
        assert proxy.recover_from_failure() == 1
        kernel.run(until=100.0)
        # Passive objects stay passive after recovery (infinite TTR).
        assert proxy.entry_for(X).poll_count == 1
