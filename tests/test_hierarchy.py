"""Tests for hierarchical caching (ProxyCache as an upstream) on chains.

Chains are fan-out-1 :class:`~repro.topology.tree.TopologyTree` shapes;
the deprecated :class:`~repro.proxy.hierarchy.ProxyChain` shim over the
same layer is pinned in ``TestProxyChainShim`` (warning + byte-equal
behaviour).  Wider trees, push levels, and hybrids are covered by
``tests/test_topology_tree.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.api.deprecation import ReproDeprecationWarning
from repro.consistency.base import FixedTTRPolicy
from repro.consistency.limd import LimdPolicy
from repro.core.types import ObjectId, TTRBounds
from repro.httpsim.messages import Status, conditional_get
from repro.httpsim.network import Network
from repro.metrics.fidelity import temporal_fidelity
from repro.proxy.hierarchy import ProxyChain
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder, feed_traces
from repro.sim.kernel import Kernel
from repro.topology import TopologyTree, uniform_levels
from repro.traces.model import trace_from_times
from repro.traces.synthetic import poisson_trace

X = ObjectId("x")


def _single_proxy_stack():
    kernel = Kernel()
    server = OriginServer()
    server.create_object(X, created_at=0.0)
    proxy = ProxyCache(kernel, Network(kernel))
    return kernel, server, proxy


class TestProxyHandleRequest:
    def test_unknown_object_is_404(self):
        _kernel, _server, proxy = _single_proxy_stack()
        response = proxy.handle_request(conditional_get(X), now=0.0)
        assert response.status is Status.NOT_FOUND

    def test_cached_object_served_with_200(self):
        _kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=100.0))
        response = proxy.handle_request(conditional_get(X), now=1.0)
        assert response.status is Status.OK
        assert response.version == 0
        assert response.last_modified == 0.0

    def test_304_when_child_copy_is_current(self):
        _kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=100.0))
        request = conditional_get(X, if_modified_since=0.0)
        response = proxy.handle_request(request, now=1.0)
        assert response.status is Status.NOT_MODIFIED

    def test_history_reflects_only_observed_versions(self):
        kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=50.0))
        # Three origin updates, but the proxy polls only at t=50 and
        # t=100 — it observes the versions of t=45 and t=80; the t=10
        # version was overwritten before any poll and stays invisible.
        for when in (10.0, 45.0, 80.0):
            kernel.schedule_at(
                when, lambda k, w=when: server.apply_update(X, w)
            )
        kernel.run(until=100.0)
        response = proxy.handle_request(
            conditional_get(X, want_history=True), now=100.0
        )
        history = response.modification_history
        assert history is not None
        assert 10.0 not in history
        assert 45.0 in history
        assert history[-1] == 80.0

    def test_downstream_counters_tracked(self):
        _kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=100.0))
        proxy.handle_request(conditional_get(X), now=0.0)
        proxy.handle_request(conditional_get(ObjectId("nope")), now=0.0)
        assert proxy.counters.get("downstream_requests") == 2
        assert proxy.counters.get("downstream_404") == 1


def _chain(depth, ttl_by_level=None):
    """A fan-out-1 tree with per-level fixed TTRs, object registered."""
    kernel = Kernel()
    origin = OriginServer()
    origin.create_object(X, created_at=0.0)
    tree = TopologyTree(kernel, origin, uniform_levels(depth))
    ttl_by_level = ttl_by_level or {}
    tree.register_object(
        X,
        lambda level, _oid: FixedTTRPolicy(ttr=ttl_by_level.get(level, 60.0)),
    )
    return kernel, origin, tree


class TestChainTopology:
    def test_every_level_populated_after_registration(self):
        _kernel, _origin, tree = _chain(depth=3)
        for node in tree.nodes:
            assert node.proxy.entry_for(X).populated

    def test_root_and_edge_identities(self):
        _kernel, _origin, tree = _chain(depth=3)
        assert tree.root is tree.nodes[0]
        assert tree.edge_nodes == (tree.nodes[2],)
        assert tree.depth == 3
        assert tree.node_count == 3

    def test_upstream_wiring(self):
        _kernel, origin, tree = _chain(depth=2)
        assert tree.root.upstream is origin
        assert tree.edge_nodes[0].upstream is tree.root.proxy
        assert tree.edge_nodes[0].parent is tree.root

    def test_update_propagates_level_by_level(self):
        kernel, origin, tree = _chain(
            depth=2, ttl_by_level={0: 10.0, 1: 25.0}
        )
        kernel.schedule_at(5.0, lambda k: origin.apply_update(X, 5.0))
        kernel.run(until=100.0)
        root_snapshot = tree.root.proxy.entry_for(X).snapshot
        edge_snapshot = tree.edge_nodes[0].proxy.entry_for(X).snapshot
        assert root_snapshot is not None and root_snapshot.version == 1
        assert edge_snapshot is not None and edge_snapshot.version == 1

    def test_edge_staleness_bounded_by_sum_of_ttrs(self):
        # Root refreshes every 10 s, edge every 25 s: the edge copy can
        # be at most ~35 s behind the origin (Σ Δᵢ).
        kernel, origin, tree = _chain(
            depth=2, ttl_by_level={0: 10.0, 1: 25.0}
        )
        update_time = 7.0
        kernel.schedule_at(
            update_time, lambda k: origin.apply_update(X, update_time)
        )
        # Find the first instant the edge holds version 1.
        seen_at = []
        edge = tree.edge_nodes[0].proxy

        def probe(kernel_):
            snapshot = edge.entry_for(X).snapshot
            if snapshot and snapshot.version == 1 and not seen_at:
                seen_at.append(kernel_.now())

        for t in range(1, 100):
            kernel.schedule_at(float(t), probe)
        kernel.run(until=100.0)
        assert seen_at, "edge never saw the update"
        assert seen_at[0] - update_time <= 10.0 + 25.0 + 1.0

    def test_origin_sees_only_root_polls(self):
        kernel, origin, tree = _chain(
            depth=3, ttl_by_level={0: 10.0, 1: 10.0, 2: 10.0}
        )
        kernel.run(until=200.0)
        root_polls = tree.root.proxy.counters.get("polls")
        assert tree.origin_request_count() == root_polls
        # Deeper levels never reach the origin.
        assert sum(tree.polls_per_level()[1:]) > 0

    def test_polls_per_level_shapes(self):
        kernel, _origin, tree = _chain(depth=2)
        kernel.run(until=120.0)
        per_level_totals = tree.polls_per_level()
        per_object = tree.polls_per_level(X)
        assert len(per_level_totals) == len(per_object) == 2
        assert per_level_totals == per_object  # only one object registered


class TestHierarchyFidelity:
    def test_two_level_limd_keeps_composed_bound(self):
        """LIMD at both levels: edge out-of-sync stays within 2Δ mostly."""
        rng = random.Random(13)
        trace = poisson_trace(str(X), rng, 30.0 / 3600.0, end=4 * 3600.0)
        kernel = Kernel()
        origin = OriginServer()
        feed_traces(kernel, origin, [trace])
        delta = 120.0
        tree = TopologyTree(kernel, origin, uniform_levels(2))
        tree.register_object(
            X,
            lambda level, _oid: LimdPolicy(
                delta, bounds=TTRBounds(ttr_min=delta, ttr_max=1800.0)
            ),
        )
        kernel.run(until=trace.end_time)
        poll_times = [
            record.time
            for record in tree.edge_nodes[0].proxy.entry_for(X).fetch_log
        ]
        report = temporal_fidelity(trace, poll_times, 2 * delta)
        # The composed bound is approximate (LIMD itself is best-effort)
        # but the edge must track the origin with high time-fidelity.
        assert report.fidelity_by_time > 0.8

    def test_deep_chain_version_monotone_at_every_level(self):
        rng = random.Random(29)
        times = sorted(rng.uniform(0, 3600.0) for _ in range(40))
        trace = trace_from_times(X, times, end_time=3600.0)
        kernel = Kernel()
        origin = OriginServer()
        UpdateFeeder(kernel, origin, trace)
        tree = TopologyTree(kernel, origin, uniform_levels(4))
        tree.register_object(
            X, lambda level, _oid: FixedTTRPolicy(ttr=30.0 + 10.0 * level)
        )
        kernel.run(until=3600.0)
        for node in tree.nodes:
            versions = [
                record.snapshot.version
                for record in node.proxy.entry_for(X).fetch_log
            ]
            assert versions == sorted(versions)


class TestHierarchyFailureRecovery:
    """Section 3.1's recovery story applied level-by-level."""

    def test_parent_recovery_does_not_break_children(self):
        kernel, origin, tree = _chain(depth=2, ttl_by_level={0: 20.0, 1: 20.0})
        kernel.schedule_at(30.0, lambda k: origin.apply_update(X, 30.0))
        # Parent crashes and recovers mid-run: TTRs reset, cache kept.
        kernel.schedule_at(
            45.0, lambda k: tree.root.proxy.recover_from_failure()
        )
        kernel.run(until=120.0)
        assert tree.root.proxy.counters.get("recoveries") == 1
        edge_snapshot = tree.edge_nodes[0].proxy.entry_for(X).snapshot
        assert edge_snapshot is not None
        # The update still propagated through the recovered parent.
        assert edge_snapshot.version == 1

    def test_edge_recovery_resets_only_edge(self):
        kernel, _origin, tree = _chain(depth=2, ttl_by_level={0: 20.0, 1: 20.0})
        edge = tree.edge_nodes[0].proxy
        kernel.schedule_at(50.0, lambda k: edge.recover_from_failure())
        kernel.run(until=100.0)
        assert edge.counters.get("recoveries") == 1
        assert tree.root.proxy.counters.get("recoveries") == 0
        # Both copies stay populated and serve requests.
        for node in tree.nodes:
            assert node.proxy.entry_for(X).populated


class TestProxyChainShim:
    """The deprecated ProxyChain: warns, and matches the tree exactly."""

    def _run_chain(self, depth):
        kernel = Kernel()
        origin = OriginServer()
        origin.create_object(X, created_at=0.0)
        with pytest.warns(ReproDeprecationWarning, match="ProxyChain"):
            chain = ProxyChain(kernel, origin, depth=depth)
        chain.register_object(
            X, lambda level, _oid: FixedTTRPolicy(ttr=10.0 + 5.0 * level)
        )
        kernel.schedule_at(13.0, lambda k: origin.apply_update(X, 13.0))
        kernel.run(until=300.0)
        return chain

    def _run_tree(self, depth):
        kernel = Kernel()
        origin = OriginServer()
        origin.create_object(X, created_at=0.0)
        tree = TopologyTree(kernel, origin, uniform_levels(depth))
        tree.register_object(
            X, lambda level, _oid: FixedTTRPolicy(ttr=10.0 + 5.0 * level)
        )
        kernel.schedule_at(13.0, lambda k: origin.apply_update(X, 13.0))
        kernel.run(until=300.0)
        return tree

    def test_construction_warns(self):
        kernel = Kernel()
        with pytest.warns(ReproDeprecationWarning, match="TopologyTree"):
            ProxyChain(kernel, OriginServer(), depth=1)

    def test_depth_validated(self):
        kernel = Kernel()
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(ValueError):
                ProxyChain(kernel, OriginServer(), depth=0)

    def test_chain_api_preserved(self):
        chain = self._run_chain(depth=3)
        assert chain.depth == 3
        assert chain.root is chain.proxies[0]
        assert chain.edge is chain.proxies[2]
        assert [p.name for p in chain.proxies] == [
            "proxy-L0",
            "proxy-L1",
            "proxy-L2",
        ]
        assert chain.upstream_of(1) is chain.proxies[0]
        assert chain.tree.depth == 3

    def test_chain_rows_match_tree_exactly(self):
        """The shim reproduces a fan-out-1 tree poll-for-poll."""
        for depth in (1, 2, 4):
            chain = self._run_chain(depth)
            tree = self._run_tree(depth)
            assert chain.polls_per_level() == tree.polls_per_level()
            assert chain.polls_per_level(X) == tree.polls_per_level(X)
            assert chain.origin_request_count() == tree.origin_request_count()
            chain_log = [
                (record.time, record.snapshot.version, record.modified)
                for proxy in chain.proxies
                for record in proxy.entry_for(X).fetch_log
            ]
            tree_log = [
                (record.time, record.snapshot.version, record.modified)
                for node in tree.nodes
                for record in node.proxy.entry_for(X).fetch_log
            ]
            assert chain_log == tree_log
