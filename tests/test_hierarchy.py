"""Tests for hierarchical proxy caching (ProxyCache as an upstream)."""

from __future__ import annotations

import random

import pytest

from repro.consistency.base import FixedTTRPolicy
from repro.consistency.limd import LimdPolicy
from repro.core.types import ObjectId, TTRBounds
from repro.httpsim.messages import Status, conditional_get
from repro.httpsim.network import Network
from repro.metrics.fidelity import temporal_fidelity
from repro.proxy.hierarchy import ProxyChain
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder, feed_traces
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_times
from repro.traces.synthetic import poisson_trace

X = ObjectId("x")


def _single_proxy_stack():
    kernel = Kernel()
    server = OriginServer()
    server.create_object(X, created_at=0.0)
    proxy = ProxyCache(kernel, Network(kernel))
    return kernel, server, proxy


class TestProxyHandleRequest:
    def test_unknown_object_is_404(self):
        _kernel, _server, proxy = _single_proxy_stack()
        response = proxy.handle_request(conditional_get(X), now=0.0)
        assert response.status is Status.NOT_FOUND

    def test_cached_object_served_with_200(self):
        _kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=100.0))
        response = proxy.handle_request(conditional_get(X), now=1.0)
        assert response.status is Status.OK
        assert response.version == 0
        assert response.last_modified == 0.0

    def test_304_when_child_copy_is_current(self):
        _kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=100.0))
        request = conditional_get(X, if_modified_since=0.0)
        response = proxy.handle_request(request, now=1.0)
        assert response.status is Status.NOT_MODIFIED

    def test_history_reflects_only_observed_versions(self):
        kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=50.0))
        # Three origin updates, but the proxy polls only at t=50 and
        # t=100 — it observes the versions of t=45 and t=80; the t=10
        # version was overwritten before any poll and stays invisible.
        for when in (10.0, 45.0, 80.0):
            kernel.schedule_at(
                when, lambda k, w=when: server.apply_update(X, w)
            )
        kernel.run(until=100.0)
        response = proxy.handle_request(
            conditional_get(X, want_history=True), now=100.0
        )
        history = response.modification_history
        assert history is not None
        assert 10.0 not in history
        assert 45.0 in history
        assert history[-1] == 80.0

    def test_downstream_counters_tracked(self):
        _kernel, server, proxy = _single_proxy_stack()
        proxy.register_object(X, server, FixedTTRPolicy(ttr=100.0))
        proxy.handle_request(conditional_get(X), now=0.0)
        proxy.handle_request(conditional_get(ObjectId("nope")), now=0.0)
        assert proxy.counters.get("downstream_requests") == 2
        assert proxy.counters.get("downstream_404") == 1


class TestProxyChain:
    def _chain(self, depth, ttl_by_level=None):
        kernel = Kernel()
        origin = OriginServer()
        origin.create_object(X, created_at=0.0)
        chain = ProxyChain(kernel, origin, depth=depth)
        ttl_by_level = ttl_by_level or {}
        chain.register_object(
            X,
            lambda level, _oid: FixedTTRPolicy(
                ttr=ttl_by_level.get(level, 60.0)
            ),
        )
        return kernel, origin, chain

    def test_depth_validated(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            ProxyChain(kernel, OriginServer(), depth=0)

    def test_every_level_populated_after_registration(self):
        _kernel, _origin, chain = self._chain(depth=3)
        for proxy in chain.proxies:
            assert proxy.entry_for(X).populated

    def test_root_and_edge_identities(self):
        _kernel, _origin, chain = self._chain(depth=3)
        assert chain.root is chain.proxies[0]
        assert chain.edge is chain.proxies[2]
        assert chain.depth == 3

    def test_upstream_wiring(self):
        _kernel, origin, chain = self._chain(depth=2)
        assert chain.upstream_of(0) is origin
        assert chain.upstream_of(1) is chain.proxies[0]

    def test_update_propagates_level_by_level(self):
        kernel, origin, chain = self._chain(
            depth=2, ttl_by_level={0: 10.0, 1: 25.0}
        )
        kernel.schedule_at(5.0, lambda k: origin.apply_update(X, 5.0))
        kernel.run(until=100.0)
        root_snapshot = chain.root.entry_for(X).snapshot
        edge_snapshot = chain.edge.entry_for(X).snapshot
        assert root_snapshot is not None and root_snapshot.version == 1
        assert edge_snapshot is not None and edge_snapshot.version == 1

    def test_edge_staleness_bounded_by_sum_of_ttrs(self):
        # Root refreshes every 10 s, edge every 25 s: the edge copy can
        # be at most ~35 s behind the origin.
        kernel, origin, chain = self._chain(
            depth=2, ttl_by_level={0: 10.0, 1: 25.0}
        )
        update_time = 7.0
        kernel.schedule_at(
            update_time, lambda k: origin.apply_update(X, update_time)
        )
        # Find the first instant the edge holds version 1.
        seen_at = []

        def probe(kernel_):
            snapshot = chain.edge.entry_for(X).snapshot
            if snapshot and snapshot.version == 1 and not seen_at:
                seen_at.append(kernel_.now())

        for t in range(1, 100):
            kernel.schedule_at(float(t), probe)
        kernel.run(until=100.0)
        assert seen_at, "edge never saw the update"
        assert seen_at[0] - update_time <= 10.0 + 25.0 + 1.0

    def test_origin_sees_only_root_polls(self):
        kernel, origin, chain = self._chain(
            depth=3, ttl_by_level={0: 10.0, 1: 10.0, 2: 10.0}
        )
        kernel.run(until=200.0)
        root_polls = chain.root.counters.get("polls")
        assert chain.origin_request_count() == root_polls
        # Deeper levels never reach the origin.
        assert (
            chain.proxies[1].counters.get("polls")
            + chain.proxies[2].counters.get("polls")
            > 0
        )

    def test_polls_per_level_shapes(self):
        kernel, _origin, chain = self._chain(depth=2)
        kernel.run(until=120.0)
        per_level_totals = chain.polls_per_level()
        per_object = chain.polls_per_level(X)
        assert len(per_level_totals) == len(per_object) == 2
        assert per_level_totals == per_object  # only one object registered


class TestHierarchyFidelity:
    def test_two_level_limd_keeps_composed_bound(self):
        """LIMD at both levels: edge out-of-sync stays within 2Δ mostly."""
        rng = random.Random(13)
        trace = poisson_trace(str(X), rng, 30.0 / 3600.0, end=4 * 3600.0)
        kernel = Kernel()
        origin = OriginServer()
        feed_traces(kernel, origin, [trace])
        delta = 120.0
        chain = ProxyChain(kernel, origin, depth=2)
        chain.register_object(
            X,
            lambda level, _oid: LimdPolicy(
                delta, bounds=TTRBounds(ttr_min=delta, ttr_max=1800.0)
            ),
        )
        kernel.run(until=trace.end_time)
        poll_times = [
            record.time for record in chain.edge.entry_for(X).fetch_log
        ]
        report = temporal_fidelity(trace, poll_times, 2 * delta)
        # The composed bound is approximate (LIMD itself is best-effort)
        # but the edge must track the origin with high time-fidelity.
        assert report.fidelity_by_time > 0.8

    def test_deep_chain_version_monotone_at_every_level(self):
        rng = random.Random(29)
        times = sorted(rng.uniform(0, 3600.0) for _ in range(40))
        trace = trace_from_times(X, times, end_time=3600.0)
        kernel = Kernel()
        origin = OriginServer()
        UpdateFeeder(kernel, origin, trace)
        chain = ProxyChain(kernel, origin, depth=4)
        chain.register_object(
            X, lambda level, _oid: FixedTTRPolicy(ttr=30.0 + 10.0 * level)
        )
        kernel.run(until=3600.0)
        for proxy in chain.proxies:
            versions = [
                record.snapshot.version
                for record in proxy.entry_for(X).fetch_log
            ]
            assert versions == sorted(versions)


class TestHierarchyFailureRecovery:
    """Section 3.1's recovery story applied level-by-level."""

    def test_parent_recovery_does_not_break_children(self):
        kernel = Kernel()
        origin = OriginServer()
        origin.create_object(X, created_at=0.0)
        chain = ProxyChain(kernel, origin, depth=2)
        chain.register_object(
            X, lambda level, _oid: FixedTTRPolicy(ttr=20.0)
        )
        kernel.schedule_at(30.0, lambda k: origin.apply_update(X, 30.0))
        # Parent crashes and recovers mid-run: TTRs reset, cache kept.
        kernel.schedule_at(
            45.0, lambda k: chain.root.recover_from_failure()
        )
        kernel.run(until=120.0)
        assert chain.root.counters.get("recoveries") == 1
        edge_snapshot = chain.edge.entry_for(X).snapshot
        assert edge_snapshot is not None
        # The update still propagated through the recovered parent.
        assert edge_snapshot.version == 1

    def test_edge_recovery_resets_only_edge(self):
        kernel = Kernel()
        origin = OriginServer()
        origin.create_object(X, created_at=0.0)
        chain = ProxyChain(kernel, origin, depth=2)
        chain.register_object(
            X, lambda level, _oid: FixedTTRPolicy(ttr=20.0)
        )
        kernel.schedule_at(
            50.0, lambda k: chain.edge.recover_from_failure()
        )
        kernel.run(until=100.0)
        assert chain.edge.counters.get("recoveries") == 1
        assert chain.root.counters.get("recoveries") == 0
        # Both copies stay populated and serve requests.
        for proxy in chain.proxies:
            assert proxy.entry_for(X).populated
