"""Suppression directives: parsing and end-to-end behaviour.

The grammar (``# repro-lint: disable=RLxxx (justification)``) is part
of the reviewable surface — the justification must be parenthesised so
the code-list parser stops before the prose.
"""

import unittest
from pathlib import Path

from repro.lint import lint_paths, parse_suppressions

FIXTURES = Path(__file__).parent / "lint_fixtures"


class TestParseSuppressions(unittest.TestCase):
    def test_line_level_directive(self):
        source = "t0 = time.time()  # repro-lint: disable=RL101 (log label)\n"
        suppressions = parse_suppressions(source)
        self.assertTrue(suppressions.is_suppressed("RL101", 1))
        self.assertFalse(suppressions.is_suppressed("RL101", 2))
        self.assertFalse(suppressions.is_suppressed("RL102", 1))

    def test_file_wide_directive(self):
        source = "# repro-lint: disable-file=RL201 (shim module)\nx = 1\n"
        suppressions = parse_suppressions(source)
        self.assertTrue(suppressions.is_suppressed("RL201", 1))
        self.assertTrue(suppressions.is_suppressed("RL201", 99))

    def test_disable_all(self):
        source = "x = 1  # repro-lint: disable=all (generated file)\n"
        suppressions = parse_suppressions(source)
        self.assertTrue(suppressions.is_suppressed("RL101", 1))
        self.assertTrue(suppressions.is_suppressed("RL302", 1))

    def test_multiple_codes_comma_separated(self):
        source = "x = 1  # repro-lint: disable=RL101, RL104 (both)\n"
        suppressions = parse_suppressions(source)
        self.assertTrue(suppressions.is_suppressed("RL101", 1))
        self.assertTrue(suppressions.is_suppressed("RL104", 1))
        self.assertFalse(suppressions.is_suppressed("RL102", 1))

    def test_unparenthesised_prose_invalidates_the_token(self):
        """Prose glued to the code list makes the token invalid.

        This pins the sharp edge of the grammar: the justification must
        be parenthesised, otherwise it merges with the final code token
        and nothing is suppressed.
        """
        source = "x = 1  # repro-lint: disable=RL101 log label only\n"
        suppressions = parse_suppressions(source)
        self.assertFalse(suppressions.is_suppressed("RL101", 1))

    def test_unknown_tokens_are_ignored(self):
        source = "x = 1  # repro-lint: disable=RL101, bogus (mixed)\n"
        suppressions = parse_suppressions(source)
        self.assertTrue(suppressions.is_suppressed("RL101", 1))
        self.assertFalse(suppressions.is_suppressed("bogus", 1))

    def test_plain_comments_do_not_suppress(self):
        suppressions = parse_suppressions("x = 1  # normal comment\n")
        self.assertFalse(suppressions.is_suppressed("RL101", 1))


class TestSuppressionFixtures(unittest.TestCase):
    """Suppressed findings vanish from the run but are counted."""

    def test_inline_suppression_counts_one(self):
        path = FIXTURES / "suppress" / "sim" / "inline.py"
        run = lint_paths([str(path)], only=["RL101"])
        self.assertEqual([f.render() for f in run.findings], [])
        self.assertEqual(run.suppressed_count, 1)

    def test_file_wide_suppression_covers_every_finding(self):
        path = FIXTURES / "suppress" / "sim" / "filewide.py"
        run = lint_paths([str(path)], only=["RL101"])
        self.assertEqual([f.render() for f in run.findings], [])
        self.assertEqual(run.suppressed_count, 2)

    def test_full_rule_pack_respects_suppressions(self):
        run = lint_paths([str(FIXTURES / "suppress")])
        self.assertEqual([f.render() for f in run.findings], [])
        self.assertEqual(run.suppressed_count, 3)
        self.assertEqual(run.files_scanned, 2)


if __name__ == "__main__":
    unittest.main()
