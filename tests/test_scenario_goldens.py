"""Golden-output regression suite for every registered scenario.

Each committed file under ``tests/goldens/`` pins the rows of one
scenario's tiny smoke run (config in :mod:`repro.scenarios.smoke`).
A fresh run must reproduce the committed rows byte-for-byte — serially
*and* with ``workers=2`` — so refactors of the simulator, metrics, or
engine cannot silently drift experiment output.

After an intentional behaviour change, refresh with::

    PYTHONPATH=src python tools/update_goldens.py

and review the row diffs like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.registry import SCENARIOS
from repro.scenarios.smoke import (
    TINY_CONFIGS,
    canonical_rows,
    rows_digest,
    run_tiny,
)

GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"

REFRESH_HINT = (
    "golden out of date or missing; if the change is intentional run "
    "`PYTHONPATH=src python tools/update_goldens.py` and review the diff"
)


def _load_golden(name: str) -> dict:
    path = GOLDENS_DIR / f"{name}.json"
    assert path.exists(), f"{path.name}: {REFRESH_HINT}"
    return json.loads(path.read_text())


class TestCoverage:
    def test_every_scenario_has_a_tiny_config(self):
        assert sorted(TINY_CONFIGS) == SCENARIOS.names()

    def test_every_scenario_has_a_committed_golden(self):
        committed = {path.stem for path in GOLDENS_DIR.glob("*.json")}
        assert committed == set(SCENARIOS.names()), REFRESH_HINT

    def test_no_orphan_goldens(self):
        committed = {path.stem for path in GOLDENS_DIR.glob("*.json")}
        orphans = committed - set(SCENARIOS.names())
        assert not orphans, f"goldens without scenarios: {sorted(orphans)}"


@pytest.mark.parametrize("name", sorted(TINY_CONFIGS))
def test_golden_rows_serial_and_parallel(name):
    golden = _load_golden(name)
    result = run_tiny(name)

    assert rows_digest(result.rows) == golden["row_hash"], (
        f"{name}: {REFRESH_HINT}"
    )
    # Compare through the canonical encoding so the committed JSON and
    # the fresh rows are held to exactly the same representation.
    assert canonical_rows(result.rows) == canonical_rows(golden["rows"]), (
        f"{name}: {REFRESH_HINT}"
    )

    parallel = run_tiny(name, workers=2)
    assert canonical_rows(parallel.rows) == canonical_rows(result.rows), (
        f"{name}: workers=2 rows differ from serial rows"
    )


def test_golden_seed_matches_default():
    """Goldens must be generated at the canonical experiment seed."""
    from repro.scenarios.engine import DEFAULT_SEED

    for path in GOLDENS_DIR.glob("*.json"):
        assert json.loads(path.read_text())["seed"] == DEFAULT_SEED, path.name
