"""Sharded tree execution: partition planning and merge determinism.

The load-bearing property: a sharded run's merged result table is
byte-identical to the serial unsharded run — for any shard count the
tree admits, serial or process-pool execution, exact or fast-forward
fidelity.  Plus unit coverage of the partition planner's boundary
selection, range balancing, and ownership bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.api.builder import SimulationBuilder, run_simulation
from repro.api.config import LevelConfig, SimulationConfigError
from repro.topology.sharding import plan_shards


class TestPlanShards:
    def test_boundary_is_shallowest_wide_enough_level(self):
        plan = plan_shards((1, 4, 2), 3)
        assert plan.boundary_level == 1  # widths: 1, 4, 8
        assert plan.ranges == ((0, 2), (2, 3), (3, 4))

    def test_single_shard_spans_everything(self):
        plan = plan_shards((2, 3), 1)
        assert plan.boundary_level == 0
        assert plan.ranges == ((0, 2),)

    def test_ranges_balance_within_one(self):
        plan = plan_shards((1, 10), 4)
        sizes = [stop - start for start, stop in plan.ranges]
        assert sizes == [3, 3, 2, 2]
        assert plan.ranges[0][0] == 0
        assert plan.ranges[-1][1] == 10

    def test_too_many_shards_rejected(self):
        with pytest.raises(SimulationConfigError):
            plan_shards((2, 2), 5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationConfigError):
            plan_shards((2, 2), 0)
        with pytest.raises(SimulationConfigError):
            plan_shards((), 2)

    @pytest.mark.parametrize(
        "fan_outs,shards",
        [((1, 4, 2), 3), ((2, 3), 2), ((1, 8, 16), 5), ((3,), 3)],
    )
    def test_owns_partitions_every_node_exactly_once(self, fan_outs, shards):
        plan = plan_shards(fan_outs, shards)
        all_nodes = set()
        width = 1
        for level, fan_out in enumerate(fan_outs):
            width *= fan_out
            all_nodes.update((level, index) for index in range(width))
        owned = []
        for shard in range(shards):
            selection = plan.selection(shard)
            assert selection.owns <= selection.registers
            owned.extend(selection.owns)
        assert len(owned) == len(set(owned)), "node owned twice"
        assert set(owned) == all_nodes

    def test_registers_is_ancestor_closed(self):
        plan = plan_shards((1, 4, 2), 4)
        for shard in range(4):
            selection = plan.selection(shard)
            for level, index in selection.registers:
                if level == 0:
                    continue
                parent = (level - 1, index // plan.fan_outs[level])
                assert parent in selection.registers


def _config(*, shards=1, fidelity="exact", log_events=False):
    return (
        SimulationBuilder()
        .workload("poisson", "a", "b", "c", rate_per_hour=5.0, hours=1.0)
        .policy("static_ttl", ttl=200.0)
        .topology(
            "tree",
            levels=[
                LevelConfig(fan_out=1),
                LevelConfig(fan_out=3),
                LevelConfig(fan_out=2),
            ],
        )
        .seed(23)
        .fidelity_delta(300.0)
        .horizon(3600.0)
        .fidelity(fidelity)
        .shards(shards)
        .log_events(log_events)
        .build()
    )


class TestMergeDeterminism:
    @pytest.fixture(scope="class")
    def reference_csv(self):
        return run_simulation(_config()).results.to_csv()

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_rows_equal_serial(self, shards, reference_csv):
        outcome = run_simulation(_config(shards=shards))
        assert outcome.results.to_csv() == reference_csv

    def test_sharded_rows_equal_serial_with_process_pool(self, reference_csv):
        outcome = run_simulation(_config(shards=3), workers=2)
        assert outcome.results.to_csv() == reference_csv

    def test_fastforward_composes_with_sharding(self, reference_csv):
        outcome = run_simulation(
            _config(shards=2, fidelity="fastforward"), workers=2
        )
        assert outcome.results.to_csv() == reference_csv

    def test_outcome_exposes_live_shard0_tree(self):
        outcome = run_simulation(_config(shards=2))
        assert outcome.tree is not None
        # Shard 0 registered its cone only; its first edge node polled.
        assert outcome.tree.nodes_at(0)[0].proxy.counters.get("polls") > 0


class TestValidation:
    def test_shards_require_tree_topology(self):
        with pytest.raises(SimulationConfigError):
            SimulationBuilder().topology("single").shards(2).build()

    def test_shards_below_one_rejected(self):
        with pytest.raises(SimulationConfigError):
            SimulationBuilder().shards(0).build()

    def test_instrument_requires_tree_topology(self):
        config = (
            SimulationBuilder()
            .workload("poisson", "a", rate_per_hour=2.0, hours=1.0)
            .policy("static_ttl", ttl=300.0)
            .topology("single")
            .horizon(3600.0)
            .build()
        )
        with pytest.raises(SimulationConfigError):
            run_simulation(config, instrument=lambda tree: None)

    def test_more_shards_than_tree_width_rejected(self):
        with pytest.raises(SimulationConfigError):
            run_simulation(_config(shards=7))
