"""Unit tests for individual-consistency fidelity metrics (Eqs. 13-14)."""

from __future__ import annotations

import pytest

from repro.core.types import ObjectId
from repro.metrics.fidelity import FidelityReport, temporal_fidelity, value_fidelity
from repro.traces.model import trace_from_ticks, trace_from_times


def temporal_trace(times, end=1000.0):
    return trace_from_times(ObjectId("x"), times, start_time=0.0, end_time=end)


class TestFidelityReport:
    def test_fidelity_formulas(self):
        report = FidelityReport(
            polls=10, violations=2, out_sync_time=50.0, duration=1000.0
        )
        assert report.fidelity_by_violations == pytest.approx(0.8)
        assert report.fidelity_by_time == pytest.approx(0.95)

    def test_zero_polls_defines_fidelity_one(self):
        report = FidelityReport(polls=0, violations=0, out_sync_time=0.0, duration=10.0)
        assert report.fidelity_by_violations == 1.0

    def test_zero_duration_defines_fidelity_one(self):
        report = FidelityReport(polls=1, violations=0, out_sync_time=0.0, duration=0.0)
        assert report.fidelity_by_time == 1.0


class TestTemporalViolations:
    def test_no_updates_no_violations(self):
        trace = temporal_trace([])
        report = temporal_fidelity(trace, [0.0, 100.0, 200.0], delta=10.0)
        assert report.violations == 0
        assert report.out_sync_time == 0.0
        assert report.fidelity_by_violations == 1.0

    def test_update_caught_within_delta_is_clean(self):
        trace = temporal_trace([95.0])
        report = temporal_fidelity(trace, [0.0, 100.0], delta=10.0)
        assert report.violations == 0

    def test_figure_1a_pattern_counts_one_violation(self):
        # Update at 50, next poll at 100: 50 s stale > delta 10.
        trace = temporal_trace([50.0])
        report = temporal_fidelity(trace, [0.0, 100.0], delta=10.0)
        assert report.violations == 1

    def test_figure_1b_pattern_counts_violation(self):
        # First unseen update at 50 even though the latest (95) is fresh.
        trace = temporal_trace([50.0, 95.0])
        report = temporal_fidelity(trace, [0.0, 100.0], delta=10.0)
        assert report.violations == 1

    def test_boundary_exactly_delta_is_clean(self):
        trace = temporal_trace([90.0])
        report = temporal_fidelity(trace, [0.0, 100.0], delta=10.0)
        assert report.violations == 0

    def test_each_bad_interval_counts_once(self):
        trace = temporal_trace([50.0, 150.0, 250.0])
        report = temporal_fidelity(trace, [0.0, 100.0, 200.0, 300.0], delta=10.0)
        assert report.violations == 3
        assert report.polls == 4

    def test_baseline_delta_polling_has_perfect_fidelity(self):
        """Polling every Δ can never violate the Δ bound (the paper's
        baseline 'by definition ... provides perfect fidelity')."""
        trace = temporal_trace([33.0, 71.0, 155.0, 290.0, 555.0], end=1000.0)
        delta = 25.0
        polls = [float(t) for t in range(0, 1001, 25)]
        report = temporal_fidelity(trace, polls, delta=delta)
        assert report.violations == 0
        assert report.out_sync_time == 0.0

    def test_unsorted_polls_are_sorted(self):
        trace = temporal_trace([50.0])
        report = temporal_fidelity(trace, [100.0, 0.0], delta=10.0)
        assert report.violations == 1

    def test_invalid_delta_rejected(self):
        trace = temporal_trace([50.0])
        with pytest.raises(ValueError):
            temporal_fidelity(trace, [0.0], delta=0.0)


class TestTemporalOutSyncTime:
    def test_out_sync_interval_measured(self):
        # Update at 50; poll at 100.  Stale from 60 (=50+delta) to 100.
        trace = temporal_trace([50.0], end=100.0)
        report = temporal_fidelity(trace, [0.0, 100.0], delta=10.0)
        assert report.out_sync_time == pytest.approx(40.0)
        assert report.fidelity_by_time == pytest.approx(1 - 40.0 / 100.0)

    def test_staleness_after_last_poll_counts(self):
        trace = temporal_trace([50.0], end=200.0)
        report = temporal_fidelity(trace, [0.0], delta=10.0)
        # Stale from 60 to 200.
        assert report.out_sync_time == pytest.approx(140.0)

    def test_no_staleness_when_refreshed_promptly(self):
        trace = temporal_trace([50.0], end=100.0)
        report = temporal_fidelity(trace, [0.0, 55.0], delta=10.0)
        assert report.out_sync_time == 0.0

    def test_multiple_stale_windows_accumulate(self):
        trace = temporal_trace([10.0, 110.0], end=200.0)
        report = temporal_fidelity(trace, [0.0, 100.0, 200.0], delta=10.0)
        # Window 1: stale 20→100 = 80.  Window 2: stale 120→200 = 80.
        assert report.out_sync_time == pytest.approx(160.0)

    def test_never_polled_counts_from_first_update(self):
        trace = temporal_trace([100.0], end=300.0)
        report = temporal_fidelity(trace, [], delta=50.0)
        assert report.out_sync_time == pytest.approx(150.0)

    def test_window_clipping(self):
        trace = temporal_trace([50.0], end=1000.0)
        report = temporal_fidelity(
            trace, [0.0], delta=10.0, start=0.0, end=100.0
        )
        assert report.out_sync_time == pytest.approx(40.0)
        assert report.duration == 100.0


class TestValueFidelity:
    def _trace(self):
        # Value steps by 1.0 every 10 s: 1,2,3,... at t=10,20,30,...
        return trace_from_ticks(
            ObjectId("s"),
            [(10.0 * (i + 1), float(i + 1)) for i in range(20)],
            start_time=0.0,
            end_time=210.0,
        )

    def test_frequent_refresh_is_clean(self):
        trace = self._trace()
        fetches = [(10.0 * i, float(i)) for i in range(1, 21)]
        report = value_fidelity(trace, fetches, delta=1.5)
        assert report.violations == 0
        assert report.out_sync_time == 0.0

    def test_slow_refresh_violates(self):
        trace = self._trace()
        # Fetch at 10 (value 1) and 100 (value 10): drift up to 9 >= 2.
        report = value_fidelity(trace, [(10.0, 1.0), (100.0, 10.0)], delta=2.0)
        assert report.violations == 1

    def test_out_sync_time_integrates_drift(self):
        trace = self._trace()
        # Cached value 1 from t=10.  |S-P| >= 2 once value hits 3 at t=30,
        # until the next fetch at t=100 → 70 s.
        report = value_fidelity(trace, [(10.0, 1.0), (100.0, 10.0)], delta=2.0)
        # Second window: cached 10, drift >= 2 once value hits 12 at
        # t=120, until the window end at 210 → 90 s.
        assert report.out_sync_time == pytest.approx(70.0 + 90.0)

    def test_final_open_segment_not_counted_as_violation(self):
        trace = self._trace()
        report = value_fidelity(trace, [(10.0, 1.0)], delta=2.0)
        # Staleness accrues but no closing poll exists to charge.
        assert report.violations == 0
        assert report.out_sync_time > 0

    def test_exact_delta_drift_is_violation(self):
        """Eq. 3 requires |S-P| < delta strictly."""
        trace = trace_from_ticks(
            ObjectId("s"), [(10.0, 0.0), (20.0, 2.0)], end_time=100.0
        )
        report = value_fidelity(
            trace, [(15.0, 0.0), (50.0, 2.0)], delta=2.0
        )
        assert report.violations == 1

    def test_requires_valued_trace(self, simple_trace):
        with pytest.raises(ValueError):
            value_fidelity(simple_trace, [(0.0, 1.0)], delta=1.0)

    def test_invalid_delta_rejected(self):
        trace = self._trace()
        with pytest.raises(ValueError):
            value_fidelity(trace, [], delta=-1.0)


class TestTemporalFidelityFromSnapshots:
    """The snapshot-based Δt metric used for hierarchical caches."""

    def _record(self, time, last_modified, version=0):
        from repro.core.events import PollReason
        from repro.core.types import ObjectSnapshot
        from repro.proxy.entry import FetchRecord

        return FetchRecord(
            time=time,
            snapshot=ObjectSnapshot(
                object_id=ObjectId("x"),
                version=version,
                last_modified=last_modified,
            ),
            modified=True,
            reason=PollReason.TTR_EXPIRED,
        )

    def test_fresh_snapshots_have_no_out_sync(self):
        from repro.metrics.fidelity import temporal_fidelity_from_snapshots

        trace = temporal_trace([100.0], end=200.0)
        # Fetch at 150 already carries the version modified at 100.
        log = [self._record(0.0, 0.0), self._record(150.0, 100.0, 1)]
        report = temporal_fidelity_from_snapshots(trace, log, 60.0)
        # Segment [0, 150) holds the t=0 version; update at 100 makes it
        # stale from 160 — but the segment ends at 150: no out-sync.
        assert report.out_sync_time == pytest.approx(0.0)
        assert report.fidelity_by_time == 1.0

    def test_stale_snapshot_accrues_out_sync(self):
        from repro.metrics.fidelity import temporal_fidelity_from_snapshots

        trace = temporal_trace([100.0], end=400.0)
        # One fetch at t=0; the copy stays version 0 forever.
        log = [self._record(0.0, 0.0)]
        report = temporal_fidelity_from_snapshots(trace, log, 60.0)
        # Out of sync from 100+60=160 to 400.
        assert report.out_sync_time == pytest.approx(240.0)
        assert report.violations == 1

    def test_stale_parent_response_counted_unlike_poll_metric(self):
        from repro.metrics.fidelity import (
            temporal_fidelity,
            temporal_fidelity_from_snapshots,
        )

        trace = temporal_trace([100.0], end=400.0)
        # A poll at t=200 that returned a STALE copy (last_modified=0,
        # as a behind parent cache would serve).
        log = [self._record(0.0, 0.0), self._record(200.0, 0.0)]
        snapshot_report = temporal_fidelity_from_snapshots(trace, log, 60.0)
        poll_report = temporal_fidelity(trace, [0.0, 200.0], 60.0)
        # The poll-time metric believes the t=200 poll refreshed the
        # copy; the snapshot metric sees it stayed stale to the end.
        assert snapshot_report.out_sync_time == pytest.approx(240.0)
        assert poll_report.out_sync_time < snapshot_report.out_sync_time

    def test_window_clipping(self):
        from repro.metrics.fidelity import temporal_fidelity_from_snapshots

        trace = temporal_trace([100.0], end=1000.0)
        log = [self._record(0.0, 0.0)]
        report = temporal_fidelity_from_snapshots(
            trace, log, 60.0, start=0.0, end=300.0
        )
        assert report.out_sync_time == pytest.approx(140.0)
        assert report.duration == pytest.approx(300.0)

    def test_empty_log_reports_no_polls(self):
        from repro.metrics.fidelity import temporal_fidelity_from_snapshots

        trace = temporal_trace([100.0], end=400.0)
        report = temporal_fidelity_from_snapshots(trace, [], 60.0)
        assert report.polls == 0
        assert report.out_sync_time == 0.0

    def test_rejects_nonpositive_delta(self):
        from repro.metrics.fidelity import temporal_fidelity_from_snapshots

        trace = temporal_trace([], end=10.0)
        with pytest.raises(ValueError):
            temporal_fidelity_from_snapshots(trace, [], 0.0)
