"""Tests for the sweep execution engine: serial/parallel parity and ordering.

The contract under test (see :mod:`repro.experiments.sweep`):

* ``run_sweep(..., workers=N)`` produces rows **identical** to the
  serial run — same values, same order — because points are independent,
  seeded per point, and collected in submission order;
* executors return results in input order even when later items finish
  first;
* the per-point RNG derived from a root seed is stable no matter which
  executor (or worker) runs the point.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core.errors import ExperimentError
from repro.experiments import figure3, figure5
from repro.api.runs import run_many
from repro.experiments.sweep import (
    ParallelExecutor,
    PointTask,
    SerialExecutor,
    executor_for,
    execute_point,
    run_sweep,
)


def _square_row(value, rng=None):
    """Module-level row builder (picklable for the parallel path)."""
    row = {"square": value * value}
    if rng is not None:
        row["draw"] = rng.stream("noise").random()
    return row


def _slow_then_fast(item):
    """Sleep longer for earlier items so completion order reverses."""
    index, count = item
    time.sleep(0.05 * (count - index))
    return index


def _identity():
    return "first"


def _other():
    return "second"


class TestExecutorResolution:
    def test_default_is_serial(self):
        assert isinstance(executor_for(None), SerialExecutor)
        assert isinstance(executor_for(1), SerialExecutor)

    def test_workers_above_one_is_parallel(self):
        executor = executor_for(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 4

    def test_explicit_executor_wins(self):
        serial = SerialExecutor()
        assert executor_for(8, serial) is serial

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(0)


class TestOrdering:
    def test_parallel_results_ordered_when_completion_is_not(self):
        count = 4
        items = [(index, count) for index in range(count)]
        results = ParallelExecutor(2).map(_slow_then_fast, items)
        assert results == list(range(count))

    def test_run_many_preserves_input_order(self):
        assert run_many([_identity, _other], workers=2) == [
            "first",
            "second",
        ]


class TestDeterminism:
    def test_serial_and_parallel_rows_identical_synthetic(self):
        values = [1.0, 2.0, 3.0, 4.0]
        serial = run_sweep("x", values, _square_row)
        parallel = run_sweep("x", values, _square_row, workers=4)
        assert serial.rows == parallel.rows
        assert parallel.values() == values

    def test_serial_and_parallel_rows_identical_figure3(self):
        serial = figure3.run(deltas_min=(2, 30))
        parallel = figure3.run(deltas_min=(2, 30), workers=2)
        assert serial.rows == parallel.rows

    def test_serial_and_parallel_rows_identical_figure5(self):
        serial = figure5.run(mutual_deltas_min=(5, 20))
        parallel = figure5.run(mutual_deltas_min=(5, 20), workers=2)
        assert serial.rows == parallel.rows

    def test_per_point_rng_is_seed_stable_across_executors(self):
        values = [1.0, 2.0, 3.0]
        serial = run_sweep("x", values, _square_row, seed=7)
        parallel = run_sweep("x", values, _square_row, seed=7, workers=3)
        assert serial.rows == parallel.rows
        # Each point gets an independent stream: draws differ by point.
        draws = serial.column("draw")
        assert len(set(draws)) == len(draws)

    def test_different_root_seeds_change_point_draws(self):
        values = [1.0]
        a = run_sweep("x", values, _square_row, seed=1)
        b = run_sweep("x", values, _square_row, seed=2)
        assert a.rows[0]["draw"] != b.rows[0]["draw"]


class TestRunSpec:
    def test_point_task_is_picklable(self):
        task = PointTask(
            build_row=_square_row,
            parameter="x",
            index=0,
            value=3.0,
            extra_columns={"fixed": "yes"},
        )
        clone = pickle.loads(pickle.dumps(task))
        assert execute_point(clone) == {
            "x": 3.0,
            "fixed": "yes",
            "square": 9.0,
        }

    def test_reserved_columns_rejected_in_parallel_too(self):
        with pytest.raises(ExperimentError, match="reserved"):
            run_sweep("square", [2.0], _square_row, workers=2)

    def test_extra_columns_merged_in_parallel(self):
        result = run_sweep(
            "x",
            [1.0, 2.0],
            _square_row,
            extra_columns={"trace": "cnn"},
            workers=2,
        )
        assert [row["trace"] for row in result.rows] == ["cnn", "cnn"]
