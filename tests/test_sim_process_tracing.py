"""Unit tests for the process abstraction and the event log."""

from __future__ import annotations

import pytest

from repro.core.events import (
    GenericEvent,
    PollEvent,
    PollReason,
    UpdateAppliedEvent,
)
from repro.core.types import ObjectId
from repro.sim.process import spawn
from repro.sim.tracing import EventLog


class TestProcess:
    def test_process_steps_at_yielded_delays(self, kernel):
        seen = []

        def body():
            seen.append(kernel.now())
            yield 2.0
            seen.append(kernel.now())
            yield 3.0
            seen.append(kernel.now())

        spawn(kernel, body())
        kernel.run()
        assert seen == [0.0, 2.0, 5.0]

    def test_process_finishes_when_generator_ends(self, kernel):
        def body():
            yield 1.0

        process = spawn(kernel, body())
        kernel.run()
        assert process.finished

    def test_stop_terminates_before_next_step(self, kernel):
        seen = []

        def body():
            seen.append("a")
            yield 5.0
            seen.append("b")

        process = spawn(kernel, body())
        kernel.schedule_at(1.0, lambda k: process.stop())
        kernel.run()
        assert seen == ["a"]
        assert process.finished

    def test_negative_delay_raises(self, kernel):
        def body():
            yield -1.0

        spawn(kernel, body())
        with pytest.raises(ValueError):
            kernel.run()

    def test_zero_delay_steps_at_same_time(self, kernel):
        seen = []

        def body():
            seen.append(kernel.now())
            yield 0.0
            seen.append(kernel.now())

        spawn(kernel, body())
        kernel.run()
        assert seen == [0.0, 0.0]

    def test_two_processes_interleave(self, kernel):
        seen = []

        def make(tag, delay):
            def body():
                for _ in range(2):
                    yield delay
                    seen.append((tag, kernel.now()))

            return body()

        spawn(kernel, make("slow", 3.0))
        spawn(kernel, make("fast", 1.0))
        kernel.run()
        assert seen == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 3.0),
            ("slow", 6.0),
        ]


class TestEventLog:
    def _poll(self, t, oid="x"):
        return PollEvent(
            time=t,
            object_id=ObjectId(oid),
            reason=PollReason.TTR_EXPIRED,
            modified=False,
        )

    def test_record_and_iterate(self):
        log = EventLog()
        log.record(self._poll(1.0))
        log.record(self._poll(2.0))
        assert len(log) == 2
        assert [e.time for e in log] == [1.0, 2.0]

    def test_out_of_order_record_rejected(self):
        log = EventLog()
        log.record(self._poll(5.0))
        with pytest.raises(ValueError):
            log.record(self._poll(4.0))

    def test_equal_time_records_allowed(self):
        log = EventLog()
        log.record(self._poll(5.0))
        log.record(self._poll(5.0))
        assert len(log) == 2

    def test_disabled_log_drops_events(self):
        log = EventLog(enabled=False)
        log.record(self._poll(1.0))
        assert len(log) == 0

    def test_of_type_filters(self):
        log = EventLog()
        log.record(self._poll(1.0))
        log.record(UpdateAppliedEvent(time=2.0, object_id=ObjectId("x"), version=1))
        polls = log.of_type(PollEvent)
        assert len(polls) == 1
        assert isinstance(polls[0], PollEvent)

    def test_for_object_filters(self):
        log = EventLog()
        log.record(self._poll(1.0, "a"))
        log.record(self._poll(2.0, "b"))
        assert [e.time for e in log.for_object(ObjectId("b"))] == [2.0]

    def test_between_is_half_open(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0):
            log.record(self._poll(t))
        assert [e.time for e in log.between(1.0, 3.0)] == [1.0, 2.0]

    def test_last_overall_and_by_type(self):
        log = EventLog()
        assert log.last() is None
        log.record(self._poll(1.0))
        log.record(GenericEvent(time=2.0, name="note"))
        assert log.last().time == 2.0
        assert log.last(PollEvent).time == 1.0

    def test_where_predicate(self):
        log = EventLog()
        log.record(self._poll(1.0))
        log.record(self._poll(2.0))
        found = log.where(lambda e: e.time > 1.5)
        assert [e.time for e in found] == [2.0]

    def test_clear(self):
        log = EventLog()
        log.record(self._poll(1.0))
        log.clear()
        assert len(log) == 0
