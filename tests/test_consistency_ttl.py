"""Unit tests for the prior-art TTL policies (static TTL, Alex)."""

from __future__ import annotations

import pytest

from repro.consistency.ttl import (
    AlexParameters,
    AlexTTLPolicy,
    StaticTTLPolicy,
    alex_policy_factory,
    static_ttl_policy_factory,
)
from repro.core.errors import PolicyConfigurationError
from repro.core.types import ObjectId, ObjectSnapshot, PollOutcome, TTRBounds


def outcome(poll_time, last_modified, *, modified=True):
    return PollOutcome(
        poll_time=poll_time,
        modified=modified,
        snapshot=ObjectSnapshot(
            ObjectId("x"), version=1, last_modified=last_modified
        ),
    )


class TestStaticTTL:
    def test_constant_ttr(self):
        policy = StaticTTLPolicy(30.0)
        assert policy.first_ttr() == 30.0
        assert policy.next_ttr(outcome(100.0, 95.0)) == 30.0
        assert policy.current_ttr == 30.0

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            StaticTTLPolicy(0.0)

    def test_factory(self):
        factory = static_ttl_policy_factory(10.0)
        assert factory(ObjectId("a")).ttl == 10.0


class TestAlex:
    BOUNDS = TTRBounds(ttr_min=5.0, ttr_max=500.0)

    def _policy(self, mu=0.2):
        return AlexTTLPolicy(
            bounds=self.BOUNDS, parameters=AlexParameters(update_threshold=mu)
        )

    def test_ttr_is_fraction_of_age(self):
        policy = self._policy(mu=0.2)
        # Object last modified 100 s ago → TTL = 20 s.
        assert policy.next_ttr(outcome(200.0, 100.0)) == pytest.approx(20.0)

    def test_fresh_object_gets_min_ttr(self):
        policy = self._policy(mu=0.2)
        # Modified 1 s ago → raw 0.2 s, clamped to 5.
        assert policy.next_ttr(outcome(100.0, 99.0)) == 5.0

    def test_ancient_object_gets_max_ttr(self):
        policy = self._policy(mu=0.2)
        assert policy.next_ttr(outcome(1e6, 0.0)) == 500.0

    def test_age_grows_between_quiet_polls(self):
        policy = self._policy(mu=0.5)
        first = policy.next_ttr(outcome(100.0, 60.0, modified=False))
        second = policy.next_ttr(outcome(150.0, 60.0, modified=False))
        assert second > first  # same last_modified, more age

    def test_update_shrinks_ttr(self):
        policy = self._policy(mu=0.2)
        policy.next_ttr(outcome(1000.0, 0.0, modified=False))
        long_ttr = policy.current_ttr
        fresh = policy.next_ttr(outcome(1100.0, 1090.0))
        assert fresh < long_ttr

    def test_invalid_threshold_rejected(self):
        with pytest.raises(PolicyConfigurationError):
            AlexParameters(update_threshold=0.0)
        with pytest.raises(PolicyConfigurationError):
            AlexParameters(update_threshold=1.5)

    def test_factory_independent_instances(self):
        factory = alex_policy_factory(ttr_min=5.0, ttr_max=500.0)
        p1 = factory(ObjectId("a"))
        p2 = factory(ObjectId("b"))
        p1.next_ttr(outcome(1000.0, 0.0))
        assert p1.current_ttr != p2.current_ttr


class TestRegistryIntegration:
    def test_build_from_registry(self):
        from repro.consistency.registry import build_policy_factory

        static = build_policy_factory("static_ttl", ttl=15.0)(ObjectId("x"))
        assert isinstance(static, StaticTTLPolicy)
        alex = build_policy_factory(
            "alex", ttr_min=1.0, ttr_max=100.0, update_threshold=0.1
        )(ObjectId("x"))
        assert isinstance(alex, AlexTTLPolicy)
        assert alex.parameters.update_threshold == 0.1


class TestAlexVsLimdEndToEnd:
    def test_limd_fidelity_per_poll_beats_alex_on_bursty_trace(self):
        """The paper's motivation for LIMD over age-based TTLs: on a
        diurnal/bursty trace, LIMD achieves at least Alex's fidelity
        per poll (violation feedback beats the pure age signal)."""
        from repro.consistency.limd import limd_policy_factory
        from repro.core.types import MINUTE
        from repro.api.runs import run_individual
        from repro.experiments.workloads import news_trace
        from repro.metrics.collector import collect_temporal

        trace = news_trace("cnn_fn")
        delta = 10 * MINUTE
        limd_run = run_individual(
            [trace], limd_policy_factory(delta, ttr_max=60 * MINUTE)
        )
        alex_run = run_individual(
            [trace],
            alex_policy_factory(ttr_min=delta, ttr_max=60 * MINUTE),
        )
        limd = collect_temporal(limd_run.proxy, trace, delta).report
        alex = collect_temporal(alex_run.proxy, trace, delta).report
        limd_efficiency = limd.fidelity_by_time / max(limd.polls, 1)
        alex_efficiency = alex.fidelity_by_time / max(alex.polls, 1)
        assert limd_efficiency >= alex_efficiency * 0.9
        # Both still provide meaningful guarantees.
        assert alex.fidelity_by_time > 0.5
        assert limd.fidelity_by_time > 0.8
