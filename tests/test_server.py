"""Unit tests for the origin server substrate."""

from __future__ import annotations

import pytest

from repro.core.errors import UnknownObjectError
from repro.core.events import UpdateAppliedEvent
from repro.core.types import ObjectId
from repro.httpsim.messages import Status, conditional_get
from repro.server.objects import ServerObject
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder, feed_traces
from repro.sim.kernel import Kernel
from repro.sim.tracing import EventLog
from repro.traces.model import trace_from_ticks, trace_from_times


class TestServerObject:
    def test_creation_is_version_zero(self):
        obj = ServerObject(ObjectId("x"), created_at=5.0)
        assert obj.current_version == 0
        assert obj.last_modified == 5.0
        assert obj.update_count == 0

    def test_updates_increment_version(self):
        obj = ServerObject(ObjectId("x"))
        obj.apply_update(1.0)
        obj.apply_update(2.0)
        assert obj.current_version == 2
        assert obj.last_modified == 2.0

    def test_update_not_after_last_rejected(self):
        obj = ServerObject(ObjectId("x"), created_at=5.0)
        with pytest.raises(ValueError):
            obj.apply_update(5.0)
        with pytest.raises(ValueError):
            obj.apply_update(4.0)

    def test_value_updates(self):
        obj = ServerObject(ObjectId("x"), initial_value=10.0)
        obj.apply_update(1.0, value=11.0)
        assert obj.current_value == 11.0
        assert obj.value_at(0.5) == 10.0

    def test_snapshot_reflects_current_state(self):
        obj = ServerObject(ObjectId("x"))
        obj.apply_update(3.0, value=7.0)
        snap = obj.snapshot(now=4.0)
        assert snap.version == 1
        assert snap.last_modified == 3.0
        assert snap.value == 7.0

    def test_snapshot_before_last_modification_rejected(self):
        obj = ServerObject(ObjectId("x"))
        obj.apply_update(3.0)
        with pytest.raises(ValueError):
            obj.snapshot(now=2.0)

    def test_state_at_historical_instants(self):
        obj = ServerObject(ObjectId("x"), created_at=0.0)
        obj.apply_update(10.0)
        obj.apply_update(20.0)
        assert obj.state_at(5.0).version == 0
        assert obj.state_at(10.0).version == 1
        assert obj.state_at(15.0).version == 1
        assert obj.state_at(25.0).version == 2

    def test_state_at_before_creation_is_none(self):
        obj = ServerObject(ObjectId("x"), created_at=5.0)
        assert obj.state_at(4.0) is None

    def test_modifications_between(self):
        obj = ServerObject(ObjectId("x"), created_at=0.0)
        for t in (10.0, 20.0, 30.0):
            obj.apply_update(t)
        mods = obj.modifications_between(10.0, 30.0)
        assert [m.time for m in mods] == [20.0, 30.0]

    def test_modification_times_includes_creation(self):
        obj = ServerObject(ObjectId("x"), created_at=1.0)
        obj.apply_update(2.0)
        assert obj.modification_times() == (1.0, 2.0)


class TestOriginServer:
    def test_create_and_get(self):
        server = OriginServer()
        server.create_object(ObjectId("x"))
        assert server.has_object(ObjectId("x"))
        assert server.get_object(ObjectId("x")).current_version == 0

    def test_duplicate_creation_rejected(self):
        server = OriginServer()
        server.create_object(ObjectId("x"))
        with pytest.raises(ValueError):
            server.create_object(ObjectId("x"))

    def test_unknown_object_raises(self):
        server = OriginServer()
        with pytest.raises(UnknownObjectError):
            server.get_object(ObjectId("nope"))

    def test_request_for_unknown_object_is_404(self):
        server = OriginServer()
        response = server.handle_request(
            conditional_get(ObjectId("nope")), now=1.0
        )
        assert response.status is Status.NOT_FOUND

    def test_conditional_get_flow(self):
        server = OriginServer()
        server.create_object(ObjectId("x"), created_at=0.0)
        first = server.handle_request(conditional_get(ObjectId("x")), now=1.0)
        assert first.status is Status.OK
        assert first.version == 0

        unchanged = server.handle_request(
            conditional_get(ObjectId("x"), if_modified_since=first.last_modified),
            now=2.0,
        )
        assert unchanged.status is Status.NOT_MODIFIED

        server.apply_update(ObjectId("x"), 3.0)
        changed = server.handle_request(
            conditional_get(ObjectId("x"), if_modified_since=first.last_modified),
            now=4.0,
        )
        assert changed.status is Status.OK
        assert changed.version == 1

    def test_history_supported(self):
        server = OriginServer(supports_history=True)
        server.create_object(ObjectId("x"), created_at=0.0)
        for t in (1.0, 2.0, 3.0):
            server.apply_update(ObjectId("x"), t)
        response = server.handle_request(
            conditional_get(
                ObjectId("x"), if_modified_since=1.0, want_history=True
            ),
            now=4.0,
        )
        assert response.modification_history == [2.0, 3.0]

    def test_history_unsupported_server_omits_header(self):
        server = OriginServer(supports_history=False)
        server.create_object(ObjectId("x"), created_at=0.0)
        server.apply_update(ObjectId("x"), 2.0)
        response = server.handle_request(
            conditional_get(
                ObjectId("x"), if_modified_since=1.0, want_history=True
            ),
            now=3.0,
        )
        assert response.status is Status.OK
        assert response.modification_history is None

    def test_counters(self):
        server = OriginServer()
        server.create_object(ObjectId("x"))
        server.handle_request(conditional_get(ObjectId("x")), now=1.0)
        server.handle_request(conditional_get(ObjectId("nope")), now=2.0)
        assert server.counters.get("requests") == 2
        assert server.counters.get("responses_200") == 1
        assert server.counters.get("responses_404") == 1

    def test_update_events_logged(self):
        log = EventLog()
        server = OriginServer(event_log=log)
        server.create_object(ObjectId("x"))
        server.apply_update(ObjectId("x"), 5.0, value=1.0)
        events = log.of_type(UpdateAppliedEvent)
        assert len(events) == 1
        assert events[0].version == 1


class TestUpdateFeeder:
    def test_feeds_all_updates_at_right_times(self):
        kernel = Kernel()
        server = OriginServer()
        trace = trace_from_times(ObjectId("x"), [10.0, 20.0, 30.0])
        feeder = UpdateFeeder(kernel, server, trace)
        assert feeder.scheduled_count == 3

        kernel.run(until=15.0)
        assert server.get_object(ObjectId("x")).current_version == 1
        kernel.run(until=35.0)
        assert server.get_object(ObjectId("x")).current_version == 3
        assert feeder.applied_count == 3

    def test_valued_trace_sets_initial_value(self):
        kernel = Kernel()
        server = OriginServer()
        trace = trace_from_ticks(ObjectId("s"), [(5.0, 1.5), (10.0, 2.5)])
        UpdateFeeder(kernel, server, trace)
        # Before the first tick fires, the object's value is the first
        # record's value so an initial proxy fetch sees a real price.
        assert server.get_object(ObjectId("s")).current_value == 1.5
        kernel.run()
        assert server.get_object(ObjectId("s")).current_value == 2.5

    def test_feed_traces_creates_all_objects(self):
        kernel = Kernel()
        server = OriginServer()
        traces = [
            trace_from_times(ObjectId("a"), [1.0]),
            trace_from_times(ObjectId("b"), [2.0]),
        ]
        feeders = feed_traces(kernel, server, traces)
        assert set(feeders) == {ObjectId("a"), ObjectId("b")}
        assert server.has_object(ObjectId("a"))
        assert server.has_object(ObjectId("b"))

    def test_existing_object_not_recreated(self):
        kernel = Kernel()
        server = OriginServer()
        server.create_object(ObjectId("x"), created_at=0.0)
        trace = trace_from_times(ObjectId("x"), [10.0])
        UpdateFeeder(kernel, server, trace)
        kernel.run()
        assert server.get_object(ObjectId("x")).current_version == 1
