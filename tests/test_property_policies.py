"""Property-based tests for consistency-policy invariants.

Complements ``test_property_based.py`` (kernel/trace/fidelity
properties) with invariants of the value-domain policies and the
partitioned-δ apportioning — including the paper's footnote 3, the
algebraic lemma the partitioned approach rests on.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.consistency.adaptive_value import AdaptiveValueTTRPolicy
from repro.consistency.mutual_value import (
    GroupBudget,
    PartitionedGroupMvCoordinator,
    PartitionedMvCoordinator,
    PartitionParameters,
    total_minus_parts,
)
from repro.core.types import ObjectId, ObjectSnapshot, PollOutcome, TTRBounds
from repro.httpsim.network import Network
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.sim.kernel import Kernel

A, B, C = ObjectId("a"), ObjectId("b"), ObjectId("c")

rates_strategy = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def _outcome(object_id, time, value, version=1):
    return PollOutcome(
        poll_time=time,
        modified=True,
        snapshot=ObjectSnapshot(
            object_id=object_id,
            version=version,
            last_modified=time,
            value=value,
        ),
    )


class TestAdaptiveValuePolicyProperties:
    @given(
        ticks=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=100.0),  # gap
                st.floats(min_value=-50.0, max_value=50.0),  # value step
            ),
            min_size=1,
            max_size=40,
        ),
        delta=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_ttr_always_within_bounds(self, ticks, delta):
        bounds = TTRBounds(ttr_min=1.0, ttr_max=600.0)
        policy = AdaptiveValueTTRPolicy(delta, bounds=bounds)
        time, value = 0.0, 100.0
        for version, (gap, step) in enumerate(ticks, start=1):
            time += gap
            value += step
            ttr = policy.next_ttr(_outcome(A, time, value, version))
            assert bounds.ttr_min <= ttr <= bounds.ttr_max

    @given(
        delta=st.floats(min_value=0.01, max_value=10.0),
        new_delta=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_retarget_changes_delta_only(self, delta, new_delta):
        bounds = TTRBounds(ttr_min=1.0, ttr_max=600.0)
        policy = AdaptiveValueTTRPolicy(delta, bounds=bounds)
        ttr_before = policy.current_ttr
        policy.retarget_delta(new_delta)
        assert policy.delta == new_delta
        assert policy.current_ttr == ttr_before

    @given(st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_retarget_rejects_nonpositive(self, bad):
        policy = AdaptiveValueTTRPolicy(
            1.0, bounds=TTRBounds(ttr_min=1.0, ttr_max=10.0)
        )
        try:
            policy.retarget_delta(bad)
        except ValueError:
            return
        raise AssertionError(f"retarget_delta accepted {bad}")


def _pair_coordinator(delta):
    kernel = Kernel()
    server = OriginServer()
    for oid in (A, B):
        server.create_object(oid, created_at=0.0, initial_value=10.0)
    proxy = ProxyCache(kernel, Network(kernel))
    coordinator = PartitionedMvCoordinator(
        proxy,
        (A, B),
        delta,
        bounds=TTRBounds(ttr_min=1.0, ttr_max=100.0),
        parameters=PartitionParameters(reapportion_interval=None),
    )
    coordinator.setup(server, server)
    return coordinator


def _feed_rate(coordinator, object_id, rate):
    """Drive an estimator to a known rate via the public observer hook."""
    coordinator.on_poll_complete(object_id, _outcome(object_id, 100.0, 0.0))
    coordinator.on_poll_complete(
        object_id, _outcome(object_id, 101.0, rate, version=2)
    )


class TestPartitionedPairInvariants:
    @given(rate_a=rates_strategy, rate_b=rates_strategy)
    @settings(max_examples=60, deadline=None)
    def test_split_always_sums_to_delta(self, rate_a, rate_b):
        delta = 5.0
        coordinator = _pair_coordinator(delta)
        _feed_rate(coordinator, A, rate_a)
        _feed_rate(coordinator, B, rate_b)
        delta_a, delta_b = coordinator.reapportion(now=200.0)
        assert delta_a + delta_b == pytest.approx(delta)
        assert delta_a > 0 and delta_b > 0

    @given(rate_a=rates_strategy, rate_b=rates_strategy)
    @settings(max_examples=60, deadline=None)
    def test_faster_object_gets_smaller_tolerance(self, rate_a, rate_b):
        assume(abs(rate_a - rate_b) / max(rate_a, rate_b) > 0.05)
        coordinator = _pair_coordinator(5.0)
        _feed_rate(coordinator, A, rate_a)
        _feed_rate(coordinator, B, rate_b)
        delta_a, delta_b = coordinator.reapportion(now=200.0)
        if rate_a > rate_b:
            assert delta_a <= delta_b
        else:
            assert delta_b <= delta_a


def _group_coordinator(delta, budget):
    kernel = Kernel()
    server = OriginServer()
    for oid in (A, B, C):
        server.create_object(oid, created_at=0.0, initial_value=10.0)
    proxy = ProxyCache(kernel, Network(kernel))
    coordinator = PartitionedGroupMvCoordinator(
        proxy,
        (A, B, C),
        delta,
        bounds=TTRBounds(ttr_min=1.0, ttr_max=100.0),
        parameters=PartitionParameters(reapportion_interval=None),
        budget=budget,
    )
    coordinator.setup({oid: server for oid in (A, B, C)})
    return coordinator


class TestPartitionedGroupInvariants:
    @given(
        rates=st.tuples(rates_strategy, rates_strategy, rates_strategy)
    )
    @settings(max_examples=60, deadline=None)
    def test_pairwise_budget_never_exceeded(self, rates):
        delta = 6.0
        coordinator = _group_coordinator(delta, GroupBudget.PAIRWISE)
        for oid, rate in zip((A, B, C), rates):
            _feed_rate(coordinator, oid, rate)
        coordinator.reapportion()
        # The floor can push the two largest slightly above δ; bound the
        # slack by the floor itself.
        floor = 0.05 * delta / 3.0
        assert coordinator.max_pair_tolerance_sum() <= delta + 2 * floor

    @given(
        rates=st.tuples(rates_strategy, rates_strategy, rates_strategy)
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_budget_never_exceeded(self, rates):
        delta = 6.0
        coordinator = _group_coordinator(delta, GroupBudget.SUM)
        for oid, rate in zip((A, B, C), rates):
            _feed_rate(coordinator, oid, rate)
        coordinator.reapportion()
        floor = 0.05 * delta / 3.0
        assert coordinator.tolerance_sum() <= delta + 3 * floor

    @given(
        rates=st.tuples(rates_strategy, rates_strategy, rates_strategy)
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_budget_implies_pairwise_budget(self, rates):
        delta = 6.0
        coordinator = _group_coordinator(delta, GroupBudget.SUM)
        for oid, rate in zip((A, B, C), rates):
            _feed_rate(coordinator, oid, rate)
        coordinator.reapportion()
        floor = 0.05 * delta / 3.0
        assert coordinator.max_pair_tolerance_sum() <= delta + 2 * floor

    @given(
        rates=st.tuples(rates_strategy, rates_strategy, rates_strategy)
    )
    @settings(max_examples=60, deadline=None)
    def test_every_tolerance_strictly_positive(self, rates):
        coordinator = _group_coordinator(6.0, GroupBudget.SUM)
        for oid, rate in zip((A, B, C), rates):
            _feed_rate(coordinator, oid, rate)
        coordinator.reapportion()
        for tolerance in coordinator.current_tolerances().values():
            assert tolerance > 0


values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestFootnoteThreeLemma:
    """|x + y| <= |x| + |y| — the algebra behind the partitioned approach."""

    @given(
        server_a=values, server_b=values,
        drift_a=st.floats(min_value=-0.99, max_value=0.99),
        drift_b=st.floats(min_value=-0.99, max_value=0.99),
        delta_a=st.floats(min_value=0.01, max_value=100.0),
        delta_b=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_individual_bounds_imply_mutual_bound(
        self, server_a, server_b, drift_a, drift_b, delta_a, delta_b
    ):
        # Construct proxy copies within their individual tolerances.
        proxy_a = server_a + drift_a * delta_a
        proxy_b = server_b + drift_b * delta_b
        assert abs(server_a - proxy_a) < delta_a
        assert abs(server_b - proxy_b) < delta_b
        f_server = server_a - server_b
        f_proxy = proxy_a - proxy_b
        # Eq. 5 with δ = δa + δb, plus float-rounding headroom.
        assert abs(f_server - f_proxy) < (delta_a + delta_b) * (1 + 1e-9) + 1e-9

    @given(
        parts=st.lists(values, min_size=1, max_size=6),
        drifts=st.lists(
            st.floats(min_value=-1.0, max_value=1.0), min_size=7, max_size=7
        ),
        tolerance=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_total_minus_parts_is_one_lipschitz(self, parts, drifts, tolerance):
        total = sum(parts)
        exact = tuple(parts) + (total,)
        drifted = tuple(
            v + drifts[i] * tolerance for i, v in enumerate(exact)
        )
        skew = abs(total_minus_parts(drifted) - total_minus_parts(exact))
        budget = tolerance * len(exact)
        assert skew <= budget * (1 + 1e-9) + 1e-6
