"""Smoke tests: every example script runs to completion and prints its
study.

The examples are the library's user-facing front door; this keeps them
from rotting as APIs evolve.  Each runs in-process (imported as a
module and ``main()`` invoked) so failures carry real tracebacks.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load_module(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"examples_{name.removesuffix('.py')}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_and_prints(script, capsys):
    module = _load_module(script)
    assert hasattr(module, "main"), f"{script} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3, f"{script} printed almost nothing"
