"""Tests for the first-class topology layer (repro.topology)."""

from __future__ import annotations

import pytest

from repro.consistency.base import FixedTTRPolicy, PassivePolicy
from repro.core.types import ObjectId
from repro.httpsim.network import LatencyModel
from repro.metrics.collector import collect_temporal
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.sim.kernel import Kernel
from repro.topology import (
    PushFanout,
    PushSource,
    TopologyError,
    TopologyTree,
    TreeLevel,
    Upstream,
    additive_staleness_bound,
    uniform_levels,
)
from repro.traces.model import trace_from_times
from repro.server.updates import feed_traces

X = ObjectId("x")


def _fixed(ttr=30.0):
    return lambda _level, _oid: FixedTTRPolicy(ttr=ttr)


def _stack():
    kernel = Kernel()
    origin = OriginServer()
    origin.create_object(X, created_at=0.0)
    return kernel, origin


class TestTreeLevel:
    def test_fan_out_validated(self):
        with pytest.raises(TopologyError, match="fan_out"):
            TreeLevel(fan_out=0)

    def test_mode_validated(self):
        with pytest.raises(TopologyError, match="mode"):
            TreeLevel(mode="gossip")

    def test_uniform_levels(self):
        levels = uniform_levels(3, fan_out=2, mode="push")
        assert len(levels) == 3
        assert all(level.fan_out == 2 for level in levels)
        assert all(level.mode == "push" for level in levels)

    def test_uniform_levels_depth_validated(self):
        with pytest.raises(TopologyError, match="depth"):
            uniform_levels(0)

    def test_staleness_bound_is_sum(self):
        assert additive_staleness_bound([600.0, 600.0, 30.0]) == 1230.0

    def test_staleness_bound_validated(self):
        with pytest.raises(TopologyError):
            additive_staleness_bound([])
        with pytest.raises(TopologyError):
            additive_staleness_bound([60.0, -1.0])


class TestConstruction:
    def test_empty_levels_rejected(self):
        kernel, origin = _stack()
        with pytest.raises(TopologyError, match="at least one level"):
            TopologyTree(kernel, origin, [])

    def test_duplicate_node_names_rejected(self):
        # register_object keys its result by node name; a colliding
        # namer would silently drop policies, so construction fails.
        kernel, origin = _stack()
        with pytest.raises(TopologyError, match="duplicate node names"):
            TopologyTree(
                kernel,
                origin,
                [TreeLevel(fan_out=1), TreeLevel(fan_out=2)],
                node_namer=lambda _level, _index: "edge",
            )

    def test_node_counts_multiply_per_level(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel,
            origin,
            [TreeLevel(fan_out=1), TreeLevel(fan_out=3), TreeLevel(fan_out=2)],
        )
        assert [len(tree.nodes_at(i)) for i in range(3)] == [1, 3, 6]
        assert tree.node_count == 10
        assert len(tree.edge_nodes) == 6
        assert tree.depth == 3

    def test_default_names_and_positions(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel, origin, [TreeLevel(fan_out=2), TreeLevel(fan_out=2)]
        )
        assert [node.name for node in tree.nodes] == [
            "L0.N0",
            "L0.N1",
            "L1.N0",
            "L1.N1",
            "L1.N2",
            "L1.N3",
        ]
        for node in tree.nodes_at(1):
            assert node.parent in tree.nodes_at(0)
            assert node in node.parent.children
            assert node.is_edge

    def test_wide_roots_attach_to_origin(self):
        kernel, origin = _stack()
        tree = TopologyTree(kernel, origin, [TreeLevel(fan_out=3)])
        assert all(node.upstream is origin for node in tree.nodes_at(0))
        with pytest.raises(TopologyError, match="level-0 nodes"):
            tree.root

    def test_nodes_at_bounds_checked(self):
        kernel, origin = _stack()
        tree = TopologyTree(kernel, origin, uniform_levels(2))
        with pytest.raises(TopologyError, match="level"):
            tree.nodes_at(2)

    def test_protocol_conformance(self):
        kernel, origin = _stack()
        proxy = tree_proxy = TopologyTree(
            kernel, origin, uniform_levels(1)
        ).root.proxy
        assert isinstance(origin, Upstream)
        assert isinstance(tree_proxy, Upstream)
        assert isinstance(PushFanout(kernel), PushSource)
        assert isinstance(proxy, ProxyCache)


class TestPullTrees:
    def test_registration_requires_policy_factory_for_pull(self):
        kernel, origin = _stack()
        tree = TopologyTree(kernel, origin, uniform_levels(2))
        with pytest.raises(TopologyError, match="policy_factory"):
            tree.register_object(X)

    def test_policies_installed_per_node(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel, origin, [TreeLevel(fan_out=1), TreeLevel(fan_out=2)]
        )
        policies = tree.register_object(X, _fixed())
        assert sorted(policies) == ["L0.N0", "L1.N0", "L1.N1"]
        assert all(
            isinstance(policy, FixedTTRPolicy) for policy in policies.values()
        )

    def test_update_reaches_every_edge(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel,
            origin,
            [TreeLevel(fan_out=1), TreeLevel(fan_out=2), TreeLevel(fan_out=2)],
        )
        tree.register_object(X, _fixed(ttr=10.0))
        kernel.schedule_at(5.0, lambda k: origin.apply_update(X, 5.0))
        kernel.run(until=100.0)
        for node in tree.nodes:
            snapshot = node.proxy.entry_for(X).snapshot
            assert snapshot is not None and snapshot.version == 1, node.name

    def test_latent_links_defer_registration_past_upstream_warm_up(self):
        # Regression: on a latent link a child's initial fetch used to
        # race its parent's own initial fetch and 404.  A child now
        # installs only once its upstream's first poll completed.
        kernel, origin = _stack()
        latency = LatencyModel(one_way=2.0)
        tree = TopologyTree(
            kernel,
            origin,
            [
                TreeLevel(fan_out=1, latency=latency),
                TreeLevel(fan_out=2, latency=latency),
                TreeLevel(fan_out=2, latency=latency),
            ],
        )
        tree.register_object(X, _fixed(ttr=10.0))
        kernel.run(until=100.0)
        for node in tree.nodes:
            snapshot = node.proxy.entry_for(X).snapshot
            assert snapshot is not None, node.name
            assert node.proxy.entry_for(X).poll_count > 0, node.name

    def test_synchronous_child_below_latent_link_waits_for_parent(self):
        # Regression: a zero-latency child link below a latent parent
        # link used to fire its initial fetch at the exact kernel time
        # the parent's response arrived — and ahead of it in FIFO
        # order — crashing on a 404 from the unpopulated parent.
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel,
            origin,
            [
                TreeLevel(fan_out=1, latency=LatencyModel(one_way=1.0)),
                TreeLevel(fan_out=1),
            ],
        )
        tree.register_object(X, _fixed(ttr=10.0))
        kernel.run(until=50.0)
        for node in tree.nodes:
            assert node.proxy.entry_for(X).snapshot is not None, node.name

    def test_origin_sees_only_level0_traffic(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel, origin, [TreeLevel(fan_out=2), TreeLevel(fan_out=4)]
        )
        tree.register_object(X, _fixed(ttr=10.0))
        kernel.run(until=200.0)
        per_level = tree.polls_per_level()
        assert tree.origin_request_count() == per_level[0]
        assert per_level[1] > 0
        assert tree.total_polls() == sum(per_level)

    def test_deterministic_rebuild(self):
        def fetch_log():
            kernel, origin = _stack()
            tree = TopologyTree(
                kernel, origin, [TreeLevel(fan_out=1), TreeLevel(fan_out=3)]
            )
            tree.register_object(X, _fixed(ttr=15.0))
            for when in (7.0, 33.0, 80.0):
                kernel.schedule_at(
                    when, lambda k, w=when: origin.apply_update(X, w)
                )
            kernel.run(until=150.0)
            return [
                (node.name, record.time, record.snapshot.version)
                for node in tree.nodes
                for record in node.proxy.entry_for(X).fetch_log
            ]

        assert fetch_log() == fetch_log()


class TestPushTrees:
    def test_push_root_is_strongly_consistent(self):
        kernel = Kernel()
        origin = OriginServer()
        trace = trace_from_times(X, [10.0, 30.0, 50.0], end_time=100.0)
        feed_traces(kernel, origin, [trace])
        tree = TopologyTree(kernel, origin, [TreeLevel(fan_out=1, mode="push")])
        policies = tree.register_object(X)
        assert isinstance(policies["L0.N0"], PassivePolicy)
        kernel.run(until=100.0)
        proxy = tree.root.proxy
        # Zero latency: every update reaches the cache at its commit
        # instant — zero out-of-sync time at any evaluation delta.
        report = collect_temporal(proxy, trace, delta=0.001).report
        assert report.out_sync_time == 0.0
        # One fetch per update plus the initial fetch.
        assert proxy.entry_for(X).poll_count == 4
        assert tree.push_notifications() == 3

    def test_push_cost_scales_with_updates_not_horizon(self):
        kernel = Kernel()
        origin = OriginServer()
        trace = trace_from_times(X, [10.0], end_time=100000.0)
        feed_traces(kernel, origin, [trace])
        tree = TopologyTree(kernel, origin, [TreeLevel(fan_out=1, mode="push")])
        tree.register_object(X)
        kernel.run(until=100000.0)
        assert tree.root.proxy.entry_for(X).poll_count == 2

    def test_push_level0_requires_listener_capable_origin(self):
        class BareUpstream:
            name = "bare"

            def handle_request(self, request, now):  # pragma: no cover
                raise AssertionError("never polled")

        kernel = Kernel()
        with pytest.raises(TopologyError, match="update listeners"):
            TopologyTree(
                kernel, BareUpstream(), [TreeLevel(fan_out=1, mode="push")]
            )

    def test_push_delivery_latency_delays_edge_copies(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel,
            origin,
            [
                TreeLevel(
                    fan_out=1,
                    mode="push",
                    latency=LatencyModel(one_way=2.0),
                )
            ],
        )
        tree.register_object(X)
        seen = []
        kernel.schedule_at(5.0, lambda k: origin.apply_update(X, 5.0))

        def probe(kernel_):
            snapshot = tree.root.proxy.entry_for(X).snapshot
            if snapshot and snapshot.version == 1 and not seen:
                seen.append(kernel_.now())

        for t in range(1, 40):
            kernel.schedule_at(t / 2.0, probe)
        kernel.run(until=20.0)
        # Notification after one-way latency, then the fetch's own
        # round trip (2 s each way): version 1 lands at t = 5 + 2 + 4.
        assert seen and seen[0] >= 5.0 + 2.0

    def test_interior_push_relays_only_observed_updates(self):
        # Parent polls every 50 s; intermediate origin versions the
        # parent never saw must stay invisible to the push edge.
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel,
            origin,
            [TreeLevel(fan_out=1, mode="pull"), TreeLevel(fan_out=2, mode="push")],
        )
        tree.register_object(X, _fixed(ttr=50.0))
        for when in (10.0, 45.0, 80.0):
            kernel.schedule_at(
                when, lambda k, w=when: origin.apply_update(X, w)
            )
        kernel.run(until=200.0)
        for node in tree.edge_nodes:
            versions = [
                record.snapshot.version
                for record in node.proxy.entry_for(X).fetch_log
                if record.modified
            ]
            # Version 1 (t=10) was overwritten before the parent's t=50
            # poll: after the initial fetch (version 0) the edges are
            # pushed versions 2 and 3 only.
            assert versions == [0, 2, 3]
            assert 1 not in versions
        # Two observed updates relayed to two subscribers each.
        assert tree.push_notifications() == 4

    def test_hybrid_push_root_pull_edges(self):
        kernel, origin = _stack()
        tree = TopologyTree(
            kernel,
            origin,
            [TreeLevel(fan_out=1, mode="push"), TreeLevel(fan_out=3, mode="pull")],
        )
        tree.register_object(X, _fixed(ttr=25.0))
        kernel.schedule_at(40.0, lambda k: origin.apply_update(X, 40.0))
        kernel.run(until=200.0)
        # The root tracked the origin exactly (1 notification), while
        # the edges polled on their own TTR schedule.
        assert tree.push_notifications() == 1
        per_level = tree.polls_per_level()
        assert per_level[0] == 2  # initial fetch + one pushed fetch
        assert per_level[1] > 3 * 3
        for node in tree.edge_nodes:
            assert node.proxy.entry_for(X).snapshot.version == 1


class TestPushFanout:
    def test_subscribe_notify_unsubscribe(self):
        kernel = Kernel()
        fanout = PushFanout(kernel)
        seen = []
        callback = lambda oid, t: seen.append((oid, t))  # noqa: E731
        fanout.subscribe(X, callback)
        assert fanout.subscriber_count(X) == 1
        fanout.notify(X, 5.0)
        assert seen == [(X, 5.0)]
        assert fanout.counters.get("notifications") == 1
        fanout.unsubscribe(X, callback)
        fanout.notify(X, 6.0)
        assert seen == [(X, 5.0)]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="notify_latency"):
            PushFanout(Kernel(), notify_latency=-1.0)

    def test_delayed_delivery_uses_kernel(self):
        kernel = Kernel()
        fanout = PushFanout(kernel, notify_latency=2.5)
        seen = []
        fanout.subscribe(X, lambda oid, t: seen.append(kernel.now()))
        kernel.schedule_at(5.0, lambda k: fanout.notify(X, 5.0))
        kernel.run()
        assert seen == [7.5]

    def test_delayed_delivery_reaches_every_subscriber(self):
        # Regression: the deferred-delivery lambda must bind the
        # subscriber callback by value, not capture the loop variable —
        # late binding delivered every notification to the last one.
        kernel = Kernel()
        fanout = PushFanout(kernel, notify_latency=1.0)
        delivered = []
        fanout.subscribe(X, lambda oid, t: delivered.append("A"))
        fanout.subscribe(X, lambda oid, t: delivered.append("B"))
        kernel.schedule_at(0.0, lambda k: fanout.notify(X, 0.0))
        kernel.run()
        assert sorted(delivered) == ["A", "B"]


class TestOriginUpdateListeners:
    def test_listener_sees_every_applied_update(self):
        kernel, origin = _stack()
        seen = []
        origin.add_update_listener(lambda oid, t: seen.append((oid, t)))
        origin.apply_update(X, 3.0)
        origin.apply_update(X, 9.0)
        assert seen == [(X, 3.0), (X, 9.0)]

    def test_remove_listener(self):
        kernel, origin = _stack()
        seen = []
        listener = lambda oid, t: seen.append(t)  # noqa: E731
        origin.add_update_listener(listener)
        origin.remove_update_listener(listener)
        origin.remove_update_listener(listener)  # idempotent
        origin.apply_update(X, 3.0)
        assert seen == []
