"""Unit tests for trace serialisation and characterisation."""

from __future__ import annotations

import io
import math

import pytest

from repro.core.errors import TraceFormatError
from repro.core.types import ObjectId
from repro.traces.io import (
    from_json_dict,
    read_csv,
    read_json,
    to_json_dict,
    trace_from_csv_string,
    trace_to_csv_string,
    write_csv,
    write_json,
)
from repro.traces.model import TraceMetadata, trace_from_ticks, trace_from_times
from repro.traces.stats import (
    gap_statistics,
    inter_update_gaps,
    summarize_temporal,
    summarize_value,
    update_rate_per_bin,
    updates_per_bin,
    value_change_statistics,
)


class TestCsvRoundTrip:
    def test_temporal_round_trip(self, simple_trace):
        text = trace_to_csv_string(simple_trace)
        back = trace_from_csv_string(
            text, "obj", start_time=0.0, end_time=1100.0
        )
        assert [r.time for r in back.records] == [
            r.time for r in simple_trace.records
        ]
        assert not back.has_values

    def test_valued_round_trip(self, valued_trace):
        text = trace_to_csv_string(valued_trace)
        back = trace_from_csv_string(text, "stock")
        assert [r.value for r in back.records] == [
            r.value for r in valued_trace.records
        ]

    def test_float_precision_preserved(self):
        trace = trace_from_ticks(ObjectId("x"), [(0.1 + 0.2, 1.0 / 3.0)])
        back = trace_from_csv_string(trace_to_csv_string(trace), "x")
        assert back.records[0].time == 0.1 + 0.2
        assert back.records[0].value == 1.0 / 3.0

    def test_file_round_trip(self, tmp_path, simple_trace):
        path = tmp_path / "trace.csv"
        write_csv(simple_trace, path)
        back = read_csv(path, "obj")
        assert back.update_count == simple_trace.update_count

    def test_bad_header_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            read_csv(io.StringIO("a,b,c\n1,2,3\n"), "x")

    def test_bad_field_count_rejected(self):
        with pytest.raises(TraceFormatError, match="3 fields"):
            read_csv(io.StringIO("time,version,value\n1,2\n"), "x")

    def test_non_numeric_field_rejected(self):
        with pytest.raises(TraceFormatError):
            read_csv(io.StringIO("time,version,value\nx,0,\n"), "x")

    def test_blank_lines_skipped(self):
        trace = read_csv(
            io.StringIO("time,version,value\n1.0,0,\n\n2.0,1,\n"), "x"
        )
        assert trace.update_count == 2

    def test_empty_file_gives_empty_trace(self):
        trace = read_csv(io.StringIO(""), "x")
        assert trace.update_count == 0

    def test_default_start_time_is_first_record(self):
        # Regression: the old default min(0.0, first_time) silently
        # stretched late-starting traces back to t=0, inflating duration.
        trace = read_csv(
            io.StringIO("time,version,value\n3600.0,0,\n7200.0,1,\n"), "x"
        )
        assert trace.start_time == 3600.0
        assert trace.duration == 3600.0

    def test_explicit_start_time_overrides_default(self):
        trace = read_csv(
            io.StringIO("time,version,value\n3600.0,0,\n"),
            "x",
            start_time=0.0,
        )
        assert trace.start_time == 0.0


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path, valued_trace):
        path = tmp_path / "trace.json"
        write_json(valued_trace, path)
        back = read_json(path)
        assert back.object_id == valued_trace.object_id
        assert back.start_time == valued_trace.start_time
        assert back.end_time == valued_trace.end_time
        assert [(r.time, r.version, r.value) for r in back.records] == [
            (r.time, r.version, r.value) for r in valued_trace.records
        ]

    def test_metadata_preserved(self):
        trace = trace_from_times(
            ObjectId("x"),
            [1.0],
            metadata=TraceMetadata(
                name="T", description="d", source="s", value_unit="USD"
            ),
        )
        back = from_json_dict(to_json_dict(trace))
        assert back.metadata.name == "T"
        assert back.metadata.description == "d"
        assert back.metadata.source == "s"
        assert back.metadata.value_unit == "USD"

    def test_unsupported_version_rejected(self, simple_trace):
        data = to_json_dict(simple_trace)
        data["format_version"] = 999
        with pytest.raises(TraceFormatError, match="version"):
            from_json_dict(data)

    def test_missing_key_rejected(self, simple_trace):
        data = to_json_dict(simple_trace)
        del data["records"]
        with pytest.raises(TraceFormatError):
            from_json_dict(data)

    def test_non_object_top_level_rejected(self):
        with pytest.raises(TraceFormatError):
            read_json(io.StringIO("[1, 2, 3]"))

    def test_non_dict_record_rejected_with_index(self, simple_trace):
        data = to_json_dict(simple_trace)
        data["records"][3] = [1.0, 3]
        with pytest.raises(TraceFormatError, match="record 3"):
            from_json_dict(data)

    def test_non_numeric_time_rejected_with_index(self, simple_trace):
        data = to_json_dict(simple_trace)
        data["records"][1]["time"] = "100.0"
        with pytest.raises(TraceFormatError, match="record 1: 'time'"):
            from_json_dict(data)

    def test_bool_time_rejected(self, simple_trace):
        # bool is an int subclass; it must not pass as a timestamp.
        data = to_json_dict(simple_trace)
        data["records"][0]["time"] = True
        with pytest.raises(TraceFormatError, match="record 0: 'time'"):
            from_json_dict(data)

    def test_non_integer_version_rejected_with_index(self, simple_trace):
        data = to_json_dict(simple_trace)
        data["records"][2]["version"] = 2.5
        with pytest.raises(TraceFormatError, match="record 2: 'version'"):
            from_json_dict(data)

    def test_non_numeric_value_rejected_with_index(self, valued_trace):
        data = to_json_dict(valued_trace)
        data["records"][4]["value"] = "high"
        with pytest.raises(TraceFormatError, match="record 4: 'value'"):
            from_json_dict(data)

    def test_integral_fields_coerced_to_float(self, simple_trace):
        data = to_json_dict(simple_trace)
        data["records"][0]["time"] = 100  # JSON int, still a valid time
        back = from_json_dict(data)
        assert isinstance(back.records[0].time, float)


class TestStats:
    def test_summarize_temporal(self, simple_trace):
        summary = summarize_temporal(simple_trace)
        assert summary.update_count == 10
        assert summary.duration == 1100.0
        assert summary.mean_update_interval == pytest.approx(110.0)

    def test_summarize_temporal_empty(self):
        from repro.traces.model import UpdateTrace

        trace = UpdateTrace(ObjectId("x"), [], start_time=0.0, end_time=10.0)
        assert math.isinf(summarize_temporal(trace).mean_update_interval)

    def test_summarize_value(self, valued_trace):
        summary = summarize_value(valued_trace)
        assert summary.min_value == 0.0
        assert summary.max_value == 99.0
        assert summary.value_range == 99.0

    def test_summarize_value_rejects_temporal_trace(self, simple_trace):
        with pytest.raises(ValueError, match="value"):
            summarize_value(simple_trace)

    def test_mean_tick_interval_divides_by_gap_count(self):
        # Regression: n ticks span n-1 gaps, not n.  Three ticks over
        # [0, 20] are 10 s apart, not 20/3.
        trace = trace_from_ticks(
            ObjectId("v"), [(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]
        )
        summary = summarize_value(trace)
        assert summary.mean_tick_interval == pytest.approx(10.0)

    def test_mean_tick_interval_single_tick_is_infinite(self):
        trace = trace_from_ticks(ObjectId("v"), [(5.0, 1.0)])
        assert math.isinf(summarize_value(trace).mean_tick_interval)

    def test_inter_update_gaps(self, simple_trace):
        gaps = inter_update_gaps(simple_trace)
        assert len(gaps) == 9
        assert all(g == pytest.approx(100.0) for g in gaps)

    def test_gap_statistics(self, simple_trace):
        stats = gap_statistics(simple_trace)
        assert stats.mean == pytest.approx(100.0)
        assert stats.count == 9

    def test_updates_per_bin(self, simple_trace):
        counts = updates_per_bin(simple_trace, 500.0)
        # Bins: [0,500) has 100..400 → 4; [500,1000) has 500..900 → 5;
        # [1000,1100) has 1000 → 1.
        assert counts == [4, 5, 1]

    def test_updates_per_bin_with_explicit_end(self, simple_trace):
        counts = updates_per_bin(simple_trace, 500.0, end=500.0)
        assert counts == [4]

    def test_update_rate_per_bin(self, simple_trace):
        rates = update_rate_per_bin(simple_trace, 500.0)
        assert rates[0] == pytest.approx(4 / 500.0)

    def test_updates_per_bin_invalid_width(self, simple_trace):
        with pytest.raises(ValueError):
            updates_per_bin(simple_trace, 0.0)

    def test_value_change_statistics(self, valued_trace):
        stats = value_change_statistics(valued_trace)
        assert stats.mean == pytest.approx(1.0)

    def test_value_change_statistics_rejects_temporal(self, simple_trace):
        with pytest.raises(ValueError):
            value_change_statistics(simple_trace)
