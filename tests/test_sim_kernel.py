"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.core.errors import SchedulingInPastError, SimulationError
from repro.sim.kernel import Kernel


class TestScheduling:
    def test_event_fires_at_scheduled_time(self, kernel):
        fired = []
        kernel.schedule_at(5.0, lambda k: fired.append(k.now()))
        kernel.run()
        assert fired == [5.0]

    def test_schedule_after_is_relative(self, kernel):
        fired = []
        kernel.schedule_at(3.0, lambda k: k.schedule_after(2.0, lambda k2: fired.append(k2.now())))
        kernel.run()
        assert fired == [5.0]

    def test_events_fire_in_time_order(self, kernel):
        order = []
        kernel.schedule_at(3.0, lambda k: order.append(3))
        kernel.schedule_at(1.0, lambda k: order.append(1))
        kernel.schedule_at(2.0, lambda k: order.append(2))
        kernel.run()
        assert order == [1, 2, 3]

    def test_ties_fire_fifo(self, kernel):
        order = []
        for tag in range(5):
            kernel.schedule_at(7.0, lambda k, t=tag: order.append(t))
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_scheduling_in_past_rejected(self, kernel):
        kernel.schedule_at(10.0, lambda k: None)
        kernel.run()
        assert kernel.now() == 10.0
        with pytest.raises(SchedulingInPastError):
            kernel.schedule_at(5.0, lambda k: None)

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.schedule_after(-1.0, lambda k: None)

    def test_schedule_at_current_time_allowed(self, kernel):
        fired = []
        kernel.schedule_at(0.0, lambda k: fired.append(k.now()))
        kernel.run()
        assert fired == [0.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, kernel):
        fired = []
        handle = kernel.schedule_at(5.0, lambda k: fired.append(1))
        handle.cancel()
        kernel.run()
        assert fired == []
        assert handle.cancelled

    def test_double_cancel_raises(self, kernel):
        handle = kernel.schedule_at(5.0, lambda k: None)
        handle.cancel()
        with pytest.raises(SimulationError):
            handle.cancel()

    def test_cancel_after_fire_raises(self, kernel):
        handle = kernel.schedule_at(5.0, lambda k: None)
        kernel.run()
        assert handle.fired
        with pytest.raises(SimulationError):
            handle.cancel()

    def test_cancel_if_pending_is_idempotent(self, kernel):
        handle = kernel.schedule_at(5.0, lambda k: None)
        assert handle.cancel_if_pending() is True
        assert handle.cancel_if_pending() is False

    def test_pending_state_transitions(self, kernel):
        handle = kernel.schedule_at(5.0, lambda k: None)
        assert handle.pending
        kernel.run()
        assert not handle.pending
        assert handle.fired


class TestRun:
    def test_run_until_stops_before_later_events(self, kernel):
        fired = []
        kernel.schedule_at(5.0, lambda k: fired.append(5))
        kernel.schedule_at(15.0, lambda k: fired.append(15))
        kernel.run(until=10.0)
        assert fired == [5]
        assert kernel.now() == 10.0

    def test_run_until_includes_boundary_events(self, kernel):
        fired = []
        kernel.schedule_at(10.0, lambda k: fired.append(10))
        kernel.run(until=10.0)
        assert fired == [10]

    def test_run_advances_clock_to_until_when_queue_empties(self, kernel):
        kernel.schedule_at(2.0, lambda k: None)
        kernel.run(until=100.0)
        assert kernel.now() == 100.0

    def test_run_resumable_after_until(self, kernel):
        fired = []
        kernel.schedule_at(5.0, lambda k: fired.append(5))
        kernel.schedule_at(15.0, lambda k: fired.append(15))
        kernel.run(until=10.0)
        kernel.run()
        assert fired == [5, 15]

    def test_run_until_in_past_rejected(self, kernel):
        kernel.schedule_at(5.0, lambda k: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.run(until=1.0)

    def test_max_events_limits_processing(self, kernel):
        fired = []
        for i in range(10):
            kernel.schedule_at(float(i), lambda k, i=i: fired.append(i))
        processed = kernel.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_reentrant_run_rejected(self, kernel):
        def reenter(k):
            k.run()

        kernel.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_events_scheduled_during_run_are_processed(self, kernel):
        fired = []

        def chain(k):
            fired.append(k.now())
            if k.now() < 3.0:
                k.schedule_after(1.0, chain)

        kernel.schedule_at(0.0, chain)
        kernel.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_returns_processed_count(self, kernel):
        for i in range(4):
            kernel.schedule_at(float(i), lambda k: None)
        assert kernel.run() == 4


class TestIntrospection:
    def test_pending_count_excludes_cancelled(self, kernel):
        h1 = kernel.schedule_at(1.0, lambda k: None)
        kernel.schedule_at(2.0, lambda k: None)
        h1.cancel()
        assert kernel.pending_count == 1

    def test_events_processed_accumulates(self, kernel):
        kernel.schedule_at(1.0, lambda k: None)
        kernel.run()
        kernel.schedule_at(2.0, lambda k: None)
        kernel.run()
        assert kernel.events_processed == 2

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValueError):
            Kernel(start_time=-1.0)

    def test_step_returns_false_on_empty_queue(self, kernel):
        assert kernel.step() is False

    def test_step_processes_single_event(self, kernel):
        fired = []
        kernel.schedule_at(1.0, lambda k: fired.append(1))
        kernel.schedule_at(2.0, lambda k: fired.append(2))
        assert kernel.step() is True
        assert fired == [1]


class TestBatchDispatchSeam:
    """run_batch / peek_next_time / advance_clock — the fast-forward seam."""

    def test_run_batch_dispatches_events_up_to_until(self, kernel):
        fired = []
        for t in (1.0, 2.0, 3.0, 7.0):
            kernel.schedule_at(t, lambda k: fired.append(k.now()))
        assert kernel.run_batch(3.0) == 3
        assert fired == [1.0, 2.0, 3.0]
        assert kernel.pending_count == 1

    def test_run_batch_leaves_clock_at_last_event(self, kernel):
        kernel.schedule_at(2.0, lambda k: None)
        kernel.run_batch(5.0)
        # Unlike run(until=5.0), the clock is NOT finalized to until.
        assert kernel.now() == 2.0

    def test_run_batch_on_empty_window_is_a_no_op(self, kernel):
        kernel.schedule_at(9.0, lambda k: None)
        assert kernel.run_batch(5.0) == 0
        assert kernel.now() == 0.0

    def test_run_batch_includes_events_scheduled_during_batch(self, kernel):
        fired = []

        def chain(k):
            fired.append(k.now())
            if k.now() < 3.0:
                k.schedule_after(1.0, chain)

        kernel.schedule_at(1.0, chain)
        assert kernel.run_batch(3.0) == 3
        assert fired == [1.0, 2.0, 3.0]

    def test_run_batch_respects_max_events(self, kernel):
        for t in (1.0, 2.0, 3.0):
            kernel.schedule_at(t, lambda k: None)
        assert kernel.run_batch(10.0, max_events=2) == 2
        assert kernel.pending_count == 1

    def test_run_batch_counts_into_events_processed(self, kernel):
        kernel.schedule_at(1.0, lambda k: None)
        kernel.run_batch(1.0)
        assert kernel.events_processed == 1

    def test_peek_next_time_returns_earliest_pending(self, kernel):
        kernel.schedule_at(4.0, lambda k: None)
        kernel.schedule_at(2.0, lambda k: None)
        assert kernel.peek_next_time() == 2.0

    def test_peek_next_time_skips_cancelled_heads(self, kernel):
        handle = kernel.schedule_at(1.0, lambda k: None)
        kernel.schedule_at(6.0, lambda k: None)
        handle.cancel()
        assert kernel.peek_next_time() == 6.0

    def test_peek_next_time_empty_queue_is_none(self, kernel):
        assert kernel.peek_next_time() is None

    def test_advance_clock_moves_through_empty_interval(self, kernel):
        kernel.advance_clock(42.0)
        assert kernel.now() == 42.0

    def test_advance_clock_refuses_backwards(self, kernel):
        kernel.advance_clock(10.0)
        with pytest.raises(SimulationError):
            kernel.advance_clock(5.0)

    def test_advance_clock_refuses_to_jump_past_pending_event(self, kernel):
        kernel.schedule_at(3.0, lambda k: None)
        with pytest.raises(SimulationError):
            kernel.advance_clock(4.0)

    def test_advance_clock_allows_landing_exactly_on_pending_event(
        self, kernel
    ):
        fired = []
        kernel.schedule_at(3.0, lambda k: fired.append(k.now()))
        kernel.advance_clock(3.0)
        assert kernel.now() == 3.0
        kernel.run_batch(3.0)
        assert fired == [3.0]

    def test_interleaved_batches_match_plain_run(self):
        def build():
            k = Kernel()
            fired = []
            for t in (1.0, 2.5, 2.5, 4.0):
                k.schedule_at(t, lambda kk: fired.append(kk.now()))
            return k, fired

        plain, plain_fired = build()
        plain.run(until=5.0)

        seamed, seam_fired = build()
        while True:
            nxt = seamed.peek_next_time()
            if nxt is None or nxt > 5.0:
                break
            seamed.advance_clock(nxt)
            seamed.run_batch(nxt)
        seamed.advance_clock(5.0)

        assert seam_fired == plain_fired
        assert seamed.now() == plain.now() == 5.0
        assert seamed.events_processed == plain.events_processed
