"""Unit tests for analysis utilities: rate estimators, time series."""

from __future__ import annotations

import math

import pytest

from repro.analysis.rates import (
    UpdateRateEstimator,
    ValueRateEstimator,
    ttr_for_value_bound,
)
from repro.analysis.timeseries import (
    Series,
    bin_count,
    moving_average,
    ratio_series,
    sample_step_function,
)


class TestUpdateRateEstimator:
    def test_no_data_means_unknown(self):
        estimator = UpdateRateEstimator()
        assert estimator.rate() is None
        assert estimator.mean_gap() is None

    def test_regular_gaps_converge(self):
        estimator = UpdateRateEstimator(smoothing=0.5)
        for i in range(20):
            estimator.observe_modification(10.0 * (i + 1))
        assert estimator.rate() == pytest.approx(0.1, rel=1e-6)

    def test_repeated_last_modified_ignored(self):
        estimator = UpdateRateEstimator()
        estimator.observe_modification(10.0)
        estimator.observe_modification(20.0)
        estimator.observe_modification(20.0)  # 304-style repeat
        assert estimator.sample_count == 1

    def test_silence_decays_rate(self):
        estimator = UpdateRateEstimator()
        for i in range(5):
            estimator.observe_modification(10.0 * (i + 1))
        active = estimator.rate(now=50.0)
        silent = estimator.rate(now=1000.0)
        assert silent < active

    def test_observe_update_count_uses_mean_gap(self):
        estimator = UpdateRateEstimator(smoothing=1.0)
        estimator.observe_update_count(5, 50.0, last_modified=50.0)
        assert estimator.rate() == pytest.approx(0.1)

    def test_observe_update_count_ignores_empty(self):
        estimator = UpdateRateEstimator()
        estimator.observe_update_count(0, 50.0, last_modified=0.0)
        assert estimator.rate() is None


class TestValueRateEstimator:
    def test_first_observation_returns_none(self):
        estimator = ValueRateEstimator()
        assert estimator.observe(0.0, 10.0) is None

    def test_rate_is_abs_slope(self):
        estimator = ValueRateEstimator()
        estimator.observe(0.0, 10.0)
        rate = estimator.observe(10.0, 5.0)
        assert rate == pytest.approx(0.5)

    def test_smoothing_blends(self):
        estimator = ValueRateEstimator(smoothing=0.5)
        estimator.observe(0.0, 0.0)
        estimator.observe(10.0, 10.0)  # rate 1.0
        rate = estimator.observe(20.0, 10.0)  # instantaneous 0.0
        assert rate == pytest.approx(0.5)

    def test_zero_interval_ignored(self):
        estimator = ValueRateEstimator()
        estimator.observe(0.0, 10.0)
        estimator.observe(10.0, 20.0)
        before = estimator.rate
        assert estimator.observe(10.0, 30.0) == before

    def test_non_finite_value_rejected(self):
        estimator = ValueRateEstimator()
        with pytest.raises(ValueError):
            estimator.observe(0.0, math.nan)


class TestTtrForValueBound:
    def test_eq9(self):
        assert ttr_for_value_bound(2.0, 0.5, ttr_if_static=99.0) == 4.0

    def test_static_fallback(self):
        assert ttr_for_value_bound(2.0, None, ttr_if_static=99.0) == 99.0
        assert ttr_for_value_bound(2.0, 0.0, ttr_if_static=99.0) == 99.0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            ttr_for_value_bound(0.0, 1.0, ttr_if_static=1.0)


class TestSeries:
    def test_bin_count(self):
        series = bin_count(
            [1.0, 2.0, 2.5, 9.0], start=0.0, end=10.0, bin_width=5.0
        )
        assert series.values == (3.0, 1.0)

    def test_bin_count_excludes_out_of_window(self):
        series = bin_count(
            [-1.0, 10.0, 5.0], start=0.0, end=10.0, bin_width=5.0
        )
        assert series.values == (0.0, 1.0)

    def test_bin_centers(self):
        series = Series(start=0.0, bin_width=2.0, values=(1.0, 2.0))
        assert series.bin_centers() == [1.0, 3.0]
        assert series.end == 4.0

    def test_sample_step_function(self):
        knots = [(0.0, 1.0), (5.0, 2.0)]
        series = sample_step_function(
            knots, start=0.0, end=10.0, bin_width=2.0
        )
        # Centers 1,3,5,7,9 → values 1,1,2,2,2.
        assert series.values == (1.0, 1.0, 2.0, 2.0, 2.0)

    def test_sample_step_function_initial_value(self):
        series = sample_step_function(
            [(6.0, 5.0)], start=0.0, end=10.0, bin_width=5.0, initial=-1.0
        )
        assert series.values == (-1.0, 5.0)

    def test_sample_step_function_unsorted_knots_rejected(self):
        with pytest.raises(ValueError):
            sample_step_function(
                [(5.0, 1.0), (1.0, 2.0)], start=0.0, end=10.0, bin_width=5.0
            )

    def test_ratio_series(self):
        a = Series(start=0.0, bin_width=1.0, values=(4.0, 2.0, 1.0))
        b = Series(start=0.0, bin_width=1.0, values=(2.0, 0.0, 4.0))
        ratio = ratio_series(a, b)
        assert ratio.values[0] == 2.0
        assert math.isnan(ratio.values[1])
        assert ratio.values[2] == 0.25

    def test_ratio_series_misaligned_rejected(self):
        a = Series(start=0.0, bin_width=1.0, values=(1.0,))
        b = Series(start=1.0, bin_width=1.0, values=(1.0,))
        with pytest.raises(ValueError):
            ratio_series(a, b)

    def test_moving_average(self):
        series = Series(start=0.0, bin_width=1.0, values=(0.0, 3.0, 6.0))
        smoothed = moving_average(series, window_bins=3)
        assert smoothed.values[1] == pytest.approx(3.0)

    def test_moving_average_handles_nan(self):
        series = Series(
            start=0.0, bin_width=1.0, values=(1.0, math.nan, 3.0)
        )
        smoothed = moving_average(series, window_bins=3)
        assert smoothed.values[1] == pytest.approx(2.0)

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ValueError):
            Series(start=0.0, bin_width=0.0, values=())
