"""Fast-forward equivalence: analytic advance == step-by-step kernel.

The contract under test (see :mod:`repro.sim.fastforward`): running a
simulation with ``fidelity="fastforward"`` produces byte-identical
observable histories to the exact kernel — per-poll fetch logs,
proxy/origin counters, network request counts, refresher schedules and
the final result rows — for every policy, topology and workload the
engine accepts.  The property-based section drives randomized configs
through both paths and compares everything observable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.builder import SimulationBuilder, run_simulation
from repro.api.config import LevelConfig, SimulationConfigError
from repro.api.runs import build_stack
from repro.consistency.ttl import StaticTTLPolicy
from repro.core.types import ObjectId
from repro.sim.fastforward import FastForwardEngine
from repro.traces.model import UpdateRecord, UpdateTrace


def _assert_equivalent(exact, fast):
    """Every observable of two outcomes must match exactly."""
    assert exact.results.to_csv() == fast.results.to_csv()
    assert exact.run.kernel.now() == fast.run.kernel.now()
    assert (
        exact.run.server.counters.as_dict()
        == fast.run.server.counters.as_dict()
    )
    exact_nodes = exact.tree.nodes if exact.tree else (None,)
    fast_nodes = fast.tree.nodes if fast.tree else (None,)
    assert len(exact_nodes) == len(fast_nodes)
    for exact_node, fast_node in zip(exact_nodes, fast_nodes):
        e_proxy = exact_node.proxy if exact_node else exact.run.proxy
        f_proxy = fast_node.proxy if fast_node else fast.run.proxy
        assert e_proxy.counters.as_dict() == f_proxy.counters.as_dict()
        assert e_proxy.network.requests_sent == f_proxy.network.requests_sent
        assert sorted(map(str, e_proxy.registered_objects())) == sorted(
            map(str, f_proxy.registered_objects())
        )
        for object_id in e_proxy.registered_objects():
            e_entry = e_proxy.entry_or_none(object_id)
            f_entry = f_proxy.entry_or_none(object_id)
            assert (e_entry is None) == (f_entry is None)
            if e_entry is not None:
                assert tuple(e_entry.fetch_log) == tuple(f_entry.fetch_log)
            e_refresher = e_proxy.refresher_for(object_id)
            f_refresher = f_proxy.refresher_for(object_id)
            assert not f_refresher.detached
            assert e_refresher.next_poll_time == f_refresher.next_poll_time


def _outcome_pair(*, policy, policy_params, levels, seed, rate, horizon):
    def build(fidelity):
        return (
            SimulationBuilder()
            .workload(
                "poisson", "x", "y", rate_per_hour=rate, hours=horizon / 3600.0
            )
            .policy(policy, **policy_params)
            .topology(
                "tree",
                levels=[LevelConfig(fan_out=f) for f in levels],
            )
            .seed(seed)
            .fidelity_delta(300.0)
            .horizon(horizon)
            .fidelity(fidelity)
            .build()
        )

    return run_simulation(build("exact")), run_simulation(build("fastforward"))


class TestEquivalenceProperty:
    """Randomized configs: exact and fast-forward histories match."""

    @given(
        ttl=st.floats(min_value=20.0, max_value=1500.0),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.2, max_value=40.0),
        fan_outs=st.lists(
            st.integers(min_value=1, max_value=3), min_size=1, max_size=2
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_static_ttl_any_config(self, ttl, seed, rate, fan_outs):
        exact, fast = _outcome_pair(
            policy="static_ttl",
            policy_params={"ttl": ttl},
            levels=fan_outs,
            seed=seed,
            rate=rate,
            horizon=3600.0,
        )
        _assert_equivalent(exact, fast)

    @given(
        delta=st.floats(min_value=60.0, max_value=1200.0),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.2, max_value=40.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_limd_adaptive_policy(self, delta, seed, rate):
        # Adaptive TTRs disable the bulk tier; every poll goes through
        # the step-equivalent single-poll path and must still match.
        exact, fast = _outcome_pair(
            policy="limd",
            policy_params={"delta": delta, "ttr_max": 1800.0},
            levels=[2],
            seed=seed,
            rate=rate,
            horizon=3600.0,
        )
        _assert_equivalent(exact, fast)


class TestEngineDirect:
    """FastForwardEngine used directly on a built stack."""

    @staticmethod
    def _stack(updates=()):
        records = [
            UpdateRecord(time, version + 1, float(version))
            for version, time in enumerate(updates)
        ]
        trace = UpdateTrace(ObjectId("obj"), records, end_time=7200.0)
        kernel, server, proxy, _log = build_stack([trace])
        proxy.register_object(
            trace.object_id, server, StaticTTLPolicy(250.0)
        )
        return kernel, server, proxy, trace

    def test_idle_run_collapses_into_bulk_polls(self):
        kernel, _server, proxy, _trace = self._stack()
        engine = FastForwardEngine(kernel, [proxy])
        try:
            engine.run(7200.0)
        finally:
            engine.close()
        # 7200 / 250 -> polls at 250, 500, ... 7000, plus registration.
        assert engine.bulk_polls > 20
        assert kernel.now() == 7200.0
        entry = proxy.entry_for(ObjectId("obj"))
        assert entry.poll_count == 1 + 28

    def test_matches_exact_stack_with_updates(self):
        updates = (100.0, 1900.0, 1950.0, 5000.0)
        kernel_a, server_a, proxy_a, _trace = self._stack(updates)
        kernel_a.run(until=7200.0)

        kernel_b, server_b, proxy_b, _trace = self._stack(updates)
        engine = FastForwardEngine(kernel_b, [proxy_b])
        try:
            engine.run(7200.0)
        finally:
            engine.close()

        entry_a = proxy_a.entry_for(ObjectId("obj"))
        entry_b = proxy_b.entry_for(ObjectId("obj"))
        assert tuple(entry_a.fetch_log) == tuple(entry_b.fetch_log)
        assert proxy_a.counters.as_dict() == proxy_b.counters.as_dict()
        assert server_a.counters.as_dict() == server_b.counters.as_dict()
        assert (
            proxy_a.network.requests_sent == proxy_b.network.requests_sent
        )

    def test_close_reattaches_and_stepping_continues(self):
        updates = (300.0, 4000.0)
        kernel_a, _sa, proxy_a, _trace = self._stack(updates)
        kernel_a.run(until=7200.0)

        kernel_b, _sb, proxy_b, _trace = self._stack(updates)
        engine = FastForwardEngine(kernel_b, [proxy_b])
        engine.run(3600.0)
        engine.close()
        # After close the refresher is back on a kernel timer; plain
        # stepping to the horizon must land in the same state.
        kernel_b.run(until=7200.0)

        entry_a = proxy_a.entry_for(ObjectId("obj"))
        entry_b = proxy_b.entry_for(ObjectId("obj"))
        assert tuple(entry_a.fetch_log) == tuple(entry_b.fetch_log)

    def test_latent_link_is_rejected(self):
        from repro.httpsim.network import LatencyModel

        records = []
        trace = UpdateTrace(ObjectId("obj"), records, end_time=1000.0)
        kernel, server, proxy, _log = build_stack(
            [trace], latency=LatencyModel(one_way=0.5)
        )
        proxy.register_object(trace.object_id, server, StaticTTLPolicy(100.0))
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError):
            FastForwardEngine(kernel, [proxy])


class TestConfigSurface:
    def test_fidelity_round_trips_through_to_dict(self):
        config = SimulationBuilder().fidelity("fastforward").build()
        assert config.to_dict()["fidelity"] == "fastforward"
        assert config.to_dict()["shards"] == 1

    def test_unknown_fidelity_mode_rejected(self):
        with pytest.raises(SimulationConfigError):
            SimulationBuilder().fidelity("approximate").build()

    def test_fastforward_with_latent_links_rejected(self):
        config = (
            SimulationBuilder()
            .workload("poisson", "x", rate_per_hour=2.0, hours=1.0)
            .policy("static_ttl", ttl=300.0)
            .network(0.05)
            .fidelity("fastforward")
            .build()
        )
        with pytest.raises(SimulationConfigError):
            run_simulation(config)

    def test_fastforward_single_topology(self):
        def build(fidelity):
            return (
                SimulationBuilder()
                .workload("poisson", "x", rate_per_hour=6.0, hours=1.0)
                .policy("static_ttl", ttl=120.0)
                .seed(3)
                .horizon(3600.0)
                .fidelity(fidelity)
                .build()
            )

        exact = run_simulation(build("exact"))
        fast = run_simulation(build("fastforward"))
        assert exact.results.to_csv() == fast.results.to_csv()
        assert (
            exact.run.proxy.counters.as_dict()
            == fast.run.proxy.counters.as_dict()
        )
