"""Unit tests for the scenario registry and the generic driver."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.scenarios.engine import (
    describe_scenario,
    render_scenario,
    run_scenario,
)
from repro.scenarios.registry import (
    SCENARIOS,
    Scenario,
    UnknownScenarioError,
    register_scenario,
)
from repro.scenarios.spec import ScenarioSpec

# ----------------------------------------------------------------------
# A module-level toy scenario (point functions must pickle for the
# workers=2 tests, so no closures).
# ----------------------------------------------------------------------


def _toy_prepare(params, seed):
    return {"offset": params["offset"], "seed": seed}


def _toy_point(value, *, offset, seed):
    return {"doubled": value * 2 + offset, "seed_seen": seed}


def _toy_scenario(name="_toy"):
    return Scenario(
        spec=ScenarioSpec(
            name=name,
            description="toy",
            axis="x",
            values=(1.0, 2.0, 3.0),
            params={"offset": 10},
        ),
        point=_toy_point,
        prepare=_toy_prepare,
    )


def _labelled_point(value, *, offset, seed):
    del seed
    return {"x": f"<{value}>", "result": offset}


class TestRegistry:
    def test_builtin_and_family_scenarios_registered(self):
        names = SCENARIOS.names()
        for expected in (
            "table2",
            "table3",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "group_mt",
            "hierarchy",
            "ablation_history",
            "ablation_heuristic_threshold",
            "ablation_partition",
            "ablation_smoothing",
            "ablation_trigger_semantics",
            "ablation_limd_parameters",
            "ablation_latency",
            "flash_crowd",
            "diurnal",
            "failure_churn",
            "hetero_mix",
        ):
            assert expected in names

    def test_at_least_four_new_families(self):
        family_tagged = [
            entry
            for entry in SCENARIOS.values()
            if "family" in entry.spec.tags
        ]
        assert len(family_tagged) >= 4

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownScenarioError, match="unknown scenario"):
            SCENARIOS.get("no_such_scenario")

    def test_duplicate_registration_rejected(self):
        from repro.api.registries import RegistryError

        register_scenario(_toy_scenario("_toy_dup"))
        try:
            with pytest.raises(RegistryError, match="already registered"):
                register_scenario(_toy_scenario("_toy_dup"))
        finally:
            SCENARIOS._items.pop("_toy_dup", None)


class TestDriver:
    def test_rows_in_axis_order_with_axis_column(self):
        result = run_scenario(_toy_scenario(), seed=5)
        assert [row["x"] for row in result.rows] == [1.0, 2.0, 3.0]
        assert [row["doubled"] for row in result.rows] == [12.0, 14.0, 16.0]
        assert all(row["seed_seen"] == 5 for row in result.rows)

    def test_axis_column_not_duplicated_when_point_reports_it(self):
        entry = Scenario(
            spec=_toy_scenario().spec, point=_labelled_point, prepare=_toy_prepare
        )
        result = run_scenario(entry)
        # The point's own axis column wins (configuration-grid style).
        assert [row["x"] for row in result.rows] == ["<1.0>", "<2.0>", "<3.0>"]

    def test_params_override_applies(self):
        result = run_scenario(_toy_scenario(), params={"offset": 0})
        assert result.rows[0]["doubled"] == 2.0
        assert result.spec.params["offset"] == 0

    def test_values_override_applies(self):
        result = run_scenario(_toy_scenario(), values=(7.0,))
        assert [row["x"] for row in result.rows] == [7.0]

    def test_parallel_matches_serial(self):
        serial = run_scenario(_toy_scenario(), seed=3)
        parallel = run_scenario(_toy_scenario(), seed=3, workers=2)
        assert serial.rows == parallel.rows

    def test_non_mapping_point_result_rejected(self):
        entry = Scenario(
            spec=_toy_scenario().spec,
            point=_bad_point,
            prepare=_toy_prepare,
        )
        with pytest.raises(ExperimentError, match="expected a mapping"):
            run_scenario(entry)

    def test_sweep_view_exposes_columns(self):
        result = run_scenario(_toy_scenario())
        assert result.sweep.values() == [1.0, 2.0, 3.0]
        assert result.sweep.column("doubled") == [12.0, 14.0, 16.0]

    def test_result_to_dict_is_serializable(self):
        import json

        payload = run_scenario(_toy_scenario()).to_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["spec"]["name"] == "_toy"
        assert len(restored["rows"]) == 3
        assert restored["seed"] == 20010401


def _bad_point(value, *, offset, seed):
    del offset, seed
    return [value]


class TestRendering:
    def test_render_uses_title_and_columns(self):
        entry = Scenario(
            spec=ScenarioSpec(
                name="_toy_render",
                description="toy",
                axis="x",
                values=(1.0,),
                params={"offset": 0},
                columns=("x", "doubled"),
                title="Toy render",
            ),
            point=_toy_point,
            prepare=_toy_prepare,
        )
        text = render_scenario(run_scenario(entry))
        assert "Toy render" in text
        assert "doubled" in text
        # seed_seen is excluded by the column selection.
        assert "seed_seen" not in text

    def test_describe_lists_axis_params_and_tags(self):
        text = describe_scenario("figure3")
        assert "figure3" in text
        assert "delta_min" in text
        assert "detection_mode" in text
        assert "paper" in text


class TestPortedExperimentsMatchEngine:
    """The classic module entry points are thin specs over the engine."""

    def test_figure3_module_equals_scenario(self):
        from repro.experiments import figure3

        module_rows = figure3.run(deltas_min=(5.0,)).rows
        engine_rows = run_scenario("figure3", values=(5.0,)).rows
        assert module_rows == engine_rows

    def test_table2_module_equals_scenario(self):
        from repro.experiments import table2

        assert table2.run() == run_scenario("table2").rows

    def test_ablation_history_equals_scenario(self):
        from repro.experiments.ablations import ablate_history

        assert ablate_history() == run_scenario("ablation_history").rows
