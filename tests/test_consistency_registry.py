"""Unit tests for the policy registry."""

from __future__ import annotations

import pytest

from repro.consistency.base import FixedTTRPolicy, PassivePolicy, RefreshPolicy
from repro.consistency.limd import LimdPolicy
from repro.consistency.adaptive_value import AdaptiveValueTTRPolicy
from repro.consistency.registry import (
    available_policies,
    build_policy_factory,
    register_policy,
)
from repro.core.errors import PolicyConfigurationError
from repro.core.types import ObjectId


class TestRegistry:
    def test_builtin_policies_listed(self):
        names = available_policies()
        for expected in ("baseline", "limd", "adaptive_value", "passive"):
            assert expected in names

    def test_build_baseline(self):
        factory = build_policy_factory("baseline", delta=5.0)
        policy = factory(ObjectId("x"))
        assert isinstance(policy, FixedTTRPolicy)
        assert policy.ttr == 5.0

    def test_build_limd(self):
        factory = build_policy_factory("limd", delta=5.0, ttr_max=100.0)
        policy = factory(ObjectId("x"))
        assert isinstance(policy, LimdPolicy)
        assert policy.bounds.ttr_max == 100.0

    def test_build_limd_detection_mode(self):
        factory = build_policy_factory(
            "limd", delta=5.0, detection_mode="inferred"
        )
        policy = factory(ObjectId("x"))
        assert policy.detector.mode == "inferred"

    def test_build_adaptive_value(self):
        factory = build_policy_factory(
            "adaptive_value", delta=1.0, ttr_min=1.0, ttr_max=60.0
        )
        policy = factory(ObjectId("x"))
        assert isinstance(policy, AdaptiveValueTTRPolicy)

    def test_build_passive(self):
        factory = build_policy_factory("passive")
        assert isinstance(factory(ObjectId("x")), PassivePolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(PolicyConfigurationError, match="unknown"):
            build_policy_factory("telepathy", delta=1.0)

    def test_custom_registration(self):
        class EchoPolicy(RefreshPolicy):
            name = "echo"

            def first_ttr(self):
                return 1.0

            def next_ttr(self, outcome):
                return 1.0

            @property
            def current_ttr(self):
                return 1.0

        def build_echo():
            return lambda _oid: EchoPolicy()

        register_policy("echo-test", build_echo)
        try:
            factory = build_policy_factory("echo-test")
            assert isinstance(factory(ObjectId("x")), EchoPolicy)
            with pytest.raises(PolicyConfigurationError, match="already"):
                register_policy("echo-test", build_echo)
        finally:
            from repro.consistency import registry as registry_module

            registry_module.POLICIES._items.pop("echo-test", None)
