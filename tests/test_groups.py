"""Unit tests for dependency graphs, HTML extraction, group registry."""

from __future__ import annotations

import pytest

from repro.core.errors import UnknownGroupError
from repro.core.types import GroupId, ObjectId
from repro.groups.dependency import DependencyGraph
from repro.groups.html_links import extract_embedded_urls, relate_document
from repro.groups.registry import GroupRegistry, groups_from_components

A, B, C, D = (ObjectId(x) for x in "abcd")


class TestDependencyGraph:
    def test_relate_creates_undirected_edge(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        assert graph.are_related(A, B)
        assert graph.are_related(B, A)
        assert graph.neighbours(A) == {B}

    def test_self_relation_rejected(self):
        graph = DependencyGraph()
        with pytest.raises(ValueError):
            graph.relate(A, A)

    def test_relate_all_builds_clique(self):
        graph = DependencyGraph()
        graph.relate_all([A, B, C])
        assert graph.are_related(A, C)
        assert len(graph.edges()) == 3

    def test_unrelate(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.unrelate(A, B)
        assert not graph.are_related(A, B)
        assert A in graph and B in graph

    def test_remove_object_drops_edges(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.relate(B, C)
        graph.remove_object(B)
        assert B not in graph
        assert graph.neighbours(A) == frozenset()
        assert graph.neighbours(C) == frozenset()

    def test_connected_components(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.relate(C, D)
        graph.add_object(ObjectId("isolated"))
        components = graph.connected_components()
        assert frozenset({A, B}) in components
        assert frozenset({C, D}) in components
        assert frozenset({ObjectId("isolated")}) in components

    def test_component_of_transitive(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.relate(B, C)
        assert graph.component_of(A) == {A, B, C}

    def test_component_of_unknown_rejected(self):
        with pytest.raises(KeyError):
            DependencyGraph().component_of(A)

    def test_edges_deduplicated_and_sorted(self):
        graph = DependencyGraph()
        graph.relate(B, A)
        graph.relate(A, C)
        assert graph.edges() == [(A, B), (A, C)]


class TestHtmlExtraction:
    BASE = "http://news.example.com/story.html"

    def test_img_and_script_extracted(self):
        html = (
            '<html><body><img src="/photo.jpg">'
            '<script src="app.js"></script></body></html>'
        )
        urls = extract_embedded_urls(html, self.BASE)
        assert "http://news.example.com/photo.jpg" in urls
        assert "http://news.example.com/app.js" in urls

    def test_stylesheet_link_extracted_other_rels_ignored(self):
        html = (
            '<link rel="stylesheet" href="style.css">'
            '<link rel="canonical" href="other.html">'
        )
        urls = extract_embedded_urls(html, self.BASE)
        assert "http://news.example.com/style.css" in urls
        assert all("other.html" not in u for u in urls)

    def test_anchors_excluded_by_default(self):
        html = '<a href="next.html">next</a><img src="pic.png">'
        urls = extract_embedded_urls(html, self.BASE)
        assert urls == ["http://news.example.com/pic.png"]

    def test_anchors_included_on_request(self):
        html = '<a href="next.html">next</a>'
        urls = extract_embedded_urls(html, self.BASE, include_anchors=True)
        assert urls == ["http://news.example.com/next.html"]

    def test_non_http_schemes_dropped(self):
        html = (
            '<img src="javascript:alert(1)">'
            '<img src="data:image/png;base64,xyz">'
            '<a href="mailto:x@y.z">m</a>'
        )
        assert extract_embedded_urls(html, self.BASE, include_anchors=True) == []

    def test_fragments_stripped_and_deduped(self):
        html = '<img src="pic.png#a"><img src="pic.png#b">'
        urls = extract_embedded_urls(html, self.BASE)
        assert urls == ["http://news.example.com/pic.png"]

    def test_self_reference_dropped(self):
        html = f'<img src="{self.BASE}">'
        assert extract_embedded_urls(html, self.BASE) == []

    def test_absolute_urls_preserved(self):
        html = '<img src="http://cdn.example.net/x.jpg">'
        urls = extract_embedded_urls(html, self.BASE)
        assert urls == ["http://cdn.example.net/x.jpg"]

    def test_video_audio_iframe_extracted(self):
        html = (
            '<video src="clip.mp4"></video>'
            '<audio src="clip.mp3"></audio>'
            '<iframe src="embed.html"></iframe>'
        )
        urls = extract_embedded_urls(html, self.BASE)
        assert len(urls) == 3

    def test_relate_document_builds_graph(self):
        graph = DependencyGraph()
        html = '<img src="a.png"><img src="b.png">'
        embedded = relate_document(graph, self.BASE, html)
        assert len(embedded) == 2
        doc = ObjectId(self.BASE)
        assert graph.neighbours(doc) == set(embedded)

    def test_relate_document_with_no_embeds_adds_node(self):
        graph = DependencyGraph()
        relate_document(graph, self.BASE, "<p>hello</p>")
        assert ObjectId(self.BASE) in graph


class TestGroupRegistry:
    def test_create_and_lookup(self):
        registry = GroupRegistry()
        spec = registry.create_group("g", (A, B), 5.0)
        assert registry.get(GroupId("g")) is spec
        assert GroupId("g") in registry
        assert len(registry) == 1

    def test_duplicate_group_rejected(self):
        registry = GroupRegistry()
        registry.create_group("g", (A, B), 5.0)
        with pytest.raises(ValueError):
            registry.create_group("g", (C, D), 5.0)

    def test_groups_of_member(self):
        registry = GroupRegistry()
        registry.create_group("g1", (A, B), 5.0)
        registry.create_group("g2", (A, C), 2.0)
        groups = registry.groups_of(A)
        assert [str(g.group_id) for g in groups] == ["g1", "g2"]
        assert registry.groups_of(D) == []

    def test_partners_union(self):
        registry = GroupRegistry()
        registry.create_group("g1", (A, B), 5.0)
        registry.create_group("g2", (A, C), 2.0)
        assert registry.partners_of(A) == {B, C}

    def test_remove_group_cleans_index(self):
        registry = GroupRegistry()
        registry.create_group("g", (A, B), 5.0)
        registry.remove_group(GroupId("g"))
        assert registry.groups_of(A) == []
        assert len(registry) == 0

    def test_remove_unknown_group_rejected(self):
        with pytest.raises(UnknownGroupError):
            GroupRegistry().remove_group(GroupId("nope"))

    def test_get_unknown_group_rejected(self):
        with pytest.raises(UnknownGroupError):
            GroupRegistry().get(GroupId("nope"))

    def test_all_members(self):
        registry = GroupRegistry()
        registry.create_group("g1", (A, B), 5.0)
        registry.create_group("g2", (C, D), 5.0)
        assert registry.all_members() == {A, B, C, D}

    def test_create_group_rejects_single_member(self):
        with pytest.raises(ValueError, match=">= 2 members"):
            GroupRegistry().create_group("g", (A,), 5.0)

    def test_create_group_rejects_empty_members(self):
        with pytest.raises(ValueError, match="2 members"):
            GroupRegistry().create_group("g", (), 5.0)

    def test_create_group_rejects_duplicate_members(self):
        with pytest.raises(ValueError, match="duplicate"):
            GroupRegistry().create_group("g", (A, B, A), 5.0)

    def test_add_group_revalidates_bypassed_spec(self):
        # A spec smuggled past GroupSpec.__post_init__ must still be
        # rejected at registration, or the member index double-counts.
        from repro.core.types import GroupSpec

        spec = object.__new__(GroupSpec)
        object.__setattr__(spec, "group_id", GroupId("g"))
        object.__setattr__(spec, "members", (A, A))
        object.__setattr__(spec, "mutual_delta", 5.0)
        registry = GroupRegistry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.add_group(spec)
        assert len(registry) == 0
        assert registry.groups_of(A) == []


class TestGroupsFromComponents:
    def test_one_group_per_component(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.relate(C, D)
        specs = groups_from_components(graph, mutual_delta=3.0)
        assert len(specs) == 2
        assert all(spec.mutual_delta == 3.0 for spec in specs)

    def test_isolated_objects_skipped(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.add_object(C)
        specs = groups_from_components(graph, mutual_delta=3.0)
        assert len(specs) == 1
        assert set(specs[0].members) == {A, B}

    def test_group_ids_deterministic(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        graph.relate(C, D)
        specs = groups_from_components(graph, mutual_delta=3.0, prefix="grp")
        assert [str(s.group_id) for s in specs] == ["grp-0", "grp-1"]

    def test_feeds_registry(self):
        graph = DependencyGraph()
        graph.relate(A, B)
        registry = GroupRegistry()
        for spec in groups_from_components(graph, mutual_delta=1.0):
            registry.add_group(spec)
        assert registry.partners_of(A) == {B}
