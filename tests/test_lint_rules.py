"""Fixture-driven tests for the ``repro lint`` rule packs.

Every rule has a ``flagged.py`` exemplar (must trigger) and a
``clean.py`` exemplar (must not) under ``tests/lint_fixtures/``; see
the README there.  Scoped rules exploit positional scope matching: the
linter scopes by path *component*, so ``rl101/sim/flagged.py`` is in
scope for the determinism pack exactly like ``src/repro/sim/*.py``.
"""

import unittest
from pathlib import Path

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: (rule code, fixture directory, expected finding count in flagged.py).
RULE_CASES = (
    ("RL101", "rl101/sim", 2),
    ("RL102", "rl102/sim", 2),
    ("RL103", "rl103/sim", 2),
    ("RL104", "rl104/sim", 3),
    ("RL105", "rl105/metrics", 2),
    ("RL201", "rl201/proxy", 2),
    ("RL202", "rl202/proxy", 1),
    ("RL203", "rl203/sim", 1),
    ("RL301", "rl301", 1),
    ("RL303", "rl303", 2),
)


def _lint_one(path: Path, code: str):
    return lint_paths([str(path)], only=[code])


class TestRuleFixtures(unittest.TestCase):
    """Each rule flags its flagged exemplar and passes its clean one."""

    def test_flagged_exemplars_trigger(self):
        for code, directory, expected in RULE_CASES:
            with self.subTest(code=code):
                run = _lint_one(FIXTURES / directory / "flagged.py", code)
                self.assertEqual(len(run.findings), expected)
                self.assertTrue(
                    all(f.code == code for f in run.findings),
                    [f.render() for f in run.findings],
                )

    def test_clean_exemplars_pass(self):
        for code, directory, _ in RULE_CASES:
            with self.subTest(code=code):
                run = _lint_one(FIXTURES / directory / "clean.py", code)
                self.assertEqual(
                    [f.render() for f in run.findings], []
                )

    def test_clean_exemplars_pass_all_rules(self):
        """Clean fixtures are clean under the *whole* rule pack."""
        for code, directory, _ in RULE_CASES:
            with self.subTest(code=code):
                run = lint_paths([str(FIXTURES / directory / "clean.py")])
                self.assertEqual(
                    [f.render() for f in run.findings], []
                )

    def test_findings_carry_location_and_message(self):
        run = _lint_one(FIXTURES / "rl101" / "sim" / "flagged.py", "RL101")
        for finding in run.findings:
            self.assertGreater(finding.line, 0)
            self.assertIn("time", finding.message)
            self.assertTrue(finding.path.endswith("flagged.py"))

    def test_rl201_messages_name_the_class(self):
        run = _lint_one(FIXTURES / "rl201" / "proxy" / "flagged.py", "RL201")
        messages = sorted(f.message for f in run.findings)
        self.assertIn("class Unslotted lacks __slots__", messages[0])
        self.assertIn("UnslottedRecord", messages[1])
        self.assertIn("slots=True", messages[1])

    def test_rl202_names_the_escaping_attribute(self):
        run = _lint_one(FIXTURES / "rl202" / "proxy" / "flagged.py", "RL202")
        (finding,) = run.findings
        self.assertIn("self.latest", finding.message)
        self.assertIn("Drifting", finding.message)


class TestCrossFileRules(unittest.TestCase):
    """RL302 reconciles registrations against TINY_CONFIGS at finalize."""

    def test_rl302_unregistered_scenario_is_flagged(self):
        run = lint_paths([str(FIXTURES / "rl302" / "flagged")], only=["RL302"])
        (finding,) = run.findings
        self.assertEqual(finding.code, "RL302")
        self.assertIn("uncovered", finding.message)

    def test_rl302_registered_scenarios_pass(self):
        run = lint_paths([str(FIXTURES / "rl302" / "clean")], only=["RL302"])
        self.assertEqual([f.render() for f in run.findings], [])


class TestScoping(unittest.TestCase):
    """Scoped rules only fire inside their packages."""

    def test_wall_clock_outside_scope_is_not_flagged(self):
        run = _lint_one(FIXTURES / "scoped" / "outside.py", "RL101")
        self.assertEqual(run.files_scanned, 1)
        self.assertEqual([f.render() for f in run.findings], [])

    def test_same_pattern_inside_scope_is_flagged(self):
        run = _lint_one(FIXTURES / "rl101" / "sim" / "flagged.py", "RL101")
        self.assertTrue(run.findings)

    def test_rl105_exempts_the_sim_package(self):
        """heapq is legal in repro.sim itself — the seam's home."""
        run = _lint_one(FIXTURES / "rl105" / "sim" / "exempt.py", "RL105")
        self.assertEqual(run.files_scanned, 1)
        self.assertEqual([f.render() for f in run.findings], [])


class TestDeterminism(unittest.TestCase):
    """The linter meets its own bar: identical output across runs."""

    def test_repeated_runs_are_identical(self):
        first = lint_paths([str(FIXTURES)])
        second = lint_paths([str(FIXTURES)])
        self.assertEqual(first.findings, second.findings)
        self.assertEqual(first.files_scanned, second.files_scanned)
        self.assertEqual(first.suppressed_count, second.suppressed_count)

    def test_findings_are_sorted(self):
        run = lint_paths([str(FIXTURES)])
        self.assertEqual(list(run.findings), sorted(run.findings))


if __name__ == "__main__":
    unittest.main()
