"""Unit tests for the metrics collector and series extraction."""

from __future__ import annotations

import pytest

from repro.consistency.base import FixedTTRPolicy
from repro.core.events import PollEvent
from repro.core.types import ObjectId
from repro.httpsim.network import Network
from repro.metrics.collector import (
    collect_mutual_synchrony,
    collect_mutual_temporal,
    collect_mutual_value,
    collect_temporal,
    collect_value,
    poll_times_of,
    synchrony_fetches_of,
    temporal_fetches_of,
    value_fetches_of,
)
from repro.metrics.series import (
    extra_polls_series,
    f_value_series,
    polls_per_bin,
    server_f_knots,
    ttr_knots_from_proxy_events,
    update_frequency_series,
    update_ratio_series,
)
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel
from repro.sim.tracing import EventLog
from repro.traces.model import trace_from_ticks, trace_from_times

X = ObjectId("x")
Y = ObjectId("y")


@pytest.fixture
def finished_run():
    kernel = Kernel()
    log = EventLog()
    server = OriginServer(event_log=log)
    proxy = ProxyCache(kernel, Network(kernel), event_log=log)
    trace_x = trace_from_times(X, [15.0, 35.0], end_time=100.0)
    trace_y = trace_from_ticks(
        Y, [(5.0, 1.0), (25.0, 2.0), (45.0, 3.0)], end_time=100.0
    )
    feed_traces(kernel, server, (trace_x, trace_y))
    proxy.register_object(X, server, FixedTTRPolicy(ttr=10.0))
    proxy.register_object(Y, server, FixedTTRPolicy(ttr=10.0))
    kernel.run(until=100.0)
    return proxy, trace_x, trace_y, log


class TestCollectors:
    def test_poll_times_of(self, finished_run):
        proxy, trace_x, _, _ = finished_run
        polls = poll_times_of(proxy, X)
        assert polls[0] == 0.0
        assert polls == sorted(polls)
        assert len(polls) == 11

    def test_temporal_fetches_carry_last_modified(self, finished_run):
        proxy, _, _, _ = finished_run
        fetches = temporal_fetches_of(proxy, X)
        # After t=40 every fetch reports the t=35 update.
        assert fetches[-1][1] == 35.0

    def test_value_fetches_carry_values(self, finished_run):
        proxy, _, _, _ = finished_run
        fetches = value_fetches_of(proxy, Y)
        assert fetches[-1][1] == 3.0

    def test_synchrony_fetches_carry_modified_flags(self, finished_run):
        proxy, _, _, _ = finished_run
        fetches = synchrony_fetches_of(proxy, X)
        modified_times = [t for t, modified in fetches if modified]
        # Initial fetch at 0 is a 200 (modified), then updates at 15 and
        # 35 detected at polls 20 and 40.
        assert modified_times == [0.0, 20.0, 40.0]

    def test_collect_temporal_report(self, finished_run):
        proxy, trace_x, _, _ = finished_run
        report = collect_temporal(proxy, trace_x, delta=10.0)
        assert report.object_id == X
        assert report.polls == 11
        assert report.report.violations == 0

    def test_collect_value_report(self, finished_run):
        proxy, _, trace_y, _ = finished_run
        report = collect_value(proxy, trace_y, delta=1.5)
        assert report.object_id == Y
        assert 0.0 <= report.report.fidelity_by_violations <= 1.0

    def test_collect_mutual_temporal_report(self, finished_run):
        proxy, trace_x, trace_y, _ = finished_run
        pair = collect_mutual_temporal(proxy, trace_x, trace_y, delta=10.0)
        assert pair.total_polls == pair.polls_a + pair.polls_b
        assert pair.polls_a == 11

    def test_collect_mutual_synchrony_report(self, finished_run):
        proxy, _, _, _ = finished_run
        pair = collect_mutual_synchrony(proxy, X, Y, delta=10.0)
        # Both objects polled in lockstep → detections always have a
        # partner poll at the same instant.
        assert pair.report.violations == 0

    def test_collect_mutual_value_report(self, finished_run):
        proxy, trace_x, trace_y, _ = finished_run
        # Mutual value needs two valued traces; reuse y against itself
        # shifted — simplest: y against y gives f identically 0.
        pair = collect_mutual_value(proxy, trace_y, trace_y, delta=1.0)
        assert pair.report.violations == 0


class TestSeries:
    def test_update_frequency_series(self, finished_run):
        _, trace_x, _, _ = finished_run
        series = update_frequency_series(trace_x, bin_width=50.0)
        assert series.values == (2.0, 0.0)

    def test_ttr_knots_from_events(self, finished_run):
        proxy, _, _, log = finished_run
        events = log.of_type(PollEvent)
        knots = ttr_knots_from_proxy_events(events, X)
        assert knots
        assert all(ttr == 10.0 for _, ttr in knots)

    def test_update_ratio_series(self, finished_run):
        _, trace_x, trace_y, _ = finished_run
        series = update_ratio_series(trace_x, trace_y, bin_width=50.0)
        # x: 2 updates in [0,50); y: 3 updates → ratio 2/3.
        assert series.values[0] == pytest.approx(2 / 3)

    def test_polls_per_bin(self, finished_run):
        proxy, _, _, _ = finished_run
        series = polls_per_bin(proxy, X, start=0.0, end=100.0, bin_width=50.0)
        assert sum(series.values) == 10.0  # initial + 9 polls before 100

    def test_server_f_knots_difference(self, finished_run):
        _, _, trace_y, _ = finished_run
        knots = server_f_knots(trace_y, trace_y, lambda a, b: a - b)
        # y against itself: f constantly 0 → single knot.
        assert [v for _, v in knots] == [0.0]

    def test_f_value_series_sampling(self):
        knots = [(0.0, 1.0), (50.0, 2.0)]
        series = f_value_series(
            knots, start=0.0, end=100.0, bin_width=25.0, label="f"
        )
        assert series.values == (1.0, 1.0, 2.0, 2.0)

    def test_extra_polls_series_counts_triggered_only(self):
        from repro.consistency.mutual_temporal import TriggerDecision

        decisions = [
            TriggerDecision(10.0, X, Y, True, "triggered"),
            TriggerDecision(20.0, X, Y, False, "recent_poll"),
            TriggerDecision(60.0, X, Y, True, "triggered"),
        ]
        series = extra_polls_series(
            decisions, start=0.0, end=100.0, bin_width=50.0
        )
        assert series.values == (1.0, 1.0)
