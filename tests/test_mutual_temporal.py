"""Unit tests for the mutual temporal consistency coordinator (§3.2)."""

from __future__ import annotations

import pytest

from repro.consistency.base import FixedTTRPolicy
from repro.consistency.mutual_temporal import (
    MutualTemporalCoordinator,
    MutualTemporalMode,
    make_mutual_temporal_coordinator,
)
from repro.core.events import PollReason
from repro.core.types import ObjectId
from repro.groups.registry import GroupRegistry
from repro.httpsim.network import Network
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_times

A = ObjectId("a")
B = ObjectId("b")


def build_pair(
    *,
    mode=MutualTemporalMode.TRIGGERED,
    mutual_delta=5.0,
    updates_a=(),
    updates_b=(),
    ttr_a=10.0,
    ttr_b=10.0,
    horizon=200.0,
    rate_ratio_threshold=0.8,
):
    kernel = Kernel()
    server = OriginServer()
    proxy = ProxyCache(kernel, Network(kernel))
    if updates_a:
        UpdateFeeder(kernel, server, trace_from_times(A, updates_a, end_time=horizon))
    else:
        server.create_object(A, created_at=0.0)
    if updates_b:
        UpdateFeeder(kernel, server, trace_from_times(B, updates_b, end_time=horizon))
    else:
        server.create_object(B, created_at=0.0)
    groups = GroupRegistry()
    groups.create_group("pair", (A, B), mutual_delta)
    coordinator = MutualTemporalCoordinator(
        proxy, groups, mode=mode, rate_ratio_threshold=rate_ratio_threshold
    )
    proxy.register_object(A, server, FixedTTRPolicy(ttr=ttr_a))
    proxy.register_object(B, server, FixedTTRPolicy(ttr=ttr_b))
    return kernel, proxy, coordinator


class TestTriggeredMode:
    def test_update_triggers_partner_poll(self):
        # a updates at t=15; a polls every 10s, b every 100s (so b's
        # next/prev polls are far from a's detection at t=20).
        kernel, proxy, coordinator = build_pair(
            updates_a=(15.0,), ttr_a=10.0, ttr_b=100.0
        )
        kernel.run(until=30.0)
        b_polls = [r.time for r in proxy.entry_for(B).fetch_log]
        assert 20.0 in b_polls  # triggered at a's detection instant
        assert coordinator.extra_polls == 1

    def test_no_trigger_without_update(self):
        kernel, proxy, coordinator = build_pair()
        kernel.run(until=100.0)
        assert coordinator.extra_polls == 0

    def test_recent_partner_poll_suppresses(self):
        # b polls every 10s too: when a detects its update at t=20, b
        # was also polled at t=20 (same instant, distance 0 <= delta).
        kernel, proxy, coordinator = build_pair(
            updates_a=(15.0,), ttr_a=10.0, ttr_b=10.0, mutual_delta=5.0
        )
        kernel.run(until=30.0)
        assert coordinator.extra_polls == 0
        reasons = [d.reason for d in coordinator.decisions]
        assert "recent_poll" in reasons

    def test_upcoming_partner_poll_suppresses(self):
        # b polls every 23s → at a's detection t=20, b's next poll is 23
        # (3s away, within delta=5) → suppressed.
        kernel, proxy, coordinator = build_pair(
            updates_a=(15.0,), ttr_a=10.0, ttr_b=23.0, mutual_delta=5.0
        )
        kernel.run(until=22.0)
        decisions = [d for d in coordinator.decisions if d.time == 20.0]
        assert len(decisions) == 1
        assert decisions[0].reason == "upcoming_poll"
        assert coordinator.extra_polls == 0

    def test_additional_polls_do_not_shift_schedule(self):
        kernel, proxy, coordinator = build_pair(
            updates_a=(15.0,), ttr_a=10.0, ttr_b=100.0
        )
        kernel.run(until=110.0)
        b_polls = [r.time for r in proxy.entry_for(B).fetch_log]
        # Initial at 0, trigger at 20, scheduled at 100 — untouched.
        assert b_polls == [0.0, 20.0, 100.0]

    def test_mutual_trigger_reason_recorded(self):
        kernel, proxy, coordinator = build_pair(
            updates_a=(15.0,), ttr_a=10.0, ttr_b=100.0
        )
        kernel.run(until=30.0)
        reasons = [r.reason for r in proxy.entry_for(B).fetch_log]
        assert PollReason.MUTUAL_TRIGGER in reasons

    def test_no_trigger_cascade(self):
        """Both objects update; the triggered poll of b detects b's
        update but must not re-trigger a at the same instant."""
        kernel, proxy, coordinator = build_pair(
            updates_a=(15.0,), updates_b=(16.0,), ttr_a=10.0, ttr_b=100.0
        )
        kernel.run(until=30.0)
        a_polls = [r.time for r in proxy.entry_for(A).fetch_log]
        # a polls: 0, 10, 20 — no extra triggered poll of a at 20.
        assert a_polls.count(20.0) == 1


class TestNoneMode:
    def test_never_triggers(self):
        kernel, proxy, coordinator = build_pair(
            mode=MutualTemporalMode.NONE,
            updates_a=(15.0,), ttr_a=10.0, ttr_b=100.0,
        )
        kernel.run(until=60.0)
        assert coordinator.extra_polls == 0
        assert coordinator.decisions == []


class TestHeuristicMode:
    def test_slower_partner_not_polled(self):
        # a updates often (fast), b rarely (slow): an update to a must
        # NOT trigger polls of the slower b.
        kernel, proxy, coordinator = build_pair(
            mode=MutualTemporalMode.HEURISTIC,
            updates_a=tuple(float(t) for t in range(5, 200, 7)),
            updates_b=(50.0,),
            ttr_a=5.0,
            ttr_b=60.0,
            horizon=400.0,
        )
        kernel.run(until=300.0)
        slower = [d for d in coordinator.decisions if d.reason == "slower_rate"]
        assert slower, "expected at least one slower-rate suppression"
        assert all(d.target == B for d in slower)

    def test_faster_partner_polled(self):
        # b updates fast; when slow a updates (detected at a's poll at
        # t=120, away from b's polls at 90/135), fast b IS polled.
        kernel, proxy, coordinator = build_pair(
            mode=MutualTemporalMode.HEURISTIC,
            updates_a=(100.0,),
            updates_b=tuple(float(t) for t in range(5, 200, 7)),
            ttr_a=30.0,
            ttr_b=45.0,
            horizon=400.0,
        )
        kernel.run(until=300.0)
        triggered_to_b = [
            d for d in coordinator.decisions if d.triggered and d.target == B
        ]
        assert triggered_to_b

    def test_unknown_rates_qualify(self):
        """Before any rate data exists, the heuristic must not suppress."""
        kernel, proxy, coordinator = build_pair(
            mode=MutualTemporalMode.HEURISTIC,
            updates_a=(15.0,),
            ttr_a=10.0,
            ttr_b=100.0,
        )
        kernel.run(until=30.0)
        assert coordinator.extra_polls == 1

    def test_rate_estimates_exposed(self):
        # a updates every 10 s throughout the run, so the estimate is
        # queried while the object is still active (no silence decay).
        kernel, proxy, coordinator = build_pair(
            mode=MutualTemporalMode.HEURISTIC,
            updates_a=tuple(float(t) for t in range(5, 300, 10)),
            ttr_a=5.0,
            ttr_b=50.0,
            horizon=400.0,
        )
        kernel.run(until=150.0)
        rate = coordinator.rate_of(A)
        assert rate is not None
        assert rate == pytest.approx(0.1, rel=0.5)


class TestConstruction:
    def test_make_from_string(self):
        kernel = Kernel()
        proxy = ProxyCache(kernel, Network(kernel))
        groups = GroupRegistry()
        coordinator = make_mutual_temporal_coordinator(proxy, groups, "heuristic")
        assert coordinator.mode is MutualTemporalMode.HEURISTIC

    def test_invalid_threshold_rejected(self):
        kernel = Kernel()
        proxy = ProxyCache(kernel, Network(kernel))
        with pytest.raises(ValueError):
            MutualTemporalCoordinator(
                proxy, GroupRegistry(), rate_ratio_threshold=0.0
            )

    def test_three_member_group_triggers_all_partners(self):
        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        c_id = ObjectId("c")
        UpdateFeeder(
            kernel, server, trace_from_times(A, [15.0], end_time=100.0)
        )
        server.create_object(B, created_at=0.0)
        server.create_object(c_id, created_at=0.0)
        groups = GroupRegistry()
        groups.create_group("trio", (A, B, c_id), 2.0)
        coordinator = MutualTemporalCoordinator(proxy, groups)
        proxy.register_object(A, server, FixedTTRPolicy(ttr=10.0))
        proxy.register_object(B, server, FixedTTRPolicy(ttr=100.0))
        proxy.register_object(c_id, server, FixedTTRPolicy(ttr=100.0))
        kernel.run(until=30.0)
        assert coordinator.extra_polls == 2
