"""SimulationConfig round-trip and rejection tests (incl. hypothesis)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import (
    LevelConfig,
    NetworkConfig,
    PolicyConfig,
    SimulationConfig,
    SimulationConfigError,
    TopologyConfig,
    WorkloadConfig,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=12
)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=16),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(_names, children, max_size=3),
    ),
    max_leaves=8,
)
_params = st.dictionaries(_names, _json_values, max_size=4)

_workloads = st.builds(
    WorkloadConfig,
    source=_names,
    objects=st.lists(_names, min_size=1, max_size=4).map(tuple),
    params=_params,
)
_policies = st.builds(PolicyConfig, name=_names, params=_params)
_networks = st.floats(
    min_value=0.0, max_value=600.0, allow_nan=False, width=64
).flatmap(
    lambda one_way: st.builds(
        NetworkConfig,
        one_way_latency_s=st.just(one_way),
        jitter_s=st.floats(
            min_value=0.0, max_value=one_way, allow_nan=False, width=64
        ),
    )
)
_pull_levels = st.builds(
    LevelConfig,
    fan_out=st.integers(min_value=1, max_value=8),
    mode=st.just("pull"),
    policy=st.one_of(st.none(), _policies),
    network=st.one_of(st.none(), _networks),
)
_push_levels = st.builds(
    LevelConfig,
    fan_out=st.integers(min_value=1, max_value=8),
    mode=st.just("push"),
    policy=st.none(),
    network=st.one_of(st.none(), _networks),
)
_topologies = st.one_of(
    st.builds(
        TopologyConfig,
        kind=st.sampled_from(("single", "hierarchy")),
        edge_count=st.integers(min_value=1, max_value=64),
    ),
    st.builds(
        TopologyConfig,
        kind=st.just("tree"),
        # edge_count stays at its default: trees reject overrides.
        levels=st.lists(
            st.one_of(_pull_levels, _push_levels), min_size=1, max_size=3
        ).map(tuple),
    ),
)
_optional_durations = st.one_of(
    st.none(),
    st.floats(min_value=0.001, max_value=1e9, allow_nan=False, width=64),
)
_configs = st.builds(
    SimulationConfig,
    workload=_workloads,
    policy=_policies,
    topology=_topologies,
    network=_networks,
    seed=st.integers(min_value=-(10**12), max_value=10**12),
    horizon_s=_optional_durations,
    fidelity_delta_s=_optional_durations,
    supports_history=st.booleans(),
    want_history=st.booleans(),
    log_events=st.booleans(),
)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(config=_configs)
    def test_parse_serialize_parse_identity(self, config):
        parsed = SimulationConfig.from_json(config.to_json())
        assert parsed == config
        # And a second cycle is byte-stable (serialization normalised).
        assert parsed.to_json() == config.to_json()

    @settings(max_examples=100, deadline=None)
    @given(config=_configs)
    def test_to_dict_is_pure_json(self, config):
        encoded = json.dumps(config.to_dict())
        assert SimulationConfig.from_dict(json.loads(encoded)) == config

    def test_defaults_round_trip(self):
        config = SimulationConfig()
        assert SimulationConfig.from_json(config.to_json()) == config

    def test_list_params_survive_as_lists(self):
        config = SimulationConfig(
            policy=PolicyConfig(name="limd", params={"grid": [1, 2, 3]})
        )
        data = json.loads(config.to_json())
        assert data["policy"]["params"]["grid"] == [1, 2, 3]
        assert SimulationConfig.from_json(config.to_json()) == config

    def test_sub_configs_accept_nested_mappings(self):
        config = SimulationConfig.from_dict(
            {
                "workload": {"source": "news", "objects": ["cnn_fn"]},
                "policy": {"name": "baseline", "params": {"delta": 600.0}},
            }
        )
        assert isinstance(config.workload, WorkloadConfig)
        assert config.policy.params["delta"] == 600.0


# ----------------------------------------------------------------------
# Rejection
# ----------------------------------------------------------------------


class TestRejection:
    def test_unknown_top_level_field(self):
        data = SimulationConfig().to_dict()
        data["surprise"] = 1
        with pytest.raises(SimulationConfigError, match="surprise"):
            SimulationConfig.from_dict(data)

    @pytest.mark.parametrize(
        "section", ["workload", "policy", "topology", "network"]
    )
    def test_unknown_sub_config_field(self, section):
        data = SimulationConfig().to_dict()
        data[section]["surprise"] = 1
        with pytest.raises(SimulationConfigError, match="surprise"):
            SimulationConfig.from_dict(data)

    def test_bad_seed_type(self):
        with pytest.raises(SimulationConfigError, match="seed"):
            SimulationConfig(seed="tuesday")  # type: ignore[arg-type]

    def test_bool_is_not_an_int_seed(self):
        with pytest.raises(SimulationConfigError, match="seed"):
            SimulationConfig(seed=True)  # type: ignore[arg-type]

    def test_bad_objects_shape(self):
        with pytest.raises(SimulationConfigError, match="objects"):
            WorkloadConfig(objects="cnn_fn")  # type: ignore[arg-type]

    def test_empty_objects_rejected(self):
        with pytest.raises(SimulationConfigError, match="non-empty"):
            WorkloadConfig(objects=())

    def test_non_jsonable_param_rejected(self):
        with pytest.raises(SimulationConfigError, match="non-JSON"):
            PolicyConfig(name="limd", params={"fn": object()})

    def test_unknown_topology_kind(self):
        with pytest.raises(SimulationConfigError, match="kind"):
            TopologyConfig(kind="ring")

    def test_nonpositive_edge_count(self):
        with pytest.raises(SimulationConfigError, match="edge_count"):
            TopologyConfig(kind="hierarchy", edge_count=0)

    def test_tree_requires_levels(self):
        with pytest.raises(SimulationConfigError, match="levels"):
            TopologyConfig(kind="tree")

    def test_levels_rejected_outside_tree(self):
        with pytest.raises(SimulationConfigError, match="levels"):
            TopologyConfig(kind="single", levels=(LevelConfig(),))

    def test_edge_count_rejected_on_tree(self):
        # A tree's shape comes from levels; a customised edge_count
        # would be silently ignored, so it is rejected instead.
        with pytest.raises(SimulationConfigError, match="edge_count"):
            TopologyConfig(
                kind="tree", edge_count=8, levels=(LevelConfig(),)
            )

    def test_levels_must_be_a_sequence(self):
        with pytest.raises(SimulationConfigError, match="levels"):
            TopologyConfig(kind="tree", levels={"fan_out": 2})  # type: ignore[arg-type]

    def test_level_fan_out_validated(self):
        with pytest.raises(SimulationConfigError, match="fan_out"):
            LevelConfig(fan_out=0)

    def test_level_mode_validated(self):
        with pytest.raises(SimulationConfigError, match="mode"):
            LevelConfig(mode="gossip")

    def test_push_level_rejects_policy(self):
        with pytest.raises(SimulationConfigError, match="push"):
            LevelConfig(mode="push", policy=PolicyConfig(name="limd"))

    def test_level_accepts_nested_mappings(self):
        topology = TopologyConfig(
            kind="tree",
            levels=(
                {"fan_out": 1, "mode": "push"},  # type: ignore[arg-type]
                {
                    "fan_out": 4,
                    "policy": {"name": "baseline", "params": {"delta": 60.0}},
                    "network": {"one_way_latency_s": 0.05},
                },
            ),
        )
        assert isinstance(topology.levels[1].policy, PolicyConfig)
        assert isinstance(topology.levels[1].network, NetworkConfig)

    def test_unknown_level_field_rejected(self):
        with pytest.raises(SimulationConfigError, match="surprise"):
            TopologyConfig(
                kind="tree",
                levels=({"fan_out": 2, "surprise": 1},),  # type: ignore[arg-type]
            )

    def test_non_tree_serialization_keeps_two_field_shape(self):
        assert TopologyConfig().to_dict() == {"kind": "single", "edge_count": 4}

    def test_negative_latency(self):
        with pytest.raises(SimulationConfigError, match="one_way_latency_s"):
            NetworkConfig(one_way_latency_s=-1.0)

    def test_jitter_exceeding_latency(self):
        with pytest.raises(SimulationConfigError, match="jitter_s"):
            NetworkConfig(one_way_latency_s=1.0, jitter_s=2.0)

    def test_nonpositive_horizon(self):
        with pytest.raises(SimulationConfigError, match="horizon_s"):
            SimulationConfig(horizon_s=0.0)

    def test_bad_history_flag(self):
        with pytest.raises(SimulationConfigError, match="want_history"):
            SimulationConfig(want_history=1)  # type: ignore[arg-type]

    def test_invalid_json_text(self):
        with pytest.raises(SimulationConfigError, match="invalid config JSON"):
            SimulationConfig.from_json("{nope")

    def test_missing_required_sub_field(self):
        with pytest.raises(SimulationConfigError, match="mapping"):
            SimulationConfig.from_dict({"workload": "news"})
