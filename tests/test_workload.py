"""Unit tests for workload generation: arrivals, popularity, streams."""

from __future__ import annotations


import pytest

from repro.consistency.base import FixedTTRPolicy
from repro.core.types import ObjectId
from repro.httpsim.network import Network
from repro.proxy.client import Client
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.sim.kernel import Kernel
from repro.workload.arrivals import PoissonArrivals, RegularArrivals
from repro.workload.popularity import (
    RotatingPopularity,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workload.requests import RequestStream, RequestStreamConfig


class TestArrivals:
    def test_poisson_mean_rate(self, rng):
        arrivals = PoissonArrivals(rate_per_second=2.0, rng=rng)
        gaps = [arrivals.next_gap() for _ in range(5000)]
        assert sum(gaps) / len(gaps) == pytest.approx(0.5, rel=0.1)

    def test_poisson_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_per_second=0.0, rng=rng)

    def test_regular_fixed_interval(self):
        arrivals = RegularArrivals(interval=3.0)
        assert [arrivals.next_gap() for _ in range(3)] == [3.0, 3.0, 3.0]

    def test_regular_with_jitter_stays_in_band(self, rng):
        arrivals = RegularArrivals(interval=3.0, jitter=1.0, rng=rng)
        for _ in range(200):
            gap = arrivals.next_gap()
            assert 2.0 <= gap <= 4.0

    def test_regular_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            RegularArrivals(interval=3.0, jitter=1.0)

    def test_jitter_must_be_smaller_than_interval(self, rng):
        with pytest.raises(ValueError):
            RegularArrivals(interval=1.0, jitter=1.0, rng=rng)

    def test_arrival_times_bounded(self, rng):
        arrivals = RegularArrivals(interval=10.0)
        times = list(arrivals.arrival_times(0.0, 35.0))
        assert times == [10.0, 20.0, 30.0]


class TestPopularity:
    def _objects(self, n):
        return [ObjectId(f"o{i}") for i in range(n)]

    def test_uniform_covers_all_objects(self, rng):
        objects = self._objects(5)
        model = UniformPopularity(objects, rng)
        seen = {model.choose() for _ in range(500)}
        assert seen == set(objects)

    def test_zipf_rank_ordering(self, rng):
        objects = self._objects(10)
        model = ZipfPopularity(objects, exponent=1.0, rng=rng)
        counts = {o: 0 for o in objects}
        for _ in range(20000):
            counts[model.choose()] += 1
        assert counts[objects[0]] > counts[objects[4]] > counts[objects[9]]

    def test_zipf_probability_of(self, rng):
        objects = self._objects(2)
        model = ZipfPopularity(objects, exponent=1.0, rng=rng)
        # Weights 1 and 0.5 → probabilities 2/3, 1/3.
        assert model.probability_of(objects[0]) == pytest.approx(2 / 3)
        assert model.probability_of(objects[1]) == pytest.approx(1 / 3)

    def test_zipf_zero_exponent_is_uniform(self, rng):
        objects = self._objects(4)
        model = ZipfPopularity(objects, exponent=0.0, rng=rng)
        for obj in objects:
            assert model.probability_of(obj) == pytest.approx(0.25)

    def test_rotating_cycles(self):
        objects = self._objects(3)
        model = RotatingPopularity(objects)
        assert [model.choose() for _ in range(4)] == [
            objects[0], objects[1], objects[2], objects[0]
        ]

    def test_empty_objects_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformPopularity([], rng)
        with pytest.raises(ValueError):
            ZipfPopularity([], 1.0, rng)
        with pytest.raises(ValueError):
            RotatingPopularity([])


class TestRequestStream:
    def _stack(self):
        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        for name in ("x", "y"):
            server.create_object(ObjectId(name), created_at=0.0)
            proxy.register_object(
                ObjectId(name), server, FixedTTRPolicy(ttr=1000.0)
            )
        client = Client(kernel, proxy)
        return kernel, client

    def test_stream_issues_requests_until_end(self):
        kernel, client = self._stack()
        stream = RequestStream(
            kernel,
            client,
            RegularArrivals(interval=10.0),
            RotatingPopularity([ObjectId("x"), ObjectId("y")]),
            RequestStreamConfig(start=0.0, end=55.0),
        )
        # The refresher timers re-arm forever; bound the horizon.
        kernel.run(until=60.0)
        assert stream.issued_count == 5
        assert client.counters.get("requests") == 5

    def test_all_requests_hit_warm_cache(self):
        kernel, client = self._stack()
        RequestStream(
            kernel,
            client,
            RegularArrivals(interval=5.0),
            RotatingPopularity([ObjectId("x"), ObjectId("y")]),
            RequestStreamConfig(start=0.0, end=100.0),
        )
        kernel.run(until=100.0)
        assert client.hit_ratio == 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RequestStreamConfig(start=10.0, end=10.0)
