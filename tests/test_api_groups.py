"""GroupsConfig threading: config → registry → coordinators → rows."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RESULT_COLUMNS,
    GroupConfig,
    GroupsConfig,
    SimulationBuilder,
    SimulationConfig,
    SimulationConfigError,
    run_simulation,
)
from repro.api.workloads import resolve_workload
from repro.api.config import WorkloadConfig
from repro.traces.clf import generate_synthetic_log, serialize_log

_DELTA = 120.0


def _poisson_workload() -> dict:
    return {
        "source": "poisson",
        "objects": ["a", "b", "c"],
        "params": {"rate_per_hour": 12.0, "hours": 4.0},
    }


def _groups_section() -> dict:
    return {
        "groups": [
            {"group_id": "pair", "members": ["a", "b"], "mutual_delta": _DELTA}
        ],
        "edges": [["b", "c"]],
        "component_delta": _DELTA,
        "mode": "triggered",
        "rate_ratio_threshold": 0.8,
    }


class TestGroupsConfig:
    def test_round_trip_through_json(self):
        config = SimulationConfig.from_dict(
            {
                "workload": _poisson_workload(),
                "policy": {"name": "limd", "params": {"delta": _DELTA}},
                "groups": _groups_section(),
            }
        )
        encoded = json.dumps(config.to_dict())
        assert SimulationConfig.from_dict(json.loads(encoded)) == config

    def test_default_groups_omitted_from_dict(self):
        # Pre-groups configs keep their historical serialized shape.
        assert "groups" not in SimulationConfig().to_dict()
        assert not SimulationConfig().groups.enabled

    def test_duplicate_group_ids_rejected(self):
        with pytest.raises(SimulationConfigError, match="duplicate group id"):
            GroupsConfig(
                groups=(
                    GroupConfig("g", ("a", "b"), 1.0),
                    GroupConfig("g", ("c", "d"), 1.0),
                )
            )

    def test_single_member_group_rejected(self):
        with pytest.raises(SimulationConfigError, match="members"):
            GroupConfig("g", ("a",), 1.0)

    def test_self_loop_edge_rejected(self):
        with pytest.raises(SimulationConfigError, match="itself"):
            GroupsConfig(edges=(("a", "a"),))

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationConfigError, match="mode"):
            GroupsConfig(mode="psychic")

    def test_groups_require_unsharded_runs(self):
        with pytest.raises(SimulationConfigError, match="shard"):
            SimulationConfig.from_dict(
                {
                    "workload": _poisson_workload(),
                    "groups": _groups_section(),
                    "topology": {
                        "kind": "tree",
                        "levels": [{"fan_out": 1}, {"fan_out": 4}],
                    },
                    "shards": 2,
                }
            )

    def test_groups_require_exact_fidelity(self):
        with pytest.raises(SimulationConfigError, match="exact"):
            SimulationConfig.from_dict(
                {
                    "workload": _poisson_workload(),
                    "groups": _groups_section(),
                    "fidelity": "fastforward",
                }
            )


class TestGroupsExecution:
    def test_group_columns_declared(self):
        for column in (
            "group",
            "group_polls",
            "group_violations",
            "group_fidelity_by_violations",
            "group_fidelity_by_time",
        ):
            assert column in RESULT_COLUMNS

    def test_tree_run_emits_group_rows_per_node(self):
        outcome = run_simulation(
            SimulationConfig.from_dict(
                {
                    "workload": _poisson_workload(),
                    "policy": {"name": "limd", "params": {"delta": _DELTA}},
                    "topology": {
                        "kind": "tree",
                        "levels": [{"fan_out": 1}, {"fan_out": 2}],
                    },
                    "groups": _groups_section(),
                    "seed": 11,
                }
            )
        )
        group_rows = [
            row
            for row in outcome.results.to_records()
            if row.get("group") is not None
        ]
        # Explicit "pair" plus the b-c edge component, on all 3 nodes.
        assert len(group_rows) == 6
        assert {row["group"] for row in group_rows} == {"pair", "component-0"}
        assert {row["node"] for row in group_rows} == {
            "L0.N0",
            "L1.N0",
            "L1.N1",
        }
        for row in group_rows:
            assert row["group_polls"] >= 0
            assert 0.0 <= row["group_fidelity_by_time"] <= 1.0
            assert row.get("object") is None

    def test_builder_groups_fluent_path(self):
        outcome = (
            SimulationBuilder()
            .workload("poisson", "a", "b", rate_per_hour=12.0, hours=4.0)
            .policy("limd", delta=_DELTA)
            .groups([GroupConfig("pair", ("a", "b"), _DELTA)])
            .seed(3)
            .run()
        )
        groups = [
            row["group"]
            for row in outcome.results.to_records()
            if row.get("group") is not None
        ]
        assert groups == ["pair"]

    def test_unknown_member_rejected_at_run(self):
        config = SimulationConfig.from_dict(
            {
                "workload": _poisson_workload(),
                "groups": {
                    "groups": [
                        {
                            "group_id": "g",
                            "members": ["a", "ghost"],
                            "mutual_delta": _DELTA,
                        }
                    ]
                },
            }
        )
        with pytest.raises(SimulationConfigError, match="ghost"):
            run_simulation(config)


class TestTraceReplaySource:
    def _lines(self) -> list:
        return serialize_log(
            generate_synthetic_log(5, duration_s=1800.0)
        ).splitlines()

    def test_resolves_traces_in_object_order(self):
        config = WorkloadConfig(
            source="trace_replay",
            objects=("/news/front", "/index.html"),
            params={"lines": tuple(self._lines())},
        )
        traces = resolve_workload(config, seed=1)
        assert [str(t.object_id) for t in traces] == [
            "/news/front",
            "/index.html",
        ]
        assert all(t.start_time == 0.0 for t in traces)

    def test_needs_exactly_one_input(self):
        for params in ({}, {"path": "x.log", "lines": ()}):
            config = WorkloadConfig(
                source="trace_replay", objects=("/a",), params=params
            )
            with pytest.raises(SimulationConfigError, match="exactly one"):
                resolve_workload(config, seed=1)

    def test_unknown_param_rejected(self):
        config = WorkloadConfig(
            source="trace_replay",
            objects=("/a",),
            params={"lines": (), "speed": 2},
        )
        with pytest.raises(SimulationConfigError, match="speed"):
            resolve_workload(config, seed=1)

    def test_malformed_line_reported_with_line_number(self):
        config = WorkloadConfig(
            source="trace_replay",
            objects=("/a",),
            params={"lines": ("not a log line",)},
        )
        with pytest.raises(SimulationConfigError, match="line 1"):
            resolve_workload(config, seed=1)

    def test_missing_file_is_a_config_error(self):
        config = WorkloadConfig(
            source="trace_replay",
            objects=("/a",),
            params={"path": "/nonexistent/access.log"},
        )
        with pytest.raises(SimulationConfigError, match="cannot read"):
            resolve_workload(config, seed=1)

    def test_url_map_and_time_scale(self):
        config = WorkloadConfig(
            source="trace_replay",
            objects=("front",),
            params={
                "lines": tuple(self._lines()),
                "url_map": {"front": "/news/front"},
                "time_scale": 0.5,
            },
        )
        (trace,) = resolve_workload(config, seed=1)
        assert str(trace.object_id) == "front"
        full = resolve_workload(
            WorkloadConfig(
                source="trace_replay",
                objects=("/news/front",),
                params={"lines": tuple(self._lines())},
            ),
            seed=1,
        )[0]
        assert trace.end_time == pytest.approx(full.end_time * 0.5)
