"""Unit tests for mutual-consistency metrics (Eqs. 4-5 and the
operational poll-synchrony measure)."""

from __future__ import annotations

import math

import pytest

from repro.core.types import ObjectId
from repro.metrics.mutual import (
    interval_gap,
    mutual_poll_synchrony_fidelity,
    mutual_temporal_fidelity,
    mutual_value_fidelity,
    mutually_consistent_at,
    validity_interval,
)
from repro.traces.model import trace_from_ticks, trace_from_times


def t_trace(oid, times, end=1000.0):
    return trace_from_times(ObjectId(oid), times, start_time=0.0, end_time=end)


class TestValidityInterval:
    def test_interval_ends_at_next_update(self):
        trace = t_trace("a", [10.0, 50.0, 90.0])
        assert validity_interval(trace, 10.0) == (10.0, 50.0)

    def test_current_version_is_open_ended(self):
        trace = t_trace("a", [10.0, 50.0])
        start, end = validity_interval(trace, 50.0)
        assert start == 50.0
        assert math.isinf(end)


class TestIntervalGap:
    def test_overlapping_intervals_have_zero_gap(self):
        assert interval_gap((0.0, 10.0), (5.0, 15.0)) == 0.0

    def test_touching_intervals_have_zero_gap(self):
        assert interval_gap((0.0, 10.0), (10.0, 20.0)) == 0.0

    def test_disjoint_intervals_gap(self):
        assert interval_gap((0.0, 10.0), (25.0, 30.0)) == 15.0
        assert interval_gap((25.0, 30.0), (0.0, 10.0)) == 15.0

    def test_open_ended_interval(self):
        assert interval_gap((0.0, math.inf), (50.0, 60.0)) == 0.0


class TestMutuallyConsistentAt:
    def test_delta_zero_requires_coexistence(self):
        """δ=0: versions must have simultaneously existed (paper §2)."""
        trace_a = t_trace("a", [10.0, 50.0])
        trace_b = t_trace("b", [30.0, 70.0])
        # a@10 valid [10,50); b@30 valid [30,70): they overlap.
        assert mutually_consistent_at(trace_a, trace_b, 10.0, 30.0, 0.0)
        # a@10 valid [10,50); b@70 valid [70,inf): no overlap (gap 20).
        assert not mutually_consistent_at(trace_a, trace_b, 10.0, 70.0, 0.0)

    def test_delta_allows_bounded_gap(self):
        trace_a = t_trace("a", [10.0, 50.0])
        trace_b = t_trace("b", [70.0])
        assert mutually_consistent_at(trace_a, trace_b, 10.0, 70.0, 20.0)
        assert not mutually_consistent_at(trace_a, trace_b, 10.0, 70.0, 19.0)


class TestMutualTemporalFidelity:
    def test_synchronized_polls_are_consistent(self):
        trace_a = t_trace("a", [25.0], end=100.0)
        trace_b = t_trace("b", [25.0], end=100.0)
        fetches_a = [(0.0, 0.0), (30.0, 25.0), (60.0, 25.0)]
        fetches_b = [(0.0, 0.0), (30.0, 25.0), (60.0, 25.0)]
        report = mutual_temporal_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=0.0
        )
        assert report.violations == 0
        assert report.out_sync_time == 0.0

    def test_one_side_stale_is_violation(self):
        # a updates at 25 and is refreshed; b never refreshed after its
        # update at 20 → b's cached version (origin 0) stopped being
        # valid at 20, a's new version starts at 25: gap 5 > delta 2.
        trace_a = t_trace("a", [25.0], end=100.0)
        trace_b = t_trace("b", [20.0], end=100.0)
        fetches_a = [(0.0, 0.0), (30.0, 25.0)]
        fetches_b = [(0.0, 0.0)]
        report = mutual_temporal_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=2.0
        )
        assert report.violations == 1
        # Inconsistent from a's refresh at t=30 to the window end.
        assert report.out_sync_time == pytest.approx(70.0)

    def test_same_instant_fix_counts_no_violation(self):
        """A triggered poll at the same instant as the detection repairs
        consistency before it is observable — no violation."""
        trace_a = t_trace("a", [25.0], end=100.0)
        trace_b = t_trace("b", [20.0], end=100.0)
        fetches_a = [(0.0, 0.0), (30.0, 25.0)]
        fetches_b = [(0.0, 0.0), (30.0, 20.0)]  # triggered at same time
        report = mutual_temporal_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=2.0
        )
        assert report.violations == 0
        assert report.out_sync_time == 0.0

    def test_tolerant_delta_forgives(self):
        trace_a = t_trace("a", [25.0], end=100.0)
        trace_b = t_trace("b", [20.0], end=100.0)
        fetches_a = [(0.0, 0.0), (30.0, 25.0)]
        fetches_b = [(0.0, 0.0)]
        report = mutual_temporal_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=5.0
        )
        assert report.violations == 0

    def test_polls_counted_across_both_objects(self):
        trace_a = t_trace("a", [], end=100.0)
        trace_b = t_trace("b", [], end=100.0)
        report = mutual_temporal_fidelity(
            trace_a, trace_b, [(0.0, 0.0), (50.0, 0.0)], [(0.0, 0.0)], delta=1.0
        )
        assert report.polls == 3

    def test_negative_delta_rejected(self):
        trace_a = t_trace("a", [])
        trace_b = t_trace("b", [])
        with pytest.raises(ValueError):
            mutual_temporal_fidelity(trace_a, trace_b, [], [], delta=-1.0)


class TestPollSynchronyFidelity:
    def test_synchronized_detection_is_clean(self):
        fetches_a = [(0.0, False), (30.0, True)]
        fetches_b = [(0.0, False), (31.0, False)]
        report = mutual_poll_synchrony_fidelity(fetches_a, fetches_b, delta=2.0)
        assert report.violations == 0

    def test_detection_without_nearby_partner_poll_is_violation(self):
        fetches_a = [(0.0, False), (30.0, True)]
        fetches_b = [(0.0, False), (50.0, False)]
        report = mutual_poll_synchrony_fidelity(fetches_a, fetches_b, delta=2.0)
        assert report.violations == 1

    def test_unmodified_polls_never_violate(self):
        fetches_a = [(0.0, False), (30.0, False)]
        fetches_b = [(0.0, False)]
        report = mutual_poll_synchrony_fidelity(fetches_a, fetches_b, delta=0.0)
        assert report.violations == 0

    def test_future_partner_poll_within_delta_is_clean(self):
        fetches_a = [(30.0, True)]
        fetches_b = [(31.5, False)]
        report = mutual_poll_synchrony_fidelity(fetches_a, fetches_b, delta=2.0)
        assert report.violations == 0

    def test_polls_total_is_both_sides(self):
        report = mutual_poll_synchrony_fidelity(
            [(0.0, False)], [(1.0, False), (2.0, False)], delta=1.0
        )
        assert report.polls == 3

    def test_both_sides_checked(self):
        fetches_a = [(0.0, False)]
        fetches_b = [(30.0, True)]
        report = mutual_poll_synchrony_fidelity(fetches_a, fetches_b, delta=2.0)
        assert report.violations == 1


class TestMutualValueFidelity:
    def _traces(self):
        # a: steps 0→1→2 at 10/20; b constant 10.
        trace_a = trace_from_ticks(
            ObjectId("a"), [(10.0, 0.0), (20.0, 1.0), (30.0, 2.0)],
            start_time=0.0, end_time=100.0,
        )
        trace_b = trace_from_ticks(
            ObjectId("b"), [(10.0, 10.0)], start_time=0.0, end_time=100.0
        )
        return trace_a, trace_b

    def test_fresh_caches_are_consistent(self):
        trace_a, trace_b = self._traces()
        fetches_a = [(10.0, 0.0), (20.0, 1.0), (30.0, 2.0)]
        fetches_b = [(10.0, 10.0)]
        report = mutual_value_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=0.5
        )
        assert report.violations == 0
        assert report.out_sync_time == 0.0

    def test_stale_cache_violates(self):
        trace_a, trace_b = self._traces()
        # a cached at 10 (value 0) and never refreshed; by t=30 the true
        # difference moved by 2 >= delta 1.5.
        fetches_a = [(10.0, 0.0)]
        fetches_b = [(10.0, 10.0)]
        report = mutual_value_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=1.5
        )
        assert report.out_sync_time == pytest.approx(70.0)  # t=30..100

    def test_violation_charged_to_segment_poll(self):
        trace_a, trace_b = self._traces()
        fetches_a = [(10.0, 0.0), (50.0, 2.0)]
        fetches_b = [(10.0, 10.0)]
        report = mutual_value_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=1.5
        )
        # Segment starting at the t=10 group violates (from t=30).
        assert report.violations == 1

    def test_custom_f(self):
        trace_a, trace_b = self._traces()
        fetches_a = [(10.0, 0.0)]
        fetches_b = [(10.0, 10.0)]
        # f = sum; drift of a alone moves the sum by 2 by t=30.
        report = mutual_value_fidelity(
            trace_a, trace_b, fetches_a, fetches_b, delta=1.5,
            f=lambda x, y: x + y,
        )
        assert report.out_sync_time == pytest.approx(70.0)

    def test_invalid_delta_rejected(self):
        trace_a, trace_b = self._traces()
        with pytest.raises(ValueError):
            mutual_value_fidelity(trace_a, trace_b, [], [], delta=0.0)
