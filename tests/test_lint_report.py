"""Reporters and the committed baseline.

The JSON reporter's ``repro-lint/1`` schema is versioned and pinned
here: top-level key order, finding key order, and sort order are all
part of the contract (CI artifacts must diff cleanly run over run).
"""

import json
import tempfile
import unittest
from collections import Counter
from pathlib import Path

from repro.lint import (
    BASELINE_SCHEMA,
    REPORT_SCHEMA,
    BaselineError,
    Diagnostic,
    apply_baseline,
    lint_paths,
    load_baseline,
    render_baseline,
    render_json,
    render_text,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def _flagged_run():
    return lint_paths([str(FIXTURES / "rl101" / "sim" / "flagged.py")])


class TestJsonReport(unittest.TestCase):
    def test_schema_and_key_order_are_pinned(self):
        run = _flagged_run()
        match = apply_baseline(run.findings, Counter())
        payload = json.loads(render_json(run, match))
        self.assertEqual(
            list(payload),
            [
                "schema",
                "files_scanned",
                "findings",
                "suppressed",
                "baselined",
                "stale_baseline_entries",
            ],
        )
        self.assertEqual(payload["schema"], REPORT_SCHEMA)
        self.assertEqual(payload["files_scanned"], 1)
        self.assertEqual(payload["suppressed"], 0)
        self.assertEqual(payload["baselined"], 0)
        self.assertEqual(payload["stale_baseline_entries"], [])
        for finding in payload["findings"]:
            self.assertEqual(
                list(finding), ["path", "line", "col", "code", "message"]
            )

    def test_findings_are_sorted_by_location(self):
        run = _flagged_run()
        match = apply_baseline(run.findings, Counter())
        payload = json.loads(render_json(run, match))
        lines = [f["line"] for f in payload["findings"]]
        self.assertEqual(lines, sorted(lines))


class TestTextReport(unittest.TestCase):
    def test_one_line_per_finding_plus_summary(self):
        run = _flagged_run()
        match = apply_baseline(run.findings, Counter())
        lines = render_text(run, match).splitlines()
        self.assertEqual(len(lines), len(run.findings) + 1)
        for rendered, finding in zip(lines, run.findings):
            self.assertEqual(rendered, finding.render())
            self.assertIn(f"{finding.code} ", rendered)
        self.assertIn("2 findings, 1 file scanned", lines[-1])

    def test_clean_run_summary(self):
        run = lint_paths([str(FIXTURES / "rl101" / "sim" / "clean.py")])
        match = apply_baseline(run.findings, Counter())
        self.assertEqual(
            render_text(run, match), "0 findings, 1 file scanned"
        )


class TestBaseline(unittest.TestCase):
    def test_write_then_load_round_trips(self):
        run = _flagged_run()
        self.assertTrue(run.findings)
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = Path(tmp) / "baseline.json"
            write_baseline(baseline_path, run.findings)
            data = json.loads(baseline_path.read_text(encoding="utf-8"))
            self.assertEqual(data["schema"], BASELINE_SCHEMA)
            baseline = load_baseline(baseline_path)
        self.assertEqual(sum(baseline.values()), len(run.findings))
        match = apply_baseline(run.findings, baseline)
        self.assertEqual(match.new_findings, [])
        self.assertEqual(match.baselined_count, len(run.findings))
        self.assertEqual(match.stale_entries, [])

    def test_new_findings_survive_the_baseline(self):
        run = _flagged_run()
        first, *rest = list(run.findings)
        baseline = Counter(
            {(first.path, first.code, first.message): 1}
        )
        match = apply_baseline(run.findings, baseline)
        self.assertEqual(match.new_findings, rest)
        self.assertEqual(match.baselined_count, 1)

    def test_stale_entries_are_reported_not_fatal(self):
        baseline = Counter({("gone.py", "RL101", "old message"): 1})
        match = apply_baseline([], baseline)
        self.assertEqual(match.new_findings, [])
        self.assertEqual(match.baselined_count, 0)
        self.assertEqual(
            match.stale_entries,
            [{"path": "gone.py", "code": "RL101", "message": "old message"}],
        )

    def test_matching_ignores_line_numbers(self):
        finding = Diagnostic(
            path="a.py", line=10, col=0, code="RL101", message="m"
        )
        moved = Diagnostic(
            path="a.py", line=99, col=4, code="RL101", message="m"
        )
        baseline = Counter({("a.py", "RL101", "m"): 1})
        for diagnostic in (finding, moved):
            match = apply_baseline([diagnostic], baseline)
            self.assertEqual(match.new_findings, [])

    def test_matching_is_multiset_style(self):
        finding = Diagnostic(
            path="a.py", line=1, col=0, code="RL101", message="m"
        )
        twin = Diagnostic(
            path="a.py", line=2, col=0, code="RL101", message="m"
        )
        baseline = Counter({("a.py", "RL101", "m"): 1})
        match = apply_baseline([finding, twin], baseline)
        self.assertEqual(len(match.new_findings), 1)
        self.assertEqual(match.baselined_count, 1)

    def test_render_baseline_is_deterministic(self):
        run = _flagged_run()
        self.assertEqual(
            render_baseline(run.findings), render_baseline(run.findings)
        )
        self.assertTrue(render_baseline(run.findings).endswith("\n"))

    def test_committed_baseline_is_valid_and_empty(self):
        """The repo's own baseline holds zero grandfathered findings."""
        path = REPO_ROOT / ".repro-lint-baseline.json"
        self.assertTrue(path.is_file())
        baseline = load_baseline(path)
        self.assertEqual(sum(baseline.values()), 0)


class TestBaselineErrors(unittest.TestCase):
    def _load(self, text, tmp):
        path = Path(tmp) / "baseline.json"
        path.write_text(text, encoding="utf-8")
        return load_baseline(path)

    def test_malformed_json(self):
        with tempfile.TemporaryDirectory() as tmp:
            with self.assertRaises(BaselineError):
                self._load("{not json", tmp)

    def test_wrong_schema(self):
        with tempfile.TemporaryDirectory() as tmp:
            with self.assertRaises(BaselineError):
                self._load('{"schema": "other/9", "findings": []}', tmp)

    def test_missing_findings_list(self):
        with tempfile.TemporaryDirectory() as tmp:
            with self.assertRaises(BaselineError):
                self._load(f'{{"schema": "{BASELINE_SCHEMA}"}}', tmp)

    def test_entry_missing_key(self):
        entry = '{"path": "a.py", "code": "RL101"}'
        text = (
            f'{{"schema": "{BASELINE_SCHEMA}", "findings": [{entry}]}}'
        )
        with tempfile.TemporaryDirectory() as tmp:
            with self.assertRaises(BaselineError) as ctx:
                self._load(text, tmp)
        self.assertIn("message", str(ctx.exception))


if __name__ == "__main__":
    unittest.main()
