"""Unit tests for timers built on the kernel."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Kernel
from repro.sim.timers import PeriodicTimer, RestartableTimer


class TestRestartableTimer:
    def test_fires_once_at_armed_time(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        timer.arm_at(5.0)
        kernel.run()
        assert fired == [5.0]
        assert not timer.armed

    def test_arm_after_is_relative_to_now(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        kernel.schedule_at(3.0, lambda k: timer.arm_after(4.0))
        kernel.run()
        assert fired == [7.0]

    def test_rearm_replaces_pending_firing(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        timer.arm_at(5.0)
        timer.arm_at(9.0)
        kernel.run()
        assert fired == [9.0]

    def test_rearm_from_callback(self, kernel):
        fired = []

        def callback(now):
            fired.append(now)
            if now < 3.0:
                timer.arm_after(1.0)

        timer = RestartableTimer(kernel, callback)
        timer.arm_at(1.0)
        kernel.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_pull_in_moves_firing_earlier(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        timer.arm_at(10.0)
        assert timer.pull_in_to(4.0) is True
        kernel.run()
        assert fired == [4.0]

    def test_pull_in_never_delays(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        timer.arm_at(3.0)
        assert timer.pull_in_to(8.0) is False
        kernel.run()
        assert fired == [3.0]

    def test_pull_in_arms_unarmed_timer(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        assert timer.pull_in_to(2.0) is True
        kernel.run()
        assert fired == [2.0]

    def test_disarm_prevents_firing(self, kernel):
        fired = []
        timer = RestartableTimer(kernel, fired.append)
        timer.arm_at(5.0)
        timer.disarm()
        kernel.run()
        assert fired == []

    def test_disarm_when_unarmed_is_safe(self, kernel):
        timer = RestartableTimer(kernel, lambda now: None)
        timer.disarm()  # no exception

    def test_next_fire_time(self, kernel):
        timer = RestartableTimer(kernel, lambda now: None)
        assert timer.next_fire_time is None
        timer.arm_at(7.5)
        assert timer.next_fire_time == 7.5


class TestPeriodicTimer:
    def test_fires_every_period(self, kernel):
        fired = []
        PeriodicTimer(kernel, 2.0, fired.append)
        kernel.run(until=7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_fire_immediately_includes_time_zero(self, kernel):
        fired = []
        PeriodicTimer(kernel, 2.0, fired.append, fire_immediately=True)
        kernel.run(until=5.0)
        assert fired == [0.0, 2.0, 4.0]

    def test_stop_halts_firings(self, kernel):
        fired = []
        timer = PeriodicTimer(kernel, 1.0, fired.append)
        kernel.schedule_at(2.5, lambda k: timer.stop())
        kernel.run(until=10.0)
        assert fired == [1.0, 2.0]
        assert not timer.running

    def test_stop_after_bounds_firings(self, kernel):
        fired = []
        PeriodicTimer(kernel, 1.0, fired.append, stop_after=3.0)
        kernel.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_fire_count(self, kernel):
        timer = PeriodicTimer(kernel, 1.0, lambda now: None)
        kernel.run(until=4.5)
        assert timer.fire_count == 4

    def test_stop_from_callback(self, kernel):
        fired = []

        def callback(now):
            fired.append(now)
            if len(fired) == 2:
                timer.stop()

        timer = PeriodicTimer(kernel, 1.0, callback)
        kernel.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_non_positive_period_rejected(self, kernel):
        with pytest.raises(ValueError):
            PeriodicTimer(kernel, 0.0, lambda now: None)

    def test_baseline_poll_count_matches_paper_formula(self):
        """A Δ-periodic poller over duration D fires floor(D/Δ) times."""
        kernel = Kernel()
        fired = []
        PeriodicTimer(kernel, 60.0, fired.append)
        kernel.run(until=3600.0)
        assert len(fired) == 60
