"""Tests for n-object mutual value consistency: budgets and f history."""

from __future__ import annotations

import random

import pytest

from repro.consistency.base import FixedTTRPolicy
from repro.consistency.mutual_value import (
    GroupBudget,
    PartitionedGroupMvCoordinator,
    PartitionParameters,
    group_f_history,
    total_minus_parts,
)
from repro.core.types import ObjectId, TTRBounds
from repro.api.runs import run_individual, run_mutual_value_group
from repro.httpsim.network import Network
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_ticks
from repro.traces.sports import SportsMatchSpec, generate_match

A, B, C = ObjectId("a"), ObjectId("b"), ObjectId("c")


def _linear_traces(rates, *, end=300.0, step=10.0):
    traces = []
    for oid, rate in rates.items():
        ticks = [(5.0 + step * i, rate * i) for i in range(int(end // step) - 1)]
        traces.append(trace_from_ticks(oid, ticks, end_time=end))
    return traces


def _run_group(budget, *, delta=3.0, rates=None):
    rates = rates or {A: 0.5, B: 2.0, C: 8.0}
    traces = _linear_traces(rates)
    return run_mutual_value_group(
        traces,
        delta,
        bounds=TTRBounds(ttr_min=1.0, ttr_max=50.0),
        parameters=PartitionParameters(reapportion_interval=30.0),
        budget=budget,
        horizon=300.0,
    )


class TestGroupBudgets:
    def test_pairwise_budget_bounds_two_largest(self):
        result = _run_group(GroupBudget.PAIRWISE)
        group = result.partitioned_group
        assert group is not None
        assert group.counters.get("reapportionments") > 0
        assert group.max_pair_tolerance_sum() <= 3.0 * 1.05

    def test_sum_budget_bounds_full_sum(self):
        result = _run_group(GroupBudget.SUM)
        group = result.partitioned_group
        assert group is not None
        assert group.counters.get("reapportionments") > 0
        assert group.tolerance_sum() <= 3.0 * 1.05

    def test_sum_budget_is_stricter_in_aggregate(self):
        # With >2 members the pairwise budget only constrains the two
        # largest tolerances, so its full sum exceeds δ; the sum budget
        # pins the full sum at δ.  (Per-object comparison would be
        # noisy: the two runs poll differently and estimate different
        # rates.)
        pairwise = _run_group(GroupBudget.PAIRWISE).partitioned_group
        summed = _run_group(GroupBudget.SUM).partitioned_group
        assert pairwise is not None and summed is not None
        assert summed.tolerance_sum() <= pairwise.tolerance_sum() + 1e-9

    def test_sum_budget_initial_split_is_delta_over_n(self):
        kernel = Kernel()
        server = OriginServer()
        for trace in _linear_traces({A: 1.0, B: 1.0, C: 1.0}):
            UpdateFeeder(kernel, server, trace)
        proxy = ProxyCache(kernel, Network(kernel))
        coordinator = PartitionedGroupMvCoordinator(
            proxy,
            (A, B, C),
            3.0,
            bounds=TTRBounds(ttr_min=1.0, ttr_max=50.0),
            budget=GroupBudget.SUM,
        )
        coordinator.setup({oid: server for oid in (A, B, C)})
        assert coordinator.current_tolerances() == {A: 1.0, B: 1.0, C: 1.0}

    def test_budget_property_exposed(self):
        result = _run_group(GroupBudget.SUM)
        assert result.partitioned_group.budget is GroupBudget.SUM

    def test_slower_objects_get_larger_tolerance_in_both_budgets(self):
        for budget in (GroupBudget.PAIRWISE, GroupBudget.SUM):
            group = _run_group(budget).partitioned_group
            tolerances = group.current_tolerances()
            assert tolerances[A] > tolerances[B] > tolerances[C]

    def test_group_run_requires_two_traces(self):
        traces = _linear_traces({A: 1.0})
        with pytest.raises(ValueError):
            run_mutual_value_group(
                traces, 1.0, bounds=TTRBounds(ttr_min=1.0, ttr_max=50.0)
            )


class TestTotalMinusParts:
    def test_zero_for_consistent_values(self):
        assert total_minus_parts((2.0, 3.0, 5.0)) == 0.0

    def test_sign_of_skew(self):
        assert total_minus_parts((2.0, 3.0, 7.0)) == 2.0
        assert total_minus_parts((2.0, 3.0, 4.0)) == -1.0

    def test_pair_degenerates_to_difference(self):
        assert total_minus_parts((3.0, 10.0)) == 7.0


class TestGroupFHistory:
    def _stack_with_polled_values(self):
        """Three objects polled on fixed TTRs against linear servers."""
        traces = _linear_traces({A: 1.0, B: 2.0, C: 3.0})
        result = run_individual(
            traces, lambda _oid: FixedTTRPolicy(ttr=20.0), horizon=300.0
        )
        return result.proxy

    def test_knots_start_once_all_members_seen(self):
        proxy = self._stack_with_polled_values()
        knots = group_f_history(proxy, (A, B, C), total_minus_parts)
        assert knots, "expected at least one knot"
        # All three initial fetches happen at t=0, so f exists from t=0.
        assert knots[0][0] == pytest.approx(0.0)

    def test_knot_times_nondecreasing(self):
        proxy = self._stack_with_polled_values()
        knots = group_f_history(proxy, (A, B, C), total_minus_parts)
        times = [t for t, _f in knots]
        assert times == sorted(times)

    def test_matches_pairwise_reconstruction_for_pairs(self):
        from repro.consistency.mutual_value import difference, paired_f_history

        traces = _linear_traces({A: 1.0, B: 2.0})
        proxy = run_individual(
            traces, lambda _oid: FixedTTRPolicy(ttr=20.0), horizon=300.0
        ).proxy
        paired = paired_f_history(proxy, A, B, difference)
        grouped = group_f_history(proxy, (A, B), lambda v: v[0] - v[1])
        assert paired == grouped

    def test_missing_member_yields_no_knots(self):
        traces = _linear_traces({A: 1.0, B: 2.0})
        proxy = run_individual(
            traces, lambda _oid: FixedTTRPolicy(ttr=20.0), horizon=300.0
        ).proxy
        # C was never registered/polled: the combined view never forms.
        proxy.cache.get_or_create(C)
        knots = group_f_history(proxy, (A, B, C), total_minus_parts)
        assert knots == []


class TestSportsScoreboardIntegration:
    """End-to-end: the sum budget keeps a scoreboard nearly consistent."""

    def test_scoreboard_skew_stays_bounded_by_tolerance_sum(self):
        spec = SportsMatchSpec(scoring_events=120, duration=3600.0)
        match = generate_match(spec, random.Random(9))
        traces = [match.players[m] for m in match.players] + [match.total]
        members = tuple(t.object_id for t in traces)
        result = run_mutual_value_group(
            traces,
            6.0,
            bounds=TTRBounds(ttr_min=5.0, ttr_max=60.0),
            budget=GroupBudget.SUM,
            horizon=spec.duration,
        )
        knots = group_f_history(result.proxy, members, total_minus_parts)
        assert knots
        # The cached scoreboard must be exactly consistent at least part
        # of the time, and on average the skew stays in the same order
        # of magnitude as the tolerance (polling is best-effort between
        # bursts, so the *max* can exceed δ transiently).
        skews = [abs(f) for _, f in knots]
        assert min(skews) == 0.0
        assert sum(skews) / len(skews) < 12.0

    def test_total_polls_faster_than_any_player(self):
        spec = SportsMatchSpec(scoring_events=120, duration=3600.0)
        match = generate_match(spec, random.Random(9))
        traces = [match.players[m] for m in match.players] + [match.total]
        result = run_mutual_value_group(
            traces,
            6.0,
            bounds=TTRBounds(ttr_min=5.0, ttr_max=60.0),
            budget=GroupBudget.SUM,
            horizon=spec.duration,
        )
        total_polls = result.polls_of(match.total.object_id)
        for player in match.players:
            # The total changes on every event — it should be polled at
            # least as often as any single player.
            assert total_polls >= result.polls_of(player)
