"""Unit tests for the synthetic trace generators (Tables 2 and 3)."""

from __future__ import annotations

import random

import pytest

from repro.core.types import HOUR, MINUTE
from repro.traces.news import (
    CNN_FN,
    GUARDIAN,
    MIN_UPDATE_SPACING,
    NYT_AP,
    TABLE2_SPECS,
    DiurnalProfile,
    NewsTraceGenerator,
    NewsTraceSpec,
    generate_table2_traces,
)
from repro.traces.stocks import (
    ATT,
    MIN_TICK_SPACING,
    TABLE3_SPECS,
    YAHOO,
    StockTraceGenerator,
    StockTraceSpec,
    generate_table3_traces,
)


class TestDiurnalProfile:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="24"):
            DiurnalProfile(weights=(1.0,) * 23)

    def test_negative_weight_rejected(self):
        weights = [1.0] * 24
        weights[3] = -0.5
        with pytest.raises(ValueError):
            DiurnalProfile(weights=tuple(weights))

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            DiurnalProfile(weights=(0.0,) * 24)

    def test_weight_at_selects_hour(self):
        weights = [0.0] * 24
        weights[13] = 2.5
        profile = DiurnalProfile(weights=tuple(weights))
        assert profile.weight_at(13 * HOUR + 10) == 2.5
        assert profile.weight_at(14 * HOUR) == 0.0


class TestNewsGenerator:
    @pytest.mark.parametrize("spec", TABLE2_SPECS, ids=lambda s: s.name)
    def test_exact_update_count(self, spec, rng):
        trace = NewsTraceGenerator(rng).generate(spec)
        assert trace.update_count == spec.update_count

    @pytest.mark.parametrize("spec", TABLE2_SPECS, ids=lambda s: s.name)
    def test_window_matches_spec(self, spec, rng):
        trace = NewsTraceGenerator(rng).generate(spec)
        assert trace.start_time == 0.0
        assert trace.end_time == spec.duration

    def test_updates_strictly_increasing_with_min_spacing(self, rng):
        trace = NewsTraceGenerator(rng).generate(GUARDIAN)
        times = [r.time for r in trace.records]
        for a, b in zip(times, times[1:]):
            assert b - a >= MIN_UPDATE_SPACING - 1e-9

    def test_updates_inside_window(self, rng):
        trace = NewsTraceGenerator(rng).generate(CNN_FN)
        assert all(0.0 <= r.time < CNN_FN.duration for r in trace.records)

    def test_deterministic_for_same_seed(self):
        t1 = NewsTraceGenerator(random.Random(7)).generate(NYT_AP)
        t2 = NewsTraceGenerator(random.Random(7)).generate(NYT_AP)
        assert [r.time for r in t1.records] == [r.time for r in t2.records]

    def test_different_seeds_differ(self):
        t1 = NewsTraceGenerator(random.Random(1)).generate(NYT_AP)
        t2 = NewsTraceGenerator(random.Random(2)).generate(NYT_AP)
        assert [r.time for r in t1.records] != [r.time for r in t2.records]

    def test_quiet_hours_receive_no_mass(self, rng):
        """Hours with zero diurnal weight must contain (almost) no updates.

        Bursts can push an update slightly past an active-hour boundary,
        so we allow a small leak, not a hard zero.
        """
        spec = NewsTraceSpec(
            name="t", start_hour_of_day=0.0, duration=2 * 86400.0,
            update_count=400, burstiness=0.0,
        )
        trace = NewsTraceGenerator(rng).generate(spec)
        quiet = 0
        for record in trace.records:
            hour = int((record.time % 86400.0) // HOUR)
            if spec.profile.weights[hour] == 0.0:
                quiet += 1
        assert quiet <= 2

    def test_mean_interval_matches_table2_column(self, rng):
        trace = NewsTraceGenerator(rng).generate(CNN_FN)
        mean_interval_min = trace.duration / trace.update_count / MINUTE
        assert mean_interval_min == pytest.approx(26.0, abs=0.5)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            NewsTraceSpec(name="x", start_hour_of_day=25.0, duration=100.0, update_count=5)
        with pytest.raises(ValueError):
            NewsTraceSpec(name="x", start_hour_of_day=0.0, duration=-1.0, update_count=5)
        with pytest.raises(ValueError):
            NewsTraceSpec(name="x", start_hour_of_day=0.0, duration=100.0, update_count=0)
        with pytest.raises(ValueError):
            NewsTraceSpec(name="x", start_hour_of_day=0.0, duration=100.0, update_count=5, burstiness=1.0)

    def test_too_many_updates_for_window_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            NewsTraceSpec(
                name="x", start_hour_of_day=0.0, duration=10.0, update_count=50
            )

    def test_generate_table2_traces_keys(self, rngs):
        traces = generate_table2_traces(rngs)
        assert sorted(traces) == ["cnn_fn", "guardian", "nyt_ap", "nyt_reuters"]

    def test_generate_table2_counts(self, rngs):
        traces = generate_table2_traces(rngs)
        assert traces["cnn_fn"].update_count == 113
        assert traces["nyt_ap"].update_count == 233
        assert traces["nyt_reuters"].update_count == 133
        assert traces["guardian"].update_count == 902


class TestStockGenerator:
    @pytest.mark.parametrize("spec", TABLE3_SPECS, ids=lambda s: s.name)
    def test_exact_tick_count(self, spec, rng):
        trace = StockTraceGenerator(rng).generate(spec)
        assert trace.update_count == spec.tick_count

    @pytest.mark.parametrize("spec", TABLE3_SPECS, ids=lambda s: s.name)
    def test_value_range_matches_exactly(self, spec, rng):
        trace = StockTraceGenerator(rng).generate(spec)
        values = [r.value for r in trace.records]
        assert min(values) == pytest.approx(spec.min_value)
        assert max(values) == pytest.approx(spec.max_value)

    def test_tick_spacing_enforced(self, rng):
        trace = StockTraceGenerator(rng).generate(YAHOO)
        times = [r.time for r in trace.records]
        for a, b in zip(times, times[1:]):
            assert b - a >= MIN_TICK_SPACING - 1e-9

    def test_ticks_inside_window(self, rng):
        trace = StockTraceGenerator(rng).generate(ATT)
        assert all(0.0 <= r.time < ATT.duration for r in trace.records)

    def test_deterministic_for_same_seed(self):
        t1 = StockTraceGenerator(random.Random(3)).generate(ATT)
        t2 = StockTraceGenerator(random.Random(3)).generate(ATT)
        assert [(r.time, r.value) for r in t1.records] == [
            (r.time, r.value) for r in t2.records
        ]

    def test_all_records_have_values(self, rng):
        trace = StockTraceGenerator(rng).generate(YAHOO)
        assert trace.has_values

    def test_yahoo_changes_faster_than_att(self, rngs):
        """The Table 3 contrast: Yahoo must move more per unit time."""
        traces = generate_table3_traces(rngs)
        def mean_rate(trace):
            total = 0.0
            recs = trace.records
            for p, q in zip(recs, recs[1:]):
                total += abs(q.value - p.value)
            return total / trace.duration
        assert mean_rate(traces["yahoo"]) > 5 * mean_rate(traces["att"])

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            StockTraceSpec(name="x", duration=100.0, tick_count=1,
                           min_value=1.0, max_value=2.0)
        with pytest.raises(ValueError):
            StockTraceSpec(name="x", duration=100.0, tick_count=10,
                           min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError, match="fit"):
            StockTraceSpec(name="x", duration=1.0, tick_count=100,
                           min_value=1.0, max_value=2.0)

    def test_generate_table3_traces_keys(self, rngs):
        traces = generate_table3_traces(rngs)
        assert sorted(traces) == ["att", "yahoo"]
