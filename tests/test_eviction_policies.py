"""Cross-policy eviction battery plus eviction × consistency properties.

Modeled on the theine/caffeine style of cache testing: one parametrized
battery drives every registered eviction policy (``lru``, ``lfu``,
``tinylfu``, ``clockpro``) through the same bounded-Zipf workload and
asserts the invariants the proxy depends on — the capacity bound, the
bookkeeping identities, the never-evict-the-just-inserted-key rule, and
bit-for-bit determinism.  Policy-specific sections pin the LFU
insertion-order tie-break (regression for the old accidental recency
tie-break) and TinyLFU's admission advantage on skewed workloads.

Hypothesis sections cover the eviction × consistency bridge: an
evict→refetch cycle must reset the poll history (the refetched entry
starts with an empty fetch log) and :func:`collect_eviction_impact`
must flag exactly the absence windows whose origin updates went
unserved for longer than Δ.  The TTL-class registry's ops-table lookup
contract (declared TTL for known classes, default for unknown/empty,
never a KeyError) is pinned the same way.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CacheConfigurationError
from repro.core.events import PollReason
from repro.core.types import ObjectId, ObjectSnapshot, Seconds
from repro.metrics.collector import collect_eviction_impact
from repro.proxy.cache import ObjectCache
from repro.proxy.entry import CacheEntry
from repro.proxy.eviction import EVICTION_POLICIES, build_eviction_policy
from repro.proxy.ttl_registry import TTLClassRegistry
from repro.traces.model import trace_from_times

POLICIES = ("lru", "lfu", "tinylfu", "clockpro")


def zipf_stream(
    *, keys: int, ops: int, exponent: float, seed: int
) -> List[str]:
    """A deterministic Zipf-distributed key stream."""
    rng = random.Random(seed)
    population = [f"k{i}" for i in range(keys)]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(keys)]
    return rng.choices(population, weights=weights, k=ops)


def drive(
    cache: ObjectCache, stream: List[str]
) -> Tuple[int, List[Optional[ObjectId]]]:
    """Replay a key stream against a cache: get, insert on miss.

    Returns the hit count and the per-insert victim sequence (``None``
    when an insert fit without eviction).
    """
    hits = 0
    victims: List[Optional[ObjectId]] = []
    for key in stream:
        object_id = ObjectId(key)
        if cache.get(object_id) is not None:
            hits += 1
            continue
        evicted = cache.put(CacheEntry(object_id))
        victims.append(evicted.object_id if evicted is not None else None)
    return hits, victims


class TestRegistry:
    def test_all_four_policies_registered(self):
        for name in POLICIES:
            assert name in EVICTION_POLICIES

    def test_build_rejects_nonpositive_capacity(self):
        with pytest.raises(CacheConfigurationError):
            build_eviction_policy("lru", 0)

    def test_build_rejects_unknown_name(self):
        with pytest.raises(CacheConfigurationError):
            build_eviction_policy("fifo", 4)


@pytest.mark.parametrize("policy", POLICIES)
class TestCrossPolicyBattery:
    """Every policy, same bounded-Zipf workload, same invariants."""

    CAPACITY = 8
    STREAM = dict(keys=64, ops=2000, exponent=1.1, seed=99)

    def test_capacity_never_exceeded(self, policy):
        cache = ObjectCache(capacity=self.CAPACITY, eviction=policy)
        for key in zipf_stream(**self.STREAM):
            object_id = ObjectId(key)
            if cache.get(object_id) is None:
                cache.put(CacheEntry(object_id))
            assert len(cache) <= self.CAPACITY

    def test_eviction_bookkeeping_identities(self, policy):
        cache = ObjectCache(capacity=self.CAPACITY, eviction=policy)
        _, victims = drive(cache, zipf_stream(**self.STREAM))
        evictions = [v for v in victims if v is not None]
        inserts = len(victims)
        assert cache.eviction_count == len(evictions)
        assert len(cache.eviction_windows) == len(evictions)
        assert len(cache) == inserts - len(evictions)
        # Windows and refetch counter agree: a window is closed iff the
        # object re-entered the cache afterwards.
        closed = sum(1 for w in cache.eviction_windows if w.closed)
        assert cache.refetch_after_evict_count == closed
        for victim in evictions:
            assert cache.was_evicted(victim)

    def test_just_inserted_key_is_never_the_victim(self, policy):
        cache = ObjectCache(capacity=self.CAPACITY, eviction=policy)
        for key in zipf_stream(**self.STREAM):
            object_id = ObjectId(key)
            if cache.get(object_id) is not None:
                continue
            evicted = cache.put(CacheEntry(object_id))
            if evicted is not None:
                assert evicted.object_id != object_id
            assert object_id in cache

    def test_victim_sequence_deterministic_under_fixed_seed(self, policy):
        stream = zipf_stream(**self.STREAM)
        runs = []
        for _ in range(2):
            cache = ObjectCache(capacity=self.CAPACITY, eviction=policy)
            hits, victims = drive(cache, stream)
            runs.append((hits, victims))
        assert runs[0] == runs[1]

    def test_capacity_one_single_resident(self, policy):
        cache = ObjectCache(capacity=1, eviction=policy)
        a, b = ObjectId("a"), ObjectId("b")
        assert cache.put(CacheEntry(a)) is None
        evicted = cache.put(CacheEntry(b))
        assert evicted is not None and evicted.object_id == a
        assert list(cache) == [b]

    def test_remove_untracks_key(self, policy):
        cache = ObjectCache(capacity=2, eviction=policy)
        a, b, c = ObjectId("a"), ObjectId("b"), ObjectId("c")
        cache.put(CacheEntry(a))
        cache.put(CacheEntry(b))
        removed = cache.remove(a)
        assert removed is not None and removed.object_id == a
        # The freed slot absorbs the next insert without eviction, and
        # removal (unlike eviction) opens no absence window.
        assert cache.put(CacheEntry(c)) is None
        assert cache.eviction_count == 0
        assert not cache.was_evicted(a)


class TestTinyLFUAdmission:
    def test_tinylfu_beats_lru_hit_rate_on_skewed_zipf(self):
        stream = zipf_stream(keys=200, ops=8000, exponent=1.2, seed=7)
        rates = {}
        for policy in ("lru", "tinylfu"):
            cache = ObjectCache(capacity=10, eviction=policy)
            hits, _ = drive(cache, stream)
            rates[policy] = hits / len(stream)
        assert rates["tinylfu"] >= rates["lru"]

    def test_one_hit_wonders_do_not_displace_the_hot_set(self):
        """A scan of cold keys must not flush still-active residents.

        Hot traffic continues during the scan (pure abandonment would
        legitimately decay the hot set out via sketch aging); each cold
        key is seen exactly once, so admission should reject it in the
        contest against any still-popular main resident.
        """
        cache = ObjectCache(capacity=10, eviction="tinylfu")
        hot = [ObjectId(f"hot{i}") for i in range(8)]
        for object_id in hot:
            cache.put(CacheEntry(object_id))
        for _ in range(50):
            for object_id in hot:
                assert cache.get(object_id) is not None
        for i in range(500):
            assert cache.get(hot[i % len(hot)]) is not None
            scan_id = ObjectId(f"scan{i}")
            if cache.get(scan_id) is None:
                cache.put(CacheEntry(scan_id))
        surviving = sum(
            1 for object_id in hot if cache.get(object_id, touch=False)
        )
        assert surviving == len(hot)


class TestLFUTieBreak:
    """Regression: equal counts break by insertion order, nothing else."""

    def test_equal_counts_evict_oldest_insertion(self):
        cache = ObjectCache(capacity=3, eviction="lfu")
        a, b, c, d = (ObjectId(k) for k in "abcd")
        for object_id in (a, b, c):
            cache.put(CacheEntry(object_id))
        evicted = cache.put(CacheEntry(d))
        assert evicted is not None and evicted.object_id == a

    def test_access_breaks_out_of_the_tie(self):
        cache = ObjectCache(capacity=3, eviction="lfu")
        a, b, c, d, e = (ObjectId(k) for k in "abcde")
        for object_id in (a, b, c):
            cache.put(CacheEntry(object_id))
        cache.put(CacheEntry(d))  # evicts a (oldest of the count ties)
        cache.get(b)  # b now outranks the remaining count-0 keys
        evicted = cache.put(CacheEntry(e))
        assert evicted is not None and evicted.object_id == c

    def test_reinsertion_gets_a_fresh_sequence_number(self):
        cache = ObjectCache(capacity=3, eviction="lfu")
        a, b, c, d = (ObjectId(k) for k in "abcd")
        for object_id in (a, b, c):
            cache.put(CacheEntry(object_id))
        cache.put(CacheEntry(d))  # evicts a
        cache.get(b)
        cache.get(c)
        evicted = cache.put(CacheEntry(a))  # a returns, newest again
        # d (count 0) loses; the returning a is exempt as just-inserted.
        assert evicted is not None and evicted.object_id == d


class _ManualClock:
    """A settable clock for driving EvictionWindow timestamps."""

    def __init__(self) -> None:
        self.now: Seconds = 0.0

    def __call__(self) -> Seconds:
        return self.now


class _CacheHolder:
    """Duck-typed stand-in for a proxy: just enough for the collector."""

    def __init__(self, cache: ObjectCache) -> None:
        self.cache = cache


def _snapshot(object_id: ObjectId, time: Seconds) -> ObjectSnapshot:
    return ObjectSnapshot(
        object_id=object_id, version=1, last_modified=time
    )


class TestEvictRefetchProperties:
    """Hypothesis: the evict→refetch cycle vs the staleness bound."""

    @given(
        polls_before=st.integers(min_value=1, max_value=8),
        evicted_at=st.floats(min_value=10.0, max_value=1e4),
        gap=st.floats(min_value=0.5, max_value=1e4),
    )
    @settings(max_examples=60, deadline=None)
    def test_refetch_resets_poll_history(self, polls_before, evicted_at, gap):
        """The refetched entry starts with an empty fetch log."""
        cache = ObjectCache(capacity=1, eviction="lru")
        clock = _ManualClock()
        cache.bind_clock(clock)
        a, b = ObjectId("a"), ObjectId("b")
        entry = CacheEntry(a)
        for i in range(polls_before):
            entry.record_fetch(
                float(i),
                _snapshot(a, float(i)),
                modified=True,
                reason=PollReason.TTR_EXPIRED,
            )
        cache.put(entry)
        assert cache.get(a).poll_count == polls_before
        clock.now = evicted_at
        evicted = cache.put(CacheEntry(b))  # displaces a
        assert evicted is not None and evicted.object_id == a
        assert evicted.poll_count == polls_before  # history left with it
        clock.now = evicted_at + gap
        cache.put(CacheEntry(a))  # the refetch
        refetched = cache.get(a, touch=False)
        assert refetched is not None
        assert refetched.poll_count == 0
        # Re-putting a into the full cache displaced b, opening b's own
        # (still-open) window; a's is the first.
        window = cache.eviction_windows[0]
        assert window.object_id == a
        assert window.closed
        assert window.refetched_at == pytest.approx(evicted_at + gap)
        assert cache.refetch_after_evict_count == 1

    @given(
        evicted_at=st.floats(min_value=100.0, max_value=1e4),
        gap=st.floats(min_value=1.0, max_value=1e4),
        # Strictly inside the window: updates_in() is (start, end], so an
        # update at the eviction instant itself belongs to the previous
        # poll interval, not the absence window.
        update_frac=st.floats(min_value=0.25, max_value=1.0),
        delta=st.floats(min_value=0.5, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_violation_flagged_iff_update_unserved_longer_than_delta(
        self, evicted_at, gap, update_frac, delta
    ):
        """The collector's violation rule, checked against first principles.

        One update lands inside the absence window; the window closes
        with a refetch ``gap`` seconds after eviction.  The bound is
        violated iff the refetch came more than Δ after the update.
        """
        cache = ObjectCache(capacity=1, eviction="lru")
        clock = _ManualClock()
        cache.bind_clock(clock)
        a, b = ObjectId("a"), ObjectId("b")
        cache.put(CacheEntry(a))
        clock.now = evicted_at
        cache.put(CacheEntry(b))
        refetched_at = evicted_at + gap
        clock.now = refetched_at
        cache.put(CacheEntry(a))

        update_time = evicted_at + update_frac * gap
        trace = trace_from_times(
            a, [update_time], end_time=refetched_at + 10.0
        )
        impact = collect_eviction_impact(
            _CacheHolder(cache), trace, delta  # type: ignore[arg-type]
        )
        assert impact.evictions == 1
        assert impact.refetches_after_evict == 1
        assert impact.absent_time == pytest.approx(gap)
        expected = refetched_at - update_time > delta
        assert impact.staleness_violations == (1 if expected else 0)

    @given(
        evicted_at=st.floats(min_value=100.0, max_value=1e4),
        horizon_gap=st.floats(min_value=1.0, max_value=1e4),
        delta=st.floats(min_value=0.5, max_value=1e4),
    )
    @settings(max_examples=60, deadline=None)
    def test_open_window_scored_at_the_horizon(
        self, evicted_at, horizon_gap, delta
    ):
        """Never-refetched objects clip their absence at the horizon."""
        cache = ObjectCache(capacity=1, eviction="lru")
        clock = _ManualClock()
        cache.bind_clock(clock)
        a, b = ObjectId("a"), ObjectId("b")
        cache.put(CacheEntry(a))
        clock.now = evicted_at
        cache.put(CacheEntry(b))

        horizon = evicted_at + horizon_gap
        update_time = evicted_at + 0.5 * horizon_gap
        trace = trace_from_times(a, [update_time], end_time=horizon)
        impact = collect_eviction_impact(
            _CacheHolder(cache), trace, delta, horizon=horizon  # type: ignore[arg-type]
        )
        assert impact.refetches_after_evict == 0
        assert impact.absent_time == pytest.approx(horizon_gap)
        expected = horizon - update_time > delta
        assert impact.staleness_violations == (1 if expected else 0)


_labels = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=12,
)
_ttls = st.floats(min_value=1e-3, max_value=1e6)


class TestTTLClassRegistryProperties:
    """Hypothesis: the ops-table ``get_ttl`` lookup contract."""

    @given(
        classes=st.dictionaries(_labels, _ttls, max_size=8),
        default=st.one_of(st.none(), _ttls),
    )
    @settings(max_examples=80, deadline=None)
    def test_known_classes_return_declared_ttl(self, classes, default):
        registry = TTLClassRegistry(classes, default_ttl=default)
        for label, ttl in classes.items():
            assert registry.get_ttl(label) == pytest.approx(float(ttl))
            assert label in registry
        assert len(registry) == len(classes)

    @given(
        classes=st.dictionaries(_labels, _ttls, max_size=8),
        default=st.one_of(st.none(), _ttls),
        unknown=_labels,
    )
    @settings(max_examples=80, deadline=None)
    def test_unknown_and_empty_classes_fall_back_to_default(
        self, classes, default, unknown
    ):
        registry = TTLClassRegistry(classes, default_ttl=default)
        expected = None if default is None else pytest.approx(float(default))
        if unknown not in classes:
            assert registry.get_ttl(unknown) == expected
        assert registry.get_ttl("") == expected
        assert registry.get_ttl(None) == expected


class TestSerialVsWorkersByteIdentical:
    def test_capacity_edge_tiny_rows_match_across_workers(self):
        from repro.scenarios.smoke import canonical_rows, run_tiny

        serial = run_tiny("capacity_edge")
        parallel = run_tiny("capacity_edge", workers=2)
        assert canonical_rows(serial.rows) == canonical_rows(parallel.rows)
