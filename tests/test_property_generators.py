"""Property-based tests for the workload generators.

The calibration promises (exact counts, exact ranges, spacing, window
containment) must hold for *any* admissible spec and seed, not just the
Table 2/3 presets — these are the invariants the whole evaluation's
workload credibility rests on.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.group import group_interval_spread
from repro.traces.news import (
    MIN_UPDATE_SPACING,
    NewsTraceGenerator,
    NewsTraceSpec,
)
from repro.traces.stocks import (
    MIN_TICK_SPACING,
    StockTraceGenerator,
    StockTraceSpec,
)

news_specs = st.builds(
    NewsTraceSpec,
    name=st.just("prop"),
    start_hour_of_day=st.floats(min_value=0.0, max_value=23.99),
    duration=st.floats(min_value=3600.0, max_value=5 * 86400.0),
    update_count=st.integers(min_value=1, max_value=400),
    burstiness=st.floats(min_value=0.0, max_value=0.9),
)

stock_specs = st.builds(
    StockTraceSpec,
    name=st.just("prop"),
    duration=st.floats(min_value=600.0, max_value=6 * 3600.0),
    tick_count=st.integers(min_value=2, max_value=600),
    min_value=st.floats(min_value=1.0, max_value=100.0),
    max_value=st.floats(min_value=150.0, max_value=500.0),
    mean_reversion=st.floats(min_value=0.0, max_value=0.3),
    volatility_clustering=st.floats(min_value=0.0, max_value=0.9),
)


class TestNewsGeneratorProperties:
    @given(news_specs, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_exact_count_spacing_window(self, spec, seed):
        trace = NewsTraceGenerator(random.Random(seed)).generate(spec)
        assert trace.update_count == spec.update_count
        times = [r.time for r in trace.records]
        assert all(0.0 <= t < spec.duration for t in times)
        for a, b in zip(times, times[1:]):
            assert b - a >= MIN_UPDATE_SPACING - 1e-9

    @given(news_specs, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_trace(self, spec, seed):
        t1 = NewsTraceGenerator(random.Random(seed)).generate(spec)
        t2 = NewsTraceGenerator(random.Random(seed)).generate(spec)
        assert [r.time for r in t1.records] == [r.time for r in t2.records]


class TestStockGeneratorProperties:
    @given(stock_specs, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_exact_count_range_window(self, spec, seed):
        trace = StockTraceGenerator(random.Random(seed)).generate(spec)
        assert trace.update_count == spec.tick_count
        values = [r.value for r in trace.records]
        assert min(values) == pytest_approx(spec.min_value)
        assert max(values) == pytest_approx(spec.max_value)
        times = [r.time for r in trace.records]
        assert all(0.0 <= t < spec.duration for t in times)
        for a, b in zip(times, times[1:]):
            assert b - a >= MIN_TICK_SPACING - 1e-9


def pytest_approx(expected, rel=1e-9, abs_tol=1e-9):
    import pytest

    return pytest.approx(expected, rel=rel, abs=abs_tol)


class TestGroupSpreadProperties:
    intervals = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        ).map(lambda p: (min(p), max(p) + 1.0)),
        min_size=1,
        max_size=8,
    )

    @given(intervals)
    @settings(max_examples=100)
    def test_spread_zero_iff_common_point_exists(self, intervals):
        spread = group_interval_spread(intervals)
        assert spread >= 0.0
        # Brute force: a common point exists iff max(start) <= min(end).
        has_common = max(s for s, _ in intervals) <= min(e for _, e in intervals)
        assert (spread == 0.0) == has_common

    @given(intervals)
    @settings(max_examples=100)
    def test_spread_monotone_under_interval_widening(self, intervals):
        spread = group_interval_spread(intervals)
        widened = [(s - 1.0, e + 1.0) for s, e in intervals]
        assert group_interval_spread(widened) <= spread

    @given(intervals)
    @settings(max_examples=50)
    def test_subset_never_increases_spread(self, intervals):
        spread = group_interval_spread(intervals)
        if len(intervals) > 1:
            assert group_interval_spread(intervals[:-1]) <= spread
