"""Unit tests for the trace data model."""

from __future__ import annotations

import pytest

from repro.core.errors import TraceFormatError, TraceOrderingError
from repro.core.types import ObjectId, UpdateRecord
from repro.traces.model import (
    UpdateTrace,
    trace_from_ticks,
    trace_from_times,
)


class TestConstruction:
    def test_from_times_assigns_sequential_versions(self):
        trace = trace_from_times(ObjectId("x"), [5.0, 1.0, 3.0])
        assert [r.time for r in trace.records] == [1.0, 3.0, 5.0]
        assert [r.version for r in trace.records] == [0, 1, 2]

    def test_from_ticks_sorts_by_time(self):
        trace = trace_from_ticks(ObjectId("x"), [(3.0, 30.0), (1.0, 10.0)])
        assert [r.value for r in trace.records] == [10.0, 30.0]

    def test_non_monotone_times_rejected(self):
        records = [UpdateRecord(2.0, 0), UpdateRecord(1.0, 1)]
        with pytest.raises(TraceOrderingError):
            UpdateTrace(ObjectId("x"), records)

    def test_duplicate_times_rejected(self):
        records = [UpdateRecord(2.0, 0), UpdateRecord(2.0, 1)]
        with pytest.raises(TraceOrderingError):
            UpdateTrace(ObjectId("x"), records)

    def test_version_gap_rejected(self):
        records = [UpdateRecord(1.0, 0), UpdateRecord(2.0, 2)]
        with pytest.raises(TraceFormatError, match="version"):
            UpdateTrace(ObjectId("x"), records)

    def test_start_after_first_update_rejected(self):
        records = [UpdateRecord(1.0, 0)]
        with pytest.raises(TraceFormatError, match="start_time"):
            UpdateTrace(ObjectId("x"), records, start_time=2.0)

    def test_end_before_last_update_rejected(self):
        records = [UpdateRecord(5.0, 0)]
        with pytest.raises(TraceFormatError, match="end_time"):
            UpdateTrace(ObjectId("x"), records, end_time=4.0)

    def test_empty_trace_allowed(self):
        trace = UpdateTrace(ObjectId("x"), [], start_time=0.0, end_time=10.0)
        assert trace.update_count == 0
        assert trace.duration == 10.0

    def test_default_end_time_is_last_update(self):
        trace = trace_from_times(ObjectId("x"), [3.0, 7.0])
        assert trace.end_time == 7.0

    def test_has_values(self, simple_trace, valued_trace):
        assert not simple_trace.has_values
        assert valued_trace.has_values

    def test_metadata_defaults_to_object_id(self):
        trace = trace_from_times(ObjectId("x"), [1.0])
        assert trace.metadata.name == "x"


class TestQueries:
    def test_updates_in_is_left_open_right_closed(self, simple_trace):
        updates = simple_trace.updates_in(100.0, 300.0)
        assert [u.time for u in updates] == [200.0, 300.0]

    def test_updates_in_empty_interval(self, simple_trace):
        assert simple_trace.updates_in(150.0, 160.0) == []

    def test_latest_at_exact_time(self, simple_trace):
        record = simple_trace.latest_at(200.0)
        assert record is not None and record.time == 200.0

    def test_latest_at_between_updates(self, simple_trace):
        record = simple_trace.latest_at(250.0)
        assert record is not None and record.time == 200.0

    def test_latest_at_before_first(self, simple_trace):
        assert simple_trace.latest_at(50.0) is None

    def test_next_after(self, simple_trace):
        record = simple_trace.next_after(200.0)
        assert record is not None and record.time == 300.0

    def test_next_after_last(self, simple_trace):
        assert simple_trace.next_after(1000.0) is None

    def test_value_at(self, valued_trace):
        assert valued_trace.value_at(25.0) == 1.0
        assert valued_trace.value_at(5.0) is None
        assert valued_trace.value_at(5.0, default=-1.0) == -1.0

    def test_version_at(self, simple_trace):
        assert simple_trace.version_at(50.0) is None
        assert simple_trace.version_at(100.0) == 0
        assert simple_trace.version_at(1050.0) == 9


class TestDerivedTraces:
    def test_shifted_moves_all_times(self, simple_trace):
        shifted = simple_trace.shifted(1000.0)
        assert shifted.records[0].time == 1100.0
        assert shifted.start_time == 1000.0
        assert shifted.end_time == 2100.0
        assert shifted.update_count == simple_trace.update_count

    def test_shift_before_zero_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.shifted(-1.0)

    def test_clipped_selects_window_and_renumbers(self, simple_trace):
        clipped = simple_trace.clipped(250.0, 550.0)
        assert [r.time for r in clipped.records] == [300.0, 400.0, 500.0]
        assert [r.version for r in clipped.records] == [0, 1, 2]
        assert clipped.start_time == 250.0
        assert clipped.end_time == 550.0

    def test_clipped_invalid_window_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.clipped(500.0, 500.0)

    def test_clipped_preserves_values(self, valued_trace):
        clipped = valued_trace.clipped(15.0, 45.0)
        assert [r.value for r in clipped.records] == [1.0, 2.0, 3.0]
