"""ResultSet / ResultRow exporter and schema tests."""

from __future__ import annotations

import json

import pytest

from repro.api.results import ResultRow, ResultSchemaError, ResultSet

ROWS = [
    {"delta": 1.0, "polls": 100, "fidelity": 0.9},
    {"delta": 2.0, "polls": 50, "fidelity": 0.95},
]


class TestSchema:
    def test_declared_columns_preserved_in_order(self):
        rs = ResultSet(("delta", "polls", "fidelity"), ROWS)
        assert rs.columns == ("delta", "polls", "fidelity")

    def test_inferred_columns_first_seen_order(self):
        rows = [
            {"b": 1, "a": 2},
            {"a": 3, "c": 4},  # c introduced later -> sorts after a, b
        ]
        rs = ResultSet.from_records(rows)
        assert rs.columns == ("b", "a", "c")

    def test_undeclared_row_column_rejected(self):
        with pytest.raises(ResultSchemaError, match="undeclared"):
            ResultSet(("delta",), [{"delta": 1.0, "rogue": 2}])

    def test_duplicate_column_rejected(self):
        with pytest.raises(ResultSchemaError, match="duplicate"):
            ResultSet(("a", "a"))

    def test_unknown_column_access_rejected(self):
        rs = ResultSet.from_records(ROWS)
        with pytest.raises(ResultSchemaError, match="unknown column"):
            rs.column("nope")


class TestExporters:
    def test_to_records_key_order_follows_schema(self):
        # Rows given in one order, schema declares another.
        rs = ResultSet(("fidelity", "delta", "polls"), ROWS)
        record = rs.to_records()[0]
        assert list(record) == ["fidelity", "delta", "polls"]

    def test_to_json_carries_columns_and_rows(self):
        rs = ResultSet.from_records(ROWS)
        payload = json.loads(rs.to_json())
        assert payload["columns"] == ["delta", "polls", "fidelity"]
        assert payload["rows"][1]["polls"] == 50
        # Key order inside each JSON row follows the schema too.
        assert list(payload["rows"][0]) == ["delta", "polls", "fidelity"]

    def test_to_csv_header_and_rows(self):
        rs = ResultSet.from_records(ROWS)
        lines = rs.to_csv().splitlines()
        assert lines[0] == "delta,polls,fidelity"
        assert lines[1] == "1.0,100,0.9"
        assert len(lines) == 3

    def test_missing_cells_export_as_none_and_empty(self):
        rs = ResultSet(("a", "b"), [{"a": 1}])
        assert rs.column("b") == [None]
        assert rs.to_csv().splitlines()[1] == "1,"
        assert rs.to_records() == [{"a": 1}]

    def test_empty_set_edge_case(self):
        rs = ResultSet(("a", "b"))
        assert len(rs) == 0
        assert not rs
        assert rs.to_records() == []
        assert rs.to_csv() == "a,b\n"
        assert json.loads(rs.to_json()) == {"columns": ["a", "b"], "rows": []}

    def test_fully_empty_inference(self):
        rs = ResultSet.from_records([])
        assert rs.columns == ()
        assert rs.to_csv() == "\n"
        assert json.loads(rs.to_json()) == {"columns": [], "rows": []}


class TestRowAccess:
    def test_rows_are_ordered_mappings(self):
        rs = ResultSet.from_records(ROWS)
        row = rs[0]
        assert isinstance(row, ResultRow)
        assert row["polls"] == 100
        assert list(row) == ["delta", "polls", "fidelity"]
        assert len(row) == 3
        assert row.get("nope", "x") == "x"

    def test_column_extraction(self):
        rs = ResultSet.from_records(ROWS)
        assert rs.column("polls") == [100, 50]

    def test_iteration_and_indexing(self):
        rs = ResultSet.from_records(ROWS)
        assert [row["delta"] for row in rs] == [1.0, 2.0]
        assert rs[1]["delta"] == 2.0
