"""Access-log ingestion: CLF/squid parsing and replay (property-based).

The round-trip properties pin the contract :mod:`repro.traces.clf`
documents — ``parse(serialize(records)) == records`` in both dialects —
plus the strict, line-numbered rejection of malformed input.  The trace
io round-trips (CSV and JSON) ride along here because the replay path
leans on them for archiving inferred traces.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TraceFormatError
from repro.core.types import ObjectId
from repro.traces.clf import (
    LogRecord,
    format_log_line,
    generate_synthetic_log,
    infer_update_times,
    log_to_traces,
    parse_log,
    serialize_log,
)
from repro.traces.io import (
    from_json_dict,
    to_json_dict,
    trace_from_csv_string,
    trace_to_csv_string,
)
from repro.traces.model import trace_from_ticks, trace_from_times

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

# Log fields are free-form but whitespace-free and quote-free (LogRecord
# enforces it); printable ASCII otherwise.
_field_text = st.text(
    alphabet=st.characters(
        min_codepoint=33, max_codepoint=126, blacklist_characters='"'
    ),
    min_size=1,
    max_size=12,
)

# CLF carries whole seconds, squid milliseconds; generate times at the
# dialect's native resolution so serialization cannot refuse them.
_clf_records = st.lists(
    st.builds(
        LogRecord,
        time=st.integers(min_value=0, max_value=2_000_000_000).map(float),
        # A host opening with '#' would serialize as a comment line;
        # format_log_line rejects those (covered by a unit test below).
        host=_field_text.filter(lambda h: not h.startswith("#")),
        method=_field_text,
        url=_field_text,
        status=st.integers(min_value=100, max_value=599),
        size=st.integers(min_value=0, max_value=10**9),
    ),
    max_size=20,
)

_squid_records = st.lists(
    st.builds(
        LogRecord,
        time=st.integers(min_value=0, max_value=10**12).map(
            lambda ms: ms / 1000.0
        ),
        host=_field_text,
        method=_field_text,
        url=_field_text,
        status=st.integers(min_value=100, max_value=599),
        size=st.integers(min_value=0, max_value=10**9),
    ),
    max_size=20,
)

_update_times = st.lists(
    st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=30,
    unique=True,
)


class TestLogRoundTripProperties:
    @given(_clf_records)
    @settings(max_examples=100)
    def test_clf_parse_serialize_parse_is_identity(self, records):
        assert parse_log(serialize_log(records, format="clf")) == records

    @given(_squid_records)
    @settings(max_examples=100)
    def test_squid_parse_serialize_parse_is_identity(self, records):
        text = serialize_log(records, format="squid")
        assert parse_log(text, format="squid") == records

    @given(_clf_records, st.integers(min_value=0, max_value=20))
    @settings(max_examples=50)
    def test_malformed_clf_line_rejected_with_line_number(
        self, records, position
    ):
        lines = serialize_log(records, format="clf").splitlines()
        position = min(position, len(lines))
        lines.insert(position, "this is not a log line")
        with pytest.raises(TraceFormatError, match=f"line {position + 1}:"):
            parse_log(lines)

    @given(_squid_records, st.integers(min_value=0, max_value=20))
    @settings(max_examples=50)
    def test_malformed_squid_line_rejected_with_line_number(
        self, records, position
    ):
        lines = serialize_log(records, format="squid").splitlines()
        position = min(position, len(lines))
        lines.insert(position, "truncated")
        with pytest.raises(TraceFormatError, match=f"line {position + 1}:"):
            parse_log(lines, format="squid")

    @given(_clf_records)
    @settings(max_examples=25)
    def test_blank_and_comment_lines_are_transparent(self, records):
        lines = serialize_log(records, format="clf").splitlines()
        noisy = ["# header", ""]
        for line in lines:
            noisy.extend([line, "", "# noise"])
        assert parse_log(noisy) == records


class TestTraceIoRoundTripProperties:
    @given(_update_times)
    @settings(max_examples=100)
    def test_csv_round_trip_preserves_records_and_window(self, times):
        trace = trace_from_times(ObjectId("x"), times, start_time=min(times))
        back = trace_from_csv_string(trace_to_csv_string(trace), "x")
        assert [(r.time, r.version) for r in back.records] == [
            (r.time, r.version) for r in trace.records
        ]
        # The window default opens at the first record (the PR-8 fix),
        # so a trace whose window starts at its first update survives.
        assert back.start_time == trace.start_time

    @given(
        _update_times,
        st.floats(
            min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=100)
    def test_json_round_trip_is_lossless(self, times, tail):
        end = max(times) + abs(tail)
        trace = trace_from_times(
            ObjectId("x"), times, start_time=0.0, end_time=end
        )
        data = json.loads(json.dumps(to_json_dict(trace)))
        back = from_json_dict(data)
        assert back.object_id == trace.object_id
        assert back.start_time == trace.start_time
        assert back.end_time == trace.end_time
        assert [(r.time, r.version, r.value) for r in back.records] == [
            (r.time, r.version, r.value) for r in trace.records
        ]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.floats(
                    min_value=-1e9,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=20,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=100)
    def test_valued_csv_round_trip_is_lossless(self, ticks):
        trace = trace_from_ticks(ObjectId("v"), ticks)
        back = trace_from_csv_string(trace_to_csv_string(trace), "v")
        assert [(r.time, r.value) for r in back.records] == [
            (r.time, r.value) for r in trace.records
        ]


class TestClfParsing:
    def test_known_clf_line(self):
        line = (
            '10.0.0.7 - alice [01/Jan/2001:00:00:05 +0000] '
            '"GET /index.html HTTP/1.0" 200 2326'
        )
        (record,) = parse_log(line)
        assert record.host == "10.0.0.7"
        assert record.method == "GET"
        assert record.url == "/index.html"
        assert record.status == 200
        assert record.size == 2326
        assert record.time == 978307205.0  # 2001-01-01T00:00:05Z

    def test_clf_timezone_offset_applied(self):
        east = '- - - [01/Jan/2001:01:00:00 +0100] "GET /a HTTP/1.0" 200 1'
        utc = '- - - [01/Jan/2001:00:00:00 +0000] "GET /a HTTP/1.0" 200 1'
        assert parse_log(east)[0].time == parse_log(utc)[0].time

    def test_clf_missing_size_dash_reads_as_zero(self):
        line = '- - - [01/Jan/2001:00:00:00 +0000] "GET /a HTTP/1.0" 304 -'
        assert parse_log(line)[0].size == 0

    def test_bad_timestamp_names_line(self):
        good = '- - - [01/Jan/2001:00:00:00 +0000] "GET /a HTTP/1.0" 200 1'
        bad = '- - - [99/Zzz/2001:00:00:00 +0000] "GET /a HTTP/1.0" 200 1'
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_log([good, bad])

    def test_bad_request_field_rejected(self):
        line = '- - - [01/Jan/2001:00:00:00 +0000] "" 200 1'
        with pytest.raises(TraceFormatError, match="request"):
            parse_log(line)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            parse_log("", format="nginx")

    def test_clf_serializer_rejects_fractional_seconds(self):
        record = LogRecord(1.5, "h", "GET", "/a", 200, 1)
        with pytest.raises(TraceFormatError, match="whole-second"):
            format_log_line(record, format="clf")

    def test_squid_serializer_rejects_sub_millisecond(self):
        record = LogRecord(1.0001, "h", "GET", "/a", 200, 1)
        with pytest.raises(TraceFormatError, match="millisecond"):
            format_log_line(record, format="squid")

    def test_clf_serializer_rejects_comment_lookalike_host(self):
        # Found by hypothesis: a '#'-leading host serializes to a line
        # the parser skips as a comment, breaking the round trip.
        record = LogRecord(1.0, "#host", "GET", "/a", 200, 1)
        with pytest.raises(TraceFormatError, match="comment"):
            format_log_line(record, format="clf")
        # Squid lines open with the timestamp, so the same host is fine.
        assert parse_log(
            format_log_line(record, format="squid"), format="squid"
        ) == [record]


class TestUpdateInference:
    def _record(self, time, url, size, status=200):
        return LogRecord(float(time), "h", "GET", url, status, size)

    def test_size_change_counts_first_sighting_and_changes(self):
        records = [
            self._record(1, "/a", 100),
            self._record(2, "/a", 100),  # unchanged: no update
            self._record(3, "/a", 120),  # changed
            self._record(4, "/b", 50),  # first sighting
        ]
        times = infer_update_times(records)
        assert times == {"/a": [1.0, 3.0], "/b": [4.0]}

    def test_every_request_counts_all_successes(self):
        records = [
            self._record(1, "/a", 100),
            self._record(2, "/a", 100),
        ]
        times = infer_update_times(records, rule="every_request")
        assert times == {"/a": [1.0, 2.0]}

    def test_non_2xx_ignored(self):
        records = [
            self._record(1, "/a", 100, status=404),
            self._record(2, "/a", 100, status=304),
        ]
        assert infer_update_times(records) == {}

    def test_same_instant_collapses(self):
        records = [
            self._record(5, "/a", 100),
            self._record(5, "/a", 120),
        ]
        assert infer_update_times(records) == {"/a": [5.0]}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="rule"):
            infer_update_times([], rule="mtime")


class TestLogToTraces:
    def test_window_is_shared_and_rebased(self):
        records = [
            LogRecord(100.0, "h", "GET", "/a", 200, 1),
            LogRecord(160.0, "h", "GET", "/b", 200, 2),
        ]
        trace_a, trace_b = log_to_traces(records, ["/a", "/b"])
        assert trace_a.start_time == trace_b.start_time == 0.0
        assert trace_a.end_time == trace_b.end_time == 60.0
        assert [r.time for r in trace_a.records] == [0.0]
        assert [r.time for r in trace_b.records] == [60.0]

    def test_time_scale_compresses_replay(self):
        records = [
            LogRecord(0.0, "h", "GET", "/a", 200, 1),
            LogRecord(100.0, "h", "GET", "/a", 200, 2),
        ]
        (trace,) = log_to_traces(records, ["/a"], time_scale=0.5)
        assert trace.end_time == 50.0
        assert [r.time for r in trace.records] == [0.0, 50.0]

    def test_url_map_names_objects(self):
        records = [LogRecord(0.0, "h", "GET", "/deep/path", 200, 1)]
        (trace,) = log_to_traces(
            records, ["page"], url_map={"page": "/deep/path"}
        )
        assert trace.object_id == ObjectId("page")

    def test_unknown_url_rejected(self):
        records = [LogRecord(0.0, "h", "GET", "/a", 200, 1)]
        with pytest.raises(ValueError, match="never appears"):
            log_to_traces(records, ["/missing"])

    def test_empty_log_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            log_to_traces([], ["/a"])


class TestSyntheticLog:
    def test_deterministic_for_seed(self):
        assert generate_synthetic_log(7) == generate_synthetic_log(7)

    def test_round_trips_in_both_dialects(self):
        records = generate_synthetic_log(3, duration_s=600.0)
        assert parse_log(serialize_log(records, format="clf")) == records
        assert (
            parse_log(
                serialize_log(records, format="squid"), format="squid"
            )
            == records
        )

    def test_covers_every_url(self):
        records = generate_synthetic_log(1, duration_s=3600.0)
        assert {r.url for r in records} == {
            "/index.html",
            "/news/front",
            "/quote/ticker",
        }
