"""Unit tests for the LIMD algorithm (paper Section 3.1, Cases 1-4)."""

from __future__ import annotations

import pytest

from repro.consistency.detection import make_detector
from repro.consistency.limd import LimdParameters, LimdPolicy, limd_policy_factory
from repro.core.errors import PolicyConfigurationError
from repro.core.types import ObjectId, ObjectSnapshot, PollOutcome, TTRBounds

DELTA = 10.0


def outcome(
    poll_time,
    *,
    modified,
    last_modified=None,
    version=1,
    first_unseen=None,
    updates=None,
):
    """Build a PollOutcome for direct policy testing."""
    last_modified = last_modified if last_modified is not None else poll_time
    return PollOutcome(
        poll_time=poll_time,
        modified=modified,
        snapshot=ObjectSnapshot(
            ObjectId("x"), version=version, last_modified=last_modified
        ),
        first_unseen_update=first_unseen,
        updates_since_last_poll=updates,
    )


def make_policy(
    *,
    delta=DELTA,
    ttr_max=600.0,
    l=0.2,
    epsilon=0.02,
    m=None,
    fallback=0.5,
    cold_reset_after=None,
    detection_mode="history",
):
    return LimdPolicy(
        delta,
        bounds=TTRBounds(ttr_min=delta, ttr_max=ttr_max),
        parameters=LimdParameters(
            linear_increase=l,
            epsilon=epsilon,
            multiplicative_decrease=m,
            fallback_decrease=fallback,
            cold_reset_after=cold_reset_after,
        ),
        detector=make_detector(detection_mode, delta),
    )


class TestInitialisation:
    def test_initial_ttr_is_ttr_min(self):
        policy = make_policy()
        assert policy.first_ttr() == DELTA
        assert policy.current_ttr == DELTA

    def test_default_bounds_follow_paper(self):
        policy = LimdPolicy(5.0)
        assert policy.bounds.ttr_min == 5.0
        assert policy.bounds.ttr_max == 300.0

    def test_ttr_min_above_delta_rejected(self):
        with pytest.raises(PolicyConfigurationError, match="ttr_min"):
            LimdPolicy(5.0, bounds=TTRBounds(ttr_min=6.0, ttr_max=100.0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PolicyConfigurationError):
            LimdParameters(linear_increase=0.0)
        with pytest.raises(PolicyConfigurationError):
            LimdParameters(linear_increase=1.0)
        with pytest.raises(PolicyConfigurationError):
            LimdParameters(epsilon=-0.1)
        with pytest.raises(PolicyConfigurationError):
            LimdParameters(multiplicative_decrease=1.0)
        with pytest.raises(PolicyConfigurationError):
            LimdParameters(fallback_decrease=0.0)
        with pytest.raises(PolicyConfigurationError):
            LimdParameters(cold_reset_after=0.0)


class TestCase1LinearIncrease:
    def test_unmodified_poll_grows_ttr_linearly(self):
        policy = make_policy(l=0.2)
        ttr = policy.next_ttr(outcome(10.0, modified=False, last_modified=0.0))
        assert ttr == pytest.approx(DELTA * 1.2)
        assert policy.last_case == "case1"

    def test_repeated_growth_reaches_ttr_max(self):
        policy = make_policy(l=0.5, ttr_max=100.0)
        t = 0.0
        for _ in range(20):
            t += policy.current_ttr
            policy.next_ttr(outcome(t, modified=False, last_modified=0.0))
        assert policy.current_ttr == 100.0

    def test_growth_is_compound(self):
        policy = make_policy(l=0.2, ttr_max=1e9)
        policy.next_ttr(outcome(10.0, modified=False, last_modified=0.0))
        policy.next_ttr(outcome(22.0, modified=False, last_modified=0.0))
        assert policy.current_ttr == pytest.approx(DELTA * 1.2 * 1.2)


class TestCase2MultiplicativeDecrease:
    def test_violation_shrinks_ttr_with_fixed_m(self):
        policy = make_policy(m=0.5, ttr_max=1000.0)
        # Grow first so the decrease is visible above the clamp.
        policy.next_ttr(outcome(100.0, modified=False, last_modified=0.0))
        policy.next_ttr(outcome(300.0, modified=False, last_modified=0.0))
        grown = policy.current_ttr
        # Violation: first unseen update 50s before the poll (> delta).
        ttr = policy.next_ttr(
            outcome(600.0, modified=True, last_modified=590.0, first_unseen=550.0)
        )
        assert ttr == pytest.approx(max(grown * 0.5, DELTA))
        assert policy.last_case == "case2"

    def test_adaptive_m_uses_out_sync_ratio(self):
        policy = make_policy(m=None, ttr_max=10000.0)
        for t in (100.0, 300.0, 700.0, 1500.0):
            policy.next_ttr(outcome(t, modified=False, last_modified=0.0))
        grown = policy.current_ttr
        # Out-of-sync = poll - first_unseen = 40 → m = 10/40 = 0.25.
        ttr = policy.next_ttr(
            outcome(2000.0, modified=True, last_modified=1990.0, first_unseen=1960.0)
        )
        assert ttr == pytest.approx(max(grown * 0.25, DELTA))

    def test_adaptive_m_clamped_away_from_zero(self):
        policy = make_policy(m=None, ttr_max=1e6)
        for t in (100.0, 300.0, 700.0):
            policy.next_ttr(outcome(t, modified=False, last_modified=0.0))
        grown = policy.current_ttr
        # Absurd out-of-sync → raw m would be ~1e-5; clamp to 0.01.
        ttr = policy.next_ttr(
            outcome(1e6, modified=True, last_modified=1e6 - 1,
                    first_unseen=2000.0)
        )
        assert ttr == pytest.approx(max(grown * 0.01, DELTA))

    def test_successive_violations_decrease_to_ttr_min(self):
        policy = make_policy(m=0.5, ttr_max=1000.0)
        policy.next_ttr(outcome(100.0, modified=False, last_modified=0.0))
        t = 200.0
        for _ in range(10):
            policy.next_ttr(
                outcome(t, modified=True, last_modified=t - 1,
                        first_unseen=t - 50.0)
            )
            t += 100.0
        assert policy.current_ttr == DELTA

    def test_violation_via_stale_last_modified(self):
        """Figure 1(a): even without history, an old Last-Modified is a
        detectable violation."""
        policy = make_policy(m=0.5, detection_mode="last_modified_only")
        policy.next_ttr(outcome(100.0, modified=False, last_modified=0.0))
        grown = policy.current_ttr
        ttr = policy.next_ttr(outcome(200.0, modified=True, last_modified=150.0))
        assert ttr == pytest.approx(max(grown * 0.5, DELTA))
        assert policy.last_case == "case2"


class TestCase3FineTuning:
    def test_modified_without_violation_grows_by_epsilon(self):
        policy = make_policy(epsilon=0.02)
        # Update 5s before poll (within delta), first unseen equally recent.
        ttr = policy.next_ttr(
            outcome(20.0, modified=True, last_modified=15.0, first_unseen=15.0)
        )
        assert ttr == pytest.approx(DELTA * 1.02)
        assert policy.last_case == "case3"

    def test_zero_epsilon_keeps_ttr_unchanged(self):
        policy = make_policy(epsilon=0.0)
        ttr = policy.next_ttr(
            outcome(20.0, modified=True, last_modified=15.0, first_unseen=15.0)
        )
        assert ttr == DELTA


class TestCase4ColdRestart:
    def test_update_after_long_silence_resets_to_ttr_min(self):
        policy = make_policy(cold_reset_after=100.0, l=0.5, ttr_max=500.0)
        # First modified poll records the modification baseline.
        policy.next_ttr(
            outcome(10.0, modified=True, last_modified=8.0, first_unseen=8.0)
        )
        # Grow the TTR during a quiet stretch.
        t = 10.0
        for _ in range(10):
            t += policy.current_ttr
            policy.next_ttr(outcome(t, modified=False, last_modified=8.0))
        assert policy.current_ttr > DELTA
        # An update lands after >100s of silence → Case 4.
        ttr = policy.next_ttr(
            outcome(t + 50.0, modified=True, last_modified=t + 40.0,
                    first_unseen=t + 40.0)
        )
        assert ttr == DELTA
        assert policy.last_case == "case4"

    def test_disabled_by_default(self):
        policy = make_policy(l=0.5, ttr_max=500.0)
        policy.next_ttr(
            outcome(10.0, modified=True, last_modified=8.0, first_unseen=8.0)
        )
        t = 10.0
        for _ in range(10):
            t += policy.current_ttr
            policy.next_ttr(outcome(t, modified=False, last_modified=8.0))
        policy.next_ttr(
            outcome(t + 50.0, modified=True, last_modified=t + 45.0,
                    first_unseen=t + 45.0)
        )
        # Without cold_reset_after the poll is judged as Case 2 or 3,
        # never a hard reset.
        assert policy.last_case in ("case2", "case3")

    def test_short_silence_is_not_cold(self):
        policy = make_policy(cold_reset_after=1000.0)
        policy.next_ttr(
            outcome(10.0, modified=True, last_modified=8.0, first_unseen=8.0)
        )
        policy.next_ttr(
            outcome(30.0, modified=True, last_modified=25.0, first_unseen=25.0)
        )
        assert policy.last_case != "case4"


class TestClamping:
    def test_ttr_never_exceeds_ttr_max(self):
        policy = make_policy(l=0.9, ttr_max=50.0)
        t = 0.0
        for _ in range(30):
            t += 100.0
            policy.next_ttr(outcome(t, modified=False, last_modified=0.0))
            assert policy.current_ttr <= 50.0

    def test_ttr_never_drops_below_ttr_min(self):
        policy = make_policy(m=0.01)
        t = 0.0
        for _ in range(10):
            t += 100.0
            policy.next_ttr(
                outcome(t, modified=True, last_modified=t - 1,
                        first_unseen=t - 90.0)
            )
            assert policy.current_ttr >= DELTA


class TestFactory:
    def test_factory_produces_independent_instances(self):
        factory = limd_policy_factory(DELTA)
        p1 = factory(ObjectId("a"))
        p2 = factory(ObjectId("b"))
        p1.next_ttr(outcome(20.0, modified=False, last_modified=0.0))
        assert p1.current_ttr != p2.current_ttr

    def test_factory_default_ttr_max_is_60_delta(self):
        factory = limd_policy_factory(2.0)
        policy = factory(ObjectId("a"))
        assert policy.bounds.ttr_max == 120.0

    def test_factory_detection_mode(self):
        factory = limd_policy_factory(DELTA, detection_mode="inferred")
        policy = factory(ObjectId("a"))
        assert policy.detector.mode == "inferred"
