"""Unit tests for repro.core.types."""

from __future__ import annotations

import math

import pytest

from repro.core.types import (
    ConsistencyBounds,
    GroupId,
    GroupSpec,
    ObjectId,
    ObjectSnapshot,
    TTRBounds,
    UpdateRecord,
    require_finite,
    require_fraction,
    require_non_negative,
    require_positive,
)


class TestUpdateRecord:
    def test_basic_construction(self):
        record = UpdateRecord(time=5.0, version=3, value=1.25)
        assert record.time == 5.0
        assert record.version == 3
        assert record.value == 1.25

    def test_value_defaults_to_none(self):
        assert UpdateRecord(time=1.0, version=0).value is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            UpdateRecord(time=-1.0, version=0)

    def test_negative_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            UpdateRecord(time=1.0, version=-1)

    def test_non_finite_value_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            UpdateRecord(time=1.0, version=0, value=math.inf)

    def test_ordering_is_by_time(self):
        early = UpdateRecord(time=1.0, version=5)
        late = UpdateRecord(time=2.0, version=1)
        assert early < late

    def test_frozen(self):
        record = UpdateRecord(time=1.0, version=0)
        with pytest.raises(AttributeError):
            record.time = 2.0  # type: ignore[misc]


class TestObjectSnapshot:
    def test_is_newer_than(self):
        old = ObjectSnapshot(ObjectId("x"), version=1, last_modified=10.0)
        new = ObjectSnapshot(ObjectId("x"), version=2, last_modified=20.0)
        assert new.is_newer_than(old)
        assert not old.is_newer_than(new)
        assert not old.is_newer_than(old)

    def test_cross_object_comparison_rejected(self):
        a = ObjectSnapshot(ObjectId("a"), version=1, last_modified=10.0)
        b = ObjectSnapshot(ObjectId("b"), version=2, last_modified=20.0)
        with pytest.raises(ValueError, match="different objects"):
            a.is_newer_than(b)


class TestConsistencyBounds:
    def test_valid(self):
        bounds = ConsistencyBounds(delta=5.0, mutual_delta=2.0)
        assert bounds.delta == 5.0
        assert bounds.mutual_delta == 2.0

    def test_mutual_delta_optional(self):
        assert ConsistencyBounds(delta=5.0).mutual_delta is None

    def test_zero_mutual_delta_allowed(self):
        assert ConsistencyBounds(delta=5.0, mutual_delta=0.0).mutual_delta == 0.0

    def test_non_positive_delta_rejected(self):
        with pytest.raises(ValueError):
            ConsistencyBounds(delta=0.0)
        with pytest.raises(ValueError):
            ConsistencyBounds(delta=-1.0)

    def test_negative_mutual_delta_rejected(self):
        with pytest.raises(ValueError):
            ConsistencyBounds(delta=1.0, mutual_delta=-0.1)


class TestTTRBounds:
    def test_clamp_inside(self):
        bounds = TTRBounds(ttr_min=10.0, ttr_max=100.0)
        assert bounds.clamp(50.0) == 50.0

    def test_clamp_below(self):
        bounds = TTRBounds(ttr_min=10.0, ttr_max=100.0)
        assert bounds.clamp(1.0) == 10.0

    def test_clamp_above(self):
        bounds = TTRBounds(ttr_min=10.0, ttr_max=100.0)
        assert bounds.clamp(1e9) == 100.0

    def test_equal_bounds_allowed(self):
        bounds = TTRBounds(ttr_min=10.0, ttr_max=10.0)
        assert bounds.clamp(5.0) == 10.0
        assert bounds.clamp(15.0) == 10.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            TTRBounds(ttr_min=10.0, ttr_max=9.0)

    def test_non_positive_min_rejected(self):
        with pytest.raises(ValueError):
            TTRBounds(ttr_min=0.0, ttr_max=10.0)


class TestGroupSpec:
    def _spec(self, members=("a", "b"), delta=5.0):
        return GroupSpec(
            group_id=GroupId("g"),
            members=tuple(ObjectId(m) for m in members),
            mutual_delta=delta,
        )

    def test_partners_of(self):
        spec = self._spec(members=("a", "b", "c"))
        assert spec.partners_of(ObjectId("b")) == (ObjectId("a"), ObjectId("c"))

    def test_partners_of_unknown_member(self):
        spec = self._spec()
        with pytest.raises(KeyError):
            spec.partners_of(ObjectId("zzz"))

    def test_singleton_group_rejected(self):
        with pytest.raises(ValueError, match="2 members"):
            self._spec(members=("a",))

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._spec(members=("a", "a"))

    def test_zero_delta_allowed(self):
        assert self._spec(delta=0.0).mutual_delta == 0.0

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            self._spec(delta=-1.0)


class TestValidators:
    def test_require_positive_accepts(self):
        assert require_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_require_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            require_positive("x", bad)

    def test_require_non_negative_accepts_zero(self):
        assert require_non_negative("x", 0.0) == 0.0

    def test_require_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative("x", -0.001)

    def test_require_finite_rejects_nan(self):
        with pytest.raises(ValueError):
            require_finite("x", math.nan)

    def test_require_fraction_inclusive(self):
        assert require_fraction("x", 0.0) == 0.0
        assert require_fraction("x", 1.0) == 1.0

    def test_require_fraction_exclusive(self):
        with pytest.raises(ValueError):
            require_fraction("x", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            require_fraction("x", 1.0, inclusive=False)
        assert require_fraction("x", 0.5, inclusive=False) == 0.5
