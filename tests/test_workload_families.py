"""Property-based tests for the new scenario workload generators.

The invariants the scenario families lean on:

* flash-crowd redistribution conserves total arrival mass — the surge
  moves updates in time but never changes how many there are;
* diurnal modulation is non-negative for every time and amplitude, and
  exactly periodic;
* generated failure/recovery schedules never overlap their down
  intervals and stay inside the horizon.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.failures import (
    DownInterval,
    FailureInjector,
    FailureSchedule,
    generate_failure_schedule,
)
from repro.workload.modulation import (
    DiurnalModulation,
    diurnal_trace,
    modulated_times,
)
from repro.workload.surges import (
    SurgeWindow,
    flash_crowd_times,
    flash_crowd_trace,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)

surge_windows = st.builds(
    SurgeWindow,
    at=st.floats(min_value=0.0, max_value=80000.0),
    duration=st.floats(min_value=1.0, max_value=20000.0),
    intensity=st.floats(min_value=1.0, max_value=200.0),
)


class TestFlashCrowdProperties:
    @given(
        seeds,
        st.integers(min_value=0, max_value=500),
        st.lists(surge_windows, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_total_arrival_mass_is_conserved(self, seed, total, surges):
        """The defining property: surges redistribute, never add/drop."""
        times = flash_crowd_times(
            random.Random(seed), total=total, end=86400.0, surges=surges
        )
        assert len(times) == total

    @given(seeds, st.lists(surge_windows, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_times_strictly_increasing_inside_window(self, seed, surges):
        times = flash_crowd_times(
            random.Random(seed), total=200, end=86400.0, surges=surges
        )
        assert all(0.0 < t < 86400.0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_surge_attracts_mass(self):
        """A strong surge holds far more than its uniform share."""
        surge = SurgeWindow(at=40000.0, duration=3600.0, intensity=50.0)
        times = flash_crowd_times(
            random.Random(7), total=2000, end=86400.0, surges=(surge,)
        )
        in_surge = sum(1 for t in times if surge.at <= t < surge.end)
        uniform_share = 2000 * surge.duration / 86400.0
        assert in_surge > 5 * uniform_share

    def test_intensity_one_is_uniform_baseline(self):
        rng_a, rng_b = random.Random(3), random.Random(3)
        flat = flash_crowd_times(rng_a, total=100, end=1000.0)
        degenerate = flash_crowd_times(
            rng_b,
            total=100,
            end=1000.0,
            surges=(SurgeWindow(at=200.0, duration=100.0, intensity=1.0),),
        )
        assert flat == degenerate

    def test_trace_wrapper_builds_valid_trace(self):
        trace = flash_crowd_trace(
            "fc",
            random.Random(1),
            total=50,
            end=3600.0,
            surges=(SurgeWindow(at=1000.0, duration=60.0, intensity=10.0),),
        )
        assert trace.update_count == 50
        assert trace.metadata.source == "synthetic:flash_crowd"

    def test_invalid_inputs_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            flash_crowd_times(rng, total=-1, end=10.0)
        with pytest.raises(ValueError):
            flash_crowd_times(rng, total=1, end=0.0)
        with pytest.raises(ValueError):
            SurgeWindow(at=0.0, duration=0.0, intensity=2.0)
        with pytest.raises(ValueError):
            SurgeWindow(at=0.0, duration=1.0, intensity=0.5)


modulations = st.builds(
    DiurnalModulation,
    base_rate=st.floats(min_value=1e-6, max_value=10.0),
    amplitude=st.floats(min_value=0.0, max_value=1.0),
    period=st.floats(min_value=60.0, max_value=2 * 86400.0),
    peak_at=st.floats(min_value=-86400.0, max_value=86400.0),
)


class TestDiurnalModulationProperties:
    @given(modulations, st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_rate_never_negative(self, modulation, t):
        assert modulation.rate(t) >= 0.0

    @given(
        modulations,
        st.floats(min_value=0.0, max_value=1e5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_rate_is_periodic(self, modulation, t, cycles):
        shifted = modulation.rate(t + cycles * modulation.period)
        assert shifted == pytest.approx(
            modulation.rate(t), abs=1e-9 * modulation.peak_rate + 1e-12
        )

    @given(modulations)
    @settings(max_examples=50, deadline=None)
    def test_peak_and_trough_bracket_base_rate(self, modulation):
        assert modulation.trough_rate <= modulation.base_rate
        assert modulation.base_rate <= modulation.peak_rate

    def test_amplitude_out_of_range_rejected(self):
        for amplitude in (-0.1, 1.1):
            with pytest.raises(ValueError, match="amplitude"):
                DiurnalModulation(base_rate=1.0, amplitude=amplitude)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_modulated_times_inside_window_and_increasing(self, seed):
        modulation = DiurnalModulation(base_rate=0.01, amplitude=0.8)
        times = modulated_times(
            random.Random(seed), modulation, start=100.0, end=20000.0
        )
        assert all(100.0 < t < 20000.0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_zero_amplitude_matches_plain_poisson_envelope(self):
        """amplitude=0 thinning accepts every candidate."""
        modulation = DiurnalModulation(base_rate=0.02, amplitude=0.0)
        times = modulated_times(
            random.Random(11), modulation, end=50000.0
        )
        # Expected ~1000 events; a flat profile should land close.
        assert 800 < len(times) < 1200

    def test_trace_wrapper_builds_valid_trace(self):
        modulation = DiurnalModulation(base_rate=0.01, amplitude=1.0)
        trace = diurnal_trace(
            "d", random.Random(2), modulation, end=86400.0
        )
        assert trace.metadata.source == "synthetic:diurnal"
        assert trace.end_time == 86400.0


class TestFailureScheduleProperties:
    @given(
        seeds,
        st.floats(min_value=100.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=100, deadline=None)
    def test_down_intervals_never_overlap(
        self, seed, horizon, mean_up, mean_down
    ):
        """The defining property: downtime intervals are disjoint,
        ordered, and inside the horizon."""
        schedule = generate_failure_schedule(
            random.Random(seed),
            horizon=horizon,
            mean_uptime=mean_up,
            mean_downtime=mean_down,
        )
        previous_end = 0.0
        for interval in schedule.intervals:
            assert interval.start >= previous_end
            assert interval.end > interval.start
            assert interval.end <= horizon
            previous_end = interval.end
        assert schedule.total_downtime <= horizon

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FailureSchedule(
                (DownInterval(0.0, 10.0), DownInterval(5.0, 15.0))
            )

    def test_unordered_intervals_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FailureSchedule(
                (DownInterval(20.0, 30.0), DownInterval(0.0, 10.0))
            )

    def test_degenerate_interval_rejected(self):
        with pytest.raises(ValueError):
            DownInterval(5.0, 5.0)

    def test_is_down_and_fraction(self):
        schedule = FailureSchedule(
            (DownInterval(10.0, 20.0), DownInterval(50.0, 60.0))
        )
        assert schedule.is_down(15.0)
        assert not schedule.is_down(30.0)
        assert schedule.failure_count == 2
        assert schedule.downtime_fraction(100.0) == pytest.approx(0.2)

    def test_injector_triggers_recoveries(self):
        from repro.consistency.base import FixedTTRPolicy
        from repro.core.types import ObjectId
        from repro.httpsim.network import Network
        from repro.proxy.proxy import ProxyCache
        from repro.server.origin import OriginServer
        from repro.server.updates import UpdateFeeder
        from repro.sim.kernel import Kernel
        from repro.traces.model import trace_from_times

        trace = trace_from_times(ObjectId("x"), [5.0], end_time=1000.0)
        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        UpdateFeeder(kernel, server, trace)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=50.0))
        schedule = FailureSchedule(
            (DownInterval(100.0, 150.0), DownInterval(400.0, 420.0))
        )
        injector = FailureInjector(kernel, proxy, schedule)
        kernel.run(until=1000.0)
        assert injector.recoveries == 2
        assert proxy.counters.get("recoveries") == 2


class TestFamilyScenarios:
    """The four new families run end to end via the engine."""

    @pytest.mark.parametrize(
        "name", ["flash_crowd", "diurnal", "failure_churn", "hetero_mix"]
    )
    def test_family_runs_and_reports_metrics(self, name):
        from repro.scenarios.smoke import run_tiny

        result = run_tiny(name)
        assert len(result.rows) == len(result.spec.values)
        for row in result.rows:
            assert any("fidelity" in column for column in row)

    def test_flash_crowd_rows_conserve_updates(self):
        from repro.scenarios.engine import run_scenario

        result = run_scenario(
            "flash_crowd",
            values=(1.0, 50.0),
            params={"total_updates": 150, "hours": 6.0, "surge_start_hour": 3.0},
        )
        # Same total mass at every surge intensity: baseline polls are
        # the fixed-TTR schedule, and the trace always has 150 updates.
        in_surge = [row["updates_in_surge"] for row in result.rows]
        assert in_surge[1] > in_surge[0]
