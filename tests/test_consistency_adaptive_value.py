"""Unit tests for the adaptive value-domain TTR policy (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.consistency.adaptive_value import (
    AdaptiveValueParameters,
    AdaptiveValueTTRPolicy,
    adaptive_value_policy_factory,
)
from repro.core.errors import PolicyConfigurationError
from repro.core.types import ObjectId, ObjectSnapshot, PollOutcome, TTRBounds

DELTA = 1.0
BOUNDS = TTRBounds(ttr_min=1.0, ttr_max=1000.0)


def outcome(poll_time, value, *, modified=True):
    return PollOutcome(
        poll_time=poll_time,
        modified=modified,
        snapshot=ObjectSnapshot(
            ObjectId("s"), version=1, last_modified=poll_time, value=value
        ),
    )


def make_policy(*, delta=DELTA, bounds=BOUNDS, w=1.0, alpha=1.0, first_ttr=None):
    return AdaptiveValueTTRPolicy(
        delta,
        bounds=bounds,
        parameters=AdaptiveValueParameters(
            smoothing_weight=w, alpha=alpha, first_ttr=first_ttr
        ),
    )


class TestEquation9:
    def test_ttr_is_delta_over_rate(self):
        policy = make_policy()
        policy.next_ttr(outcome(0.0, 10.0))
        # Value moved 0.5 in 10s → r = 0.05 → TTR = 1/0.05 = 20.
        ttr = policy.next_ttr(outcome(10.0, 10.5))
        assert ttr == pytest.approx(20.0)

    def test_static_value_earns_ttr_max(self):
        policy = make_policy()
        policy.next_ttr(outcome(0.0, 10.0))
        ttr = policy.next_ttr(outcome(10.0, 10.0))
        assert ttr == BOUNDS.ttr_max

    def test_first_poll_keeps_initial_ttr(self):
        policy = make_policy(first_ttr=5.0)
        assert policy.first_ttr() == 5.0
        # One observation establishes a baseline; no rate exists yet, so
        # the TTR is left unchanged rather than guessing "static".
        ttr = policy.next_ttr(outcome(0.0, 10.0))
        assert ttr == 5.0

    def test_faster_change_means_smaller_ttr(self):
        slow = make_policy()
        fast = make_policy()
        slow.next_ttr(outcome(0.0, 10.0))
        fast.next_ttr(outcome(0.0, 10.0))
        slow_ttr = slow.next_ttr(outcome(10.0, 10.1))
        fast_ttr = fast.next_ttr(outcome(10.0, 15.0))
        assert fast_ttr < slow_ttr

    def test_missing_value_rejected(self):
        policy = make_policy()
        bad = PollOutcome(
            poll_time=0.0,
            modified=True,
            snapshot=ObjectSnapshot(ObjectId("s"), version=1, last_modified=0.0),
        )
        with pytest.raises(PolicyConfigurationError, match="value"):
            policy.next_ttr(bad)


class TestSmoothingAndEquation10:
    def test_smoothing_blends_successive_estimates(self):
        policy = make_policy(w=0.5)
        policy.next_ttr(outcome(0.0, 0.0))
        first = policy.next_ttr(outcome(10.0, 1.0))   # raw 10
        second = policy.next_ttr(outcome(20.0, 3.0))  # raw 5
        # smoothed = 0.5*5 + 0.5*10 = 7.5
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(7.5)

    def test_alpha_blends_toward_observed_min(self):
        policy = make_policy(w=1.0, alpha=0.5)
        policy.next_ttr(outcome(0.0, 0.0))
        policy.next_ttr(outcome(10.0, 10.0))   # raw TTR 1 (fast!) → min=1
        ttr = policy.next_ttr(outcome(20.0, 10.1))  # raw TTR 100
        # blend = 0.5*100 + 0.5*1 = 50.5
        assert ttr == pytest.approx(50.5)
        assert policy.observed_min_ttr == pytest.approx(1.0)

    def test_alpha_one_ignores_observed_min(self):
        policy = make_policy(w=1.0, alpha=1.0)
        policy.next_ttr(outcome(0.0, 0.0))
        policy.next_ttr(outcome(10.0, 10.0))
        ttr = policy.next_ttr(outcome(20.0, 10.1))
        assert ttr == pytest.approx(100.0)

    def test_clamped_into_bounds(self):
        tight = TTRBounds(ttr_min=5.0, ttr_max=50.0)
        policy = make_policy(bounds=tight)
        policy.next_ttr(outcome(0.0, 0.0))
        fast = policy.next_ttr(outcome(1.0, 100.0))  # raw 0.01
        assert fast == 5.0
        policy2 = make_policy(bounds=tight)
        policy2.next_ttr(outcome(0.0, 0.0))
        slow = policy2.next_ttr(outcome(100.0, 0.001))  # raw huge
        assert slow == 50.0


class TestViolationJudgement:
    def test_drift_at_least_delta_is_violation(self):
        policy = make_policy()
        policy.next_ttr(outcome(0.0, 10.0))
        judgement = policy.judge_violation(outcome(10.0, 11.5))
        assert judgement.violated

    def test_drift_below_delta_is_clean(self):
        policy = make_policy()
        policy.next_ttr(outcome(0.0, 10.0))
        judgement = policy.judge_violation(outcome(10.0, 10.5))
        assert not judgement.violated

    def test_no_baseline_is_clean(self):
        policy = make_policy()
        judgement = policy.judge_violation(outcome(0.0, 10.0))
        assert not judgement.violated


class TestRetargetDelta:
    def test_retarget_changes_future_ttr(self):
        policy = make_policy()
        policy.next_ttr(outcome(0.0, 0.0))
        before = policy.next_ttr(outcome(10.0, 1.0))  # r=0.1, TTR=10
        policy.retarget_delta(2.0)
        # Same rate, doubled delta → doubled raw TTR (w=1, alpha=1).
        after = policy.next_ttr(outcome(20.0, 2.0))
        assert after == pytest.approx(before * 2.0)
        assert policy.delta == 2.0

    def test_retarget_rejects_non_positive(self):
        policy = make_policy()
        with pytest.raises(ValueError):
            policy.retarget_delta(0.0)


class TestParametersValidation:
    def test_zero_smoothing_weight_rejected(self):
        with pytest.raises(PolicyConfigurationError):
            AdaptiveValueParameters(smoothing_weight=0.0)

    def test_out_of_range_alpha_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveValueParameters(alpha=1.5)

    def test_non_positive_first_ttr_rejected(self):
        with pytest.raises(PolicyConfigurationError):
            AdaptiveValueParameters(first_ttr=0.0)


class TestFactory:
    def test_independent_instances(self):
        factory = adaptive_value_policy_factory(
            DELTA, ttr_min=1.0, ttr_max=100.0
        )
        p1 = factory(ObjectId("a"))
        p2 = factory(ObjectId("b"))
        p1.next_ttr(outcome(0.0, 0.0))
        p1.next_ttr(outcome(10.0, 0.5))  # r = 0.05 → TTR = 20
        assert p1.current_ttr == pytest.approx(20.0)
        assert p2.current_ttr == 1.0  # untouched instance
