"""Unit tests for the server-push strong-consistency extension."""

from __future__ import annotations

import pytest

from repro.consistency.base import fixed_policy_factory
from repro.consistency.invalidation import (
    PushChannel,
    PushConsistencyClient,
    PushUpdateFeeder,
    attach_push_channel,
)
from repro.core.types import ObjectId
from repro.httpsim.network import Network
from repro.metrics.collector import collect_temporal
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.sim.kernel import Kernel
from repro.traces.model import trace_from_times

X = ObjectId("x")


def build_push_stack(*, notify_latency=0.0):
    kernel = Kernel()
    server = OriginServer()
    proxy = ProxyCache(kernel, Network(kernel))
    channel = PushChannel(kernel, server, notify_latency=notify_latency)
    client = PushConsistencyClient(proxy, channel)
    return kernel, server, proxy, channel, client


class TestPushChannel:
    def test_subscribers_notified_on_update(self):
        kernel, server, proxy, channel, _ = build_push_stack()
        server.create_object(X, created_at=0.0)
        seen = []
        channel.subscribe(X, lambda oid, t: seen.append((oid, t)))
        channel.apply_update(X, 5.0)
        assert seen == [(X, 5.0)]
        assert channel.counters.get("notifications") == 1

    def test_unsubscribe_stops_notifications(self):
        kernel, server, proxy, channel, _ = build_push_stack()
        server.create_object(X, created_at=0.0)
        seen = []
        callback = lambda oid, t: seen.append(t)  # noqa: E731
        channel.subscribe(X, callback)
        channel.unsubscribe(X, callback)
        channel.apply_update(X, 5.0)
        assert seen == []

    def test_notification_latency_delays_delivery(self):
        kernel, server, proxy, channel, _ = build_push_stack(notify_latency=2.0)
        server.create_object(X, created_at=0.0)
        seen = []
        channel.subscribe(X, lambda oid, t: seen.append(kernel.now()))
        kernel.schedule_at(5.0, lambda k: channel.apply_update(X, 5.0))
        kernel.run()
        assert seen == [7.0]

    def test_negative_latency_rejected(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            PushChannel(kernel, OriginServer(), notify_latency=-1.0)

    def test_subscriber_count(self):
        kernel, server, proxy, channel, _ = build_push_stack()
        assert channel.subscriber_count(X) == 0
        channel.subscribe(X, lambda oid, t: None)
        assert channel.subscriber_count(X) == 1


class TestPushClient:
    def test_strong_consistency_with_zero_latency(self):
        kernel, server, proxy, channel, client = build_push_stack()
        trace = trace_from_times(X, [10.0, 30.0, 50.0], end_time=100.0)
        PushUpdateFeeder(kernel, channel, trace)
        client.register_object(X)
        kernel.run(until=100.0)
        # Every update reached the cache at its commit instant: the
        # temporal out-of-sync time is zero for ANY delta.
        report = collect_temporal(proxy, trace, delta=0.001).report
        assert report.out_sync_time == 0.0
        assert report.violations == 0
        # Exactly one fetch per update plus the initial fetch.
        assert proxy.entry_for(X).poll_count == 4

    def test_push_cost_scales_with_updates_not_time(self):
        kernel, server, proxy, channel, client = build_push_stack()
        trace = trace_from_times(X, [10.0], end_time=100000.0)
        PushUpdateFeeder(kernel, channel, trace)
        client.register_object(X)
        kernel.run(until=100000.0)
        # One update → two polls total, regardless of the horizon.
        assert proxy.entry_for(X).poll_count == 2

    def test_duplicate_registration_rejected(self):
        kernel, server, proxy, channel, client = build_push_stack()
        server.create_object(X, created_at=0.0)
        client.register_object(X)
        with pytest.raises(ValueError):
            client.register_object(X)

    def test_deregister_stops_push_fetches(self):
        kernel, server, proxy, channel, client = build_push_stack()
        trace = trace_from_times(X, [10.0, 50.0], end_time=100.0)
        PushUpdateFeeder(kernel, channel, trace)
        client.register_object(X)
        kernel.run(until=20.0)
        client.deregister_object(X)
        kernel.run(until=100.0)
        assert client.counters.get("pushes_received") == 1

    def test_cache_version_tracks_server(self):
        kernel, server, proxy, channel, client = build_push_stack()
        trace = trace_from_times(X, [10.0, 30.0], end_time=50.0)
        PushUpdateFeeder(kernel, channel, trace)
        client.register_object(X)
        kernel.run(until=20.0)
        assert proxy.entry_for(X).snapshot.version == 1
        kernel.run(until=50.0)
        assert proxy.entry_for(X).snapshot.version == 2

    def test_push_with_latency_bounded_staleness(self):
        kernel, server, proxy, channel, client = build_push_stack(
            notify_latency=1.5
        )
        trace = trace_from_times(X, [10.0, 30.0], end_time=60.0)
        PushUpdateFeeder(kernel, channel, trace)
        client.register_object(X)
        kernel.run(until=60.0)
        # Staleness is exactly the notification latency per update.
        report = collect_temporal(proxy, trace, delta=2.0).report
        assert report.out_sync_time == 0.0
        report_tight = collect_temporal(proxy, trace, delta=1.0).report
        assert report_tight.out_sync_time == pytest.approx(2 * 0.5)


def test_push_callback_alias_still_importable():
    # The signature's canonical home moved to repro.topology.protocols;
    # the historical import path keeps working.
    from repro.consistency.invalidation import PushCallback
    from repro.topology.protocols import PushCallback as canonical

    assert PushCallback is canonical


class TestAttachPushChannel:
    """The channel as the server's update tap (topology-layer wiring)."""

    def test_attached_channel_sees_direct_server_updates(self):
        kernel, server, proxy, channel, _ = build_push_stack()
        server.create_object(X, created_at=0.0)
        attach_push_channel(channel)
        assert channel.attached
        seen = []
        channel.subscribe(X, lambda oid, t: seen.append(t))
        # Updates applied at the server directly — the path the trace
        # feeders use — now reach subscribers too.
        server.apply_update(X, 4.0)
        assert seen == [4.0]

    def test_apply_update_never_double_notifies_when_attached(self):
        kernel, server, proxy, channel, _ = build_push_stack()
        server.create_object(X, created_at=0.0)
        attach_push_channel(channel)
        attach_push_channel(channel)  # idempotent
        seen = []
        channel.subscribe(X, lambda oid, t: seen.append(t))
        channel.apply_update(X, 7.0)
        assert seen == [7.0]
        assert channel.counters.get("notifications") == 1


class TestMessageCostCrossover:
    """Pin the module's cost-model claim, not just the bench's shape.

    Push sends one notification + one fetch per *update*; polling
    sends one conditional GET per *poll interval*.  Message cost must
    therefore scale with the update rate under push and with the poll
    rate (horizon / Δ) under pull, independent of the other knob.
    """

    HORIZON = 10_000.0

    def _push_messages(self, update_times):
        kernel, server, proxy, channel, client = build_push_stack()
        trace = trace_from_times(X, update_times, end_time=self.HORIZON)
        PushUpdateFeeder(kernel, channel, trace)
        client.register_object(X)
        kernel.run(until=self.HORIZON)
        return (
            channel.counters.get("notifications")
            + proxy.entry_for(X).poll_count
        )

    def _pull_messages(self, update_times, delta):
        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        trace = trace_from_times(X, update_times, end_time=self.HORIZON)
        from repro.server.updates import feed_traces

        feed_traces(kernel, server, [trace])
        proxy.register_object(
            X, server, fixed_policy_factory(delta)(X)
        )
        kernel.run(until=self.HORIZON)
        return proxy.entry_for(X).poll_count

    def test_push_cost_scales_with_update_rate(self):
        sparse = [float(t) for t in range(1000, 2000, 100)]  # 10 updates
        dense = [float(t) for t in range(1000, 2000, 10)]  # 100 updates
        sparse_messages = self._push_messages(sparse)
        dense_messages = self._push_messages(dense)
        # 2 messages (notification + fetch) per update, +1 initial fetch.
        assert sparse_messages == 2 * len(sparse) + 1
        assert dense_messages == 2 * len(dense) + 1

    def test_pull_cost_scales_with_poll_rate_not_updates(self):
        sparse = [float(t) for t in range(1000, 2000, 100)]
        dense = [float(t) for t in range(1000, 2000, 10)]
        delta = 100.0
        # Ten times the updates, identical message cost.
        assert self._pull_messages(sparse, delta) == self._pull_messages(
            dense, delta
        )
        # Ten times the poll rate, ~ten times the message cost.
        tight = self._pull_messages(sparse, delta / 10)
        loose = self._pull_messages(sparse, delta)
        assert tight == pytest.approx(10 * loose, rel=0.02)

    def test_crossover_sits_at_update_interval_vs_delta(self):
        updates = [float(t) for t in range(500, 9500, 500)]  # every 500 s
        push = self._push_messages(updates)
        # Polling tighter than the mean update interval costs more
        # messages than push; polling looser costs fewer.
        assert self._pull_messages(updates, 100.0) > push
        assert self._pull_messages(updates, 2000.0) < push
