"""Unit tests for n-object group mutual-consistency metrics."""

from __future__ import annotations

import math

import pytest

from repro.core.types import ObjectId
from repro.metrics.group import (
    group_interval_spread,
    group_mutually_consistent_at,
    group_temporal_fidelity,
)
from repro.traces.model import trace_from_times

A, B, C = ObjectId("a"), ObjectId("b"), ObjectId("c")


def t_trace(oid, times, end=1000.0):
    return trace_from_times(oid, times, start_time=0.0, end_time=end)


class TestGroupIntervalSpread:
    def test_common_overlap_is_zero(self):
        intervals = [(0.0, 10.0), (5.0, 15.0), (8.0, 20.0)]
        assert group_interval_spread(intervals) == 0.0

    def test_spread_is_latest_start_minus_earliest_end(self):
        intervals = [(0.0, 10.0), (25.0, 30.0), (5.0, 40.0)]
        assert group_interval_spread(intervals) == 15.0

    def test_single_interval_is_zero(self):
        assert group_interval_spread([(3.0, 7.0)]) == 0.0

    def test_pairwise_reduces_to_interval_gap(self):
        from repro.metrics.mutual import interval_gap

        a, b = (0.0, 10.0), (25.0, 30.0)
        assert group_interval_spread([a, b]) == interval_gap(a, b)

    def test_open_ended_intervals(self):
        intervals = [(0.0, math.inf), (100.0, math.inf)]
        assert group_interval_spread(intervals) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            group_interval_spread([])


class TestGroupConsistentAt:
    def test_three_way_consistency(self):
        traces = {
            A: t_trace(A, [10.0, 50.0]),
            B: t_trace(B, [12.0, 60.0]),
            C: t_trace(C, [15.0, 55.0]),
        }
        # All cached versions from the first wave: validity intervals
        # [10,50), [12,60), [15,55) — common overlap.
        origins = {A: 10.0, B: 12.0, C: 15.0}
        assert group_mutually_consistent_at(traces, origins, 0.0)

    def test_one_straggler_breaks_group(self):
        traces = {
            A: t_trace(A, [10.0, 20.0]),
            B: t_trace(B, [12.0, 60.0]),
            C: t_trace(C, [50.0]),
        }
        # a's cached version [10,20) vs c's [50,inf): spread 30.
        origins = {A: 10.0, B: 12.0, C: 50.0}
        assert not group_mutually_consistent_at(traces, origins, 10.0)
        assert group_mutually_consistent_at(traces, origins, 30.0)


class TestGroupTemporalFidelity:
    def test_synchronized_group_is_clean(self):
        traces = {
            A: t_trace(A, [25.0], end=100.0),
            B: t_trace(B, [25.0], end=100.0),
            C: t_trace(C, [25.0], end=100.0),
        }
        fetches = {
            oid: [(0.0, 0.0), (30.0, 25.0)] for oid in (A, B, C)
        }
        report = group_temporal_fidelity(traces, fetches, delta=0.0)
        assert report.violations == 0
        assert report.out_sync_time == 0.0
        assert report.polls == 6

    def test_stale_member_counts_violations_and_time(self):
        traces = {
            A: t_trace(A, [25.0], end=100.0),
            B: t_trace(B, [20.0], end=100.0),
        }
        fetches = {
            A: [(0.0, 0.0), (30.0, 25.0)],
            B: [(0.0, 0.0)],  # never refreshed after b's update
        }
        report = group_temporal_fidelity(traces, fetches, delta=2.0)
        assert report.violations == 1
        assert report.out_sync_time == pytest.approx(70.0)

    def test_matches_pairwise_metric_for_two_objects(self):
        from repro.metrics.mutual import mutual_temporal_fidelity

        traces = {
            A: t_trace(A, [25.0, 70.0], end=100.0),
            B: t_trace(B, [20.0, 80.0], end=100.0),
        }
        fetches = {
            A: [(0.0, 0.0), (30.0, 25.0), (75.0, 70.0)],
            B: [(0.0, 0.0), (50.0, 20.0)],
        }
        group_report = group_temporal_fidelity(traces, fetches, delta=5.0)
        pair_report = mutual_temporal_fidelity(
            traces[A], traces[B], fetches[A], fetches[B], 5.0
        )
        assert group_report.violations == pair_report.violations
        assert group_report.out_sync_time == pytest.approx(
            pair_report.out_sync_time
        )

    def test_mismatched_keys_rejected(self):
        traces = {A: t_trace(A, []), B: t_trace(B, [])}
        with pytest.raises(ValueError, match="same objects"):
            group_temporal_fidelity(traces, {A: []}, delta=1.0)

    def test_single_member_rejected(self):
        with pytest.raises(ValueError, match="two members"):
            group_temporal_fidelity(
                {A: t_trace(A, [])}, {A: []}, delta=1.0
            )

    def test_negative_delta_rejected(self):
        traces = {A: t_trace(A, []), B: t_trace(B, [])}
        with pytest.raises(ValueError):
            group_temporal_fidelity(traces, {A: [], B: []}, delta=-1.0)


class TestPartitionedGroupCoordinator:
    def test_three_member_group_maintains_pairwise_budget(self):
        from repro.consistency.mutual_value import (
            PartitionedGroupMvCoordinator,
            PartitionParameters,
        )
        from repro.core.types import TTRBounds
        from repro.httpsim.network import Network
        from repro.proxy.proxy import ProxyCache
        from repro.server.origin import OriginServer
        from repro.server.updates import UpdateFeeder
        from repro.sim.kernel import Kernel
        from repro.traces.model import trace_from_ticks

        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel))
        members = (A, B, C)
        rates = {A: 0.5, B: 2.0, C: 8.0}
        for oid in members:
            ticks = [
                (5.0 + 10.0 * i, rates[oid] * i) for i in range(25)
            ]
            UpdateFeeder(
                kernel, server,
                trace_from_ticks(oid, ticks, end_time=300.0),
            )
        delta = 3.0
        coordinator = PartitionedGroupMvCoordinator(
            proxy, members, delta,
            bounds=TTRBounds(ttr_min=1.0, ttr_max=50.0),
            parameters=PartitionParameters(reapportion_interval=30.0),
        )
        coordinator.setup({oid: server for oid in members})
        kernel.run(until=300.0)

        assert coordinator.counters.get("reapportionments") > 0
        tolerances = coordinator.current_tolerances()
        # Slower objects earn larger tolerances.
        assert tolerances[A] > tolerances[B] > tolerances[C]
        # Pairwise budget: the two largest tolerances sum to <= delta
        # (small slack for the min-fraction floor).
        assert coordinator.max_pair_tolerance_sum() <= delta * 1.05

    def test_duplicate_members_rejected(self):
        from repro.consistency.mutual_value import PartitionedGroupMvCoordinator
        from repro.core.errors import PolicyConfigurationError
        from repro.core.types import TTRBounds
        from repro.httpsim.network import Network
        from repro.proxy.proxy import ProxyCache
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        proxy = ProxyCache(kernel, Network(kernel))
        with pytest.raises(PolicyConfigurationError):
            PartitionedGroupMvCoordinator(
                proxy, (A, A), 1.0, bounds=TTRBounds(ttr_min=1.0, ttr_max=10.0)
            )
