"""CLI tests for the ``repro scenarios`` command group."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_every_registered_scenario(self, capsys):
        from repro.scenarios import SCENARIOS

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS.names():
            assert name in out

    def test_mentions_run_hint(self, capsys):
        assert main(["scenarios", "list"]) == 0
        assert "scenarios run" in capsys.readouterr().out


class TestDescribe:
    def test_describe_shows_axis_and_params(self, capsys):
        assert main(["scenarios", "describe", "flash_crowd"]) == 0
        out = capsys.readouterr().out
        assert "surge_intensity" in out
        assert "total_updates" in out

    def test_unknown_name_exits_2(self, capsys):
        assert main(["scenarios", "describe", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "figure3" in err  # the known names are listed


class TestRun:
    def test_run_prints_table(self, capsys):
        assert main(["scenarios", "run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "AT&T" in out
        assert "Yahoo" in out

    def test_run_with_values_override(self, capsys):
        assert (
            main(["scenarios", "run", "figure3", "--values", "10"]) == 0
        )
        out = capsys.readouterr().out
        assert "limd_polls" in out

    def test_run_with_params_override(self, capsys):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "ablation_history",
                    "--params",
                    "trace=cnn_fn",
                ]
            )
            == 0
        )
        assert "detection" in capsys.readouterr().out

    def test_run_json_output(self, capsys):
        assert (
            main(
                ["scenarios", "run", "table2", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "table2"
        assert payload["rows"]
        assert payload["rows"][0]["key"] == "cnn_fn"

    def test_run_workers_matches_serial(self, capsys):
        assert main(["scenarios", "run", "table2"]) == 0
        serial = capsys.readouterr().out
        assert main(["scenarios", "run", "table2", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenarios", "run", "no_such"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_param_exits_2(self, capsys):
        assert (
            main(["scenarios", "run", "figure3", "--params", "bogus=1"]) == 2
        )
        err = capsys.readouterr().err
        assert "invalid scenario configuration" in err
        assert "bogus" in err

    def test_bad_param_value_exits_2(self, capsys):
        """Valid key, invalid value: clean exit, no traceback."""
        assert (
            main(
                ["scenarios", "run", "figure3", "--params", "trace=bogus"]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "invalid scenario configuration" in err
        assert "bogus" in err

    def test_malformed_param_exits_2(self, capsys):
        assert (
            main(["scenarios", "run", "figure3", "--params", "noequals"])
            == 2
        )
        assert "malformed" in capsys.readouterr().err

    def test_missing_subcommand_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenarios"])
        assert excinfo.value.code != 0

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "table2", "--workers", "0"])


class TestRunCapacityFamilies:
    """The finite-capacity families run end-to-end through the CLI."""

    _TINY_EDGE = [
        "--values",
        "2",
        "--params",
        "objects=4",
        "fan_out=2",
        "total_updates=120",
        "hours=6.0",
        "surge_start_hour=3.0",
    ]

    def test_capacity_edge_prints_eviction_columns(self, capsys):
        assert (
            main(["scenarios", "run", "capacity_edge"] + self._TINY_EDGE)
            == 0
        )
        out = capsys.readouterr().out
        assert "evictions" in out
        assert "staleness_violations" in out

    def test_capacity_edge_eviction_param_overridable(self, capsys):
        args = ["scenarios", "run", "capacity_edge", "--json"]
        args += self._TINY_EDGE + ["eviction=lru"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["params"]["eviction"] == "lru"
        assert payload["rows"][0]["evictions"] > 0

    def test_ttl_class_mix_json_rows(self, capsys):
        assert (
            main(
                ["scenarios", "run", "ttl_class_mix", "--json", "--values", "2.0"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "ttl_class_mix"
        row = payload["rows"][0]
        assert row["ttl_min"] == 2.0
        assert row["evictions"] > 0
        assert row["refetch_after_evict"] <= row["evictions"]

    def test_ttl_class_mix_workers_matches_serial(self, capsys):
        assert main(["scenarios", "run", "ttl_class_mix"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["scenarios", "run", "ttl_class_mix", "--workers", "2"]) == 0
        )
        assert capsys.readouterr().out == serial


class TestClassicCliUnaffected:
    def test_experiment_list_mentions_scenarios_group(self, capsys):
        assert main(["list"]) == 0
        assert "scenarios list" in capsys.readouterr().out

    def test_unknown_experiment_still_exits_2(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
