"""Unit and property tests for the sports-score trace generator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ObjectId
from repro.traces.sports import (
    DEFAULT_LINEUP,
    PlayerSpec,
    SportsMatchSpec,
    generate_match,
    server_sum_error_at,
)


@pytest.fixture
def match():
    return generate_match(SportsMatchSpec(scoring_events=60), random.Random(11))


class TestSpecValidation:
    def test_default_spec_is_valid(self):
        SportsMatchSpec()

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            SportsMatchSpec(duration=0.0)

    def test_rejects_zero_events(self):
        with pytest.raises(ValueError):
            SportsMatchSpec(scoring_events=0)

    def test_rejects_single_player(self):
        with pytest.raises(ValueError):
            SportsMatchSpec(players=(PlayerSpec("solo", "Solo"),))

    def test_rejects_duplicate_player_keys(self):
        with pytest.raises(ValueError):
            SportsMatchSpec(
                players=(PlayerSpec("a", "A"), PlayerSpec("a", "B"))
            )

    def test_rejects_mismatched_point_weights(self):
        with pytest.raises(ValueError):
            SportsMatchSpec(point_values=(1, 2), point_weights=(1.0,))

    def test_rejects_nonpositive_point_value(self):
        with pytest.raises(ValueError):
            SportsMatchSpec(point_values=(0, 2), point_weights=(1.0, 1.0))

    def test_rejects_nonpositive_scoring_weight(self):
        with pytest.raises(ValueError):
            PlayerSpec("p", "P", scoring_weight=0.0)

    def test_object_id_helpers(self):
        spec = SportsMatchSpec(key="final")
        assert spec.player_object_id("star") == ObjectId("final.star")
        assert spec.total_object_id == ObjectId("final.total")


class TestGeneration:
    def test_event_count_matches_spec(self, match):
        assert len(match.events) == 60
        assert match.total.update_count == 60

    def test_member_ids_players_then_total(self, match):
        ids = match.member_ids
        assert ids[-1] == match.total.object_id
        assert set(ids[:-1]) == set(match.players)

    def test_every_player_has_a_trace(self, match):
        assert len(match.players) == len(DEFAULT_LINEUP)

    def test_total_is_sum_of_finals(self, match):
        finals = match.final_scores()
        assert match.total.records[-1].value == sum(finals.values())

    def test_scores_are_monotone(self, match):
        for trace in list(match.players.values()) + [match.total]:
            values = [r.value for r in trace.records]
            assert values == sorted(values)

    def test_event_times_strictly_increasing(self, match):
        times = [e.time for e in match.events]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_events_stay_inside_match(self, match):
        assert all(0.0 < e.time <= match.spec.duration for e in match.events)

    def test_server_sum_error_is_zero_at_every_event(self, match):
        for event in match.events:
            assert server_sum_error_at(match, event.time) == 0.0

    def test_deterministic_for_seed(self):
        spec = SportsMatchSpec(scoring_events=40)
        one = generate_match(spec, random.Random(3))
        two = generate_match(spec, random.Random(3))
        assert [e.time for e in one.events] == [e.time for e in two.events]
        assert one.final_scores() == two.final_scores()

    def test_star_outsources_role_players_in_expectation(self):
        # weight 3.0 vs 1.0 over many events: the star should lead.
        spec = SportsMatchSpec(scoring_events=600)
        match = generate_match(spec, random.Random(5))
        finals = match.final_scores()
        star = finals[spec.player_object_id("star")]
        center = finals[spec.player_object_id("center")]
        assert star > center


class TestSumInvariantProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        events=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=25, deadline=None)
    def test_total_equals_player_sum_at_all_probes(self, seed, events):
        spec = SportsMatchSpec(scoring_events=events)
        match = generate_match(spec, random.Random(seed))
        probes = [0.0, spec.duration / 3, spec.duration / 2, spec.duration]
        probes += [e.time for e in match.events[:: max(1, events // 5)]]
        for t in probes:
            assert server_sum_error_at(match, t) == pytest.approx(0.0)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_points_accounting_matches_events(self, seed):
        spec = SportsMatchSpec(scoring_events=50)
        match = generate_match(spec, random.Random(seed))
        replayed = sum(e.points for e in match.events)
        assert match.events[-1].team_total == replayed
