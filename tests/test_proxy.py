"""Unit tests for the proxy cache, refresher, and client path."""

from __future__ import annotations

import pytest

from repro.consistency.base import FixedTTRPolicy, PassivePolicy
from repro.core.errors import CacheConfigurationError, UnknownObjectError
from repro.core.events import PollEvent, PollReason
from repro.core.types import ObjectId
from repro.httpsim.network import LatencyModel, Network
from repro.proxy.cache import ObjectCache
from repro.proxy.client import Client
from repro.proxy.entry import CacheEntry
from repro.proxy.proxy import ProxyCache
from repro.server.origin import OriginServer
from repro.server.updates import UpdateFeeder
from repro.sim.kernel import Kernel
from repro.sim.tracing import EventLog
from repro.traces.model import trace_from_times


def build_stack(*, want_history=True, triggered_reschedule=False):
    kernel = Kernel()
    server = OriginServer()
    log = EventLog()
    proxy = ProxyCache(
        kernel,
        Network(kernel),
        want_history=want_history,
        event_log=log,
        triggered_polls_reschedule=triggered_reschedule,
    )
    return kernel, server, proxy, log


class TestCacheEntry:
    def test_record_fetch_updates_snapshot(self):
        from repro.core.types import ObjectSnapshot

        entry = CacheEntry(ObjectId("x"))
        assert not entry.populated
        snap = ObjectSnapshot(ObjectId("x"), version=1, last_modified=5.0)
        entry.record_fetch(10.0, snap, modified=True, reason=PollReason.INITIAL_FETCH)
        assert entry.populated
        assert entry.snapshot is snap
        assert entry.poll_count == 1
        assert entry.last_poll_time == 10.0
        assert entry.cached_version_origin == 5.0

    def test_fetches_must_be_time_ordered(self):
        from repro.core.types import ObjectSnapshot

        entry = CacheEntry(ObjectId("x"))
        snap = ObjectSnapshot(ObjectId("x"), version=1, last_modified=5.0)
        entry.record_fetch(10.0, snap, modified=True, reason=PollReason.INITIAL_FETCH)
        with pytest.raises(ValueError):
            entry.record_fetch(9.0, snap, modified=False, reason=PollReason.TTR_EXPIRED)

    def test_known_modification_times_dedupes_304_revalidations(self):
        from repro.core.types import ObjectSnapshot

        entry = CacheEntry(ObjectId("x"))
        v1 = ObjectSnapshot(ObjectId("x"), version=1, last_modified=5.0)
        v2 = ObjectSnapshot(ObjectId("x"), version=2, last_modified=30.0)
        entry.record_fetch(10.0, v1, modified=True, reason=PollReason.INITIAL_FETCH)
        # A 304 revalidation re-records the same snapshot.
        entry.record_fetch(20.0, v1, modified=False, reason=PollReason.TTR_EXPIRED)
        entry.record_fetch(40.0, v2, modified=True, reason=PollReason.TTR_EXPIRED)
        assert entry.known_modification_times() == [5.0, 30.0]

    def test_known_modification_times_empty_before_fetches(self):
        entry = CacheEntry(ObjectId("x"))
        assert entry.known_modification_times() == []


class TestObjectCache:
    def test_unbounded_by_default(self):
        cache = ObjectCache()
        for i in range(1000):
            cache.put(CacheEntry(ObjectId(f"o{i}")))
        assert len(cache) == 1000
        assert cache.eviction_count == 0

    def test_lru_evicts_least_recently_used(self):
        cache = ObjectCache(capacity=2, eviction="lru")
        cache.put(CacheEntry(ObjectId("a")))
        cache.put(CacheEntry(ObjectId("b")))
        cache.get(ObjectId("a"))  # touch a → b is LRU
        evicted = cache.put(CacheEntry(ObjectId("c")))
        assert evicted is not None and evicted.object_id == ObjectId("b")
        assert ObjectId("a") in cache and ObjectId("c") in cache

    def test_lfu_evicts_least_frequently_used(self):
        cache = ObjectCache(capacity=2, eviction="lfu")
        cache.put(CacheEntry(ObjectId("a")))
        cache.put(CacheEntry(ObjectId("b")))
        for _ in range(3):
            cache.get(ObjectId("a"))
        cache.get(ObjectId("b"))
        evicted = cache.put(CacheEntry(ObjectId("c")))
        assert evicted is not None and evicted.object_id == ObjectId("b")

    def test_get_or_create(self):
        cache = ObjectCache()
        entry = cache.get_or_create(ObjectId("x"))
        assert cache.get_or_create(ObjectId("x")) is entry

    def test_remove(self):
        cache = ObjectCache()
        cache.put(CacheEntry(ObjectId("x")))
        removed = cache.remove(ObjectId("x"))
        assert removed is not None
        assert cache.remove(ObjectId("x")) is None

    def test_put_same_id_replaces_without_eviction(self):
        cache = ObjectCache(capacity=1)
        cache.put(CacheEntry(ObjectId("x")))
        assert cache.put(CacheEntry(ObjectId("x"))) is None
        assert cache.eviction_count == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(CacheConfigurationError):
            ObjectCache(capacity=0)


class TestProxyPolling:
    def test_registration_does_initial_fetch(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"), created_at=0.0)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        entry = proxy.entry_for(ObjectId("x"))
        assert entry.populated
        assert entry.snapshot.version == 0
        assert proxy.counters.get("polls") == 1

    def test_ttr_driven_refresh_sees_updates(self):
        kernel, server, proxy, _ = build_stack()
        trace = trace_from_times(ObjectId("x"), [15.0], end_time=100.0)
        UpdateFeeder(kernel, server, trace)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        kernel.run(until=100.0)
        entry = proxy.entry_for(ObjectId("x"))
        assert entry.snapshot.version == 1
        # Initial fetch + polls at 10,20,...,100.
        assert entry.poll_count == 11

    def test_304_keeps_snapshot(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"), created_at=0.0)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        kernel.run(until=30.0)
        entry = proxy.entry_for(ObjectId("x"))
        assert entry.snapshot.version == 0
        assert all(not r.modified for r in entry.fetch_log[1:])

    def test_poll_outcome_history_fields(self):
        kernel, server, proxy, _ = build_stack(want_history=True)
        trace = trace_from_times(ObjectId("x"), [3.0, 5.0, 7.0], end_time=100.0)
        UpdateFeeder(kernel, server, trace)
        seen = []

        class Observer:
            def on_poll_complete(self, object_id, outcome):
                seen.append(outcome)

        proxy.add_observer(Observer())
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        kernel.run(until=10.0)
        modified = [o for o in seen if o.modified and o.poll_time == 10.0]
        assert len(modified) == 1
        assert modified[0].first_unseen_update == 3.0
        assert modified[0].updates_since_last_poll == 3

    def test_no_history_when_disabled(self):
        kernel, server, proxy, _ = build_stack(want_history=False)
        trace = trace_from_times(ObjectId("x"), [3.0], end_time=100.0)
        UpdateFeeder(kernel, server, trace)
        seen = []

        class Observer:
            def on_poll_complete(self, object_id, outcome):
                seen.append(outcome)

        proxy.add_observer(Observer())
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        kernel.run(until=10.0)
        modified = [o for o in seen if o.modified and o.poll_time > 0]
        assert modified and modified[0].first_unseen_update is None

    def test_duplicate_registration_rejected(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"))
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        with pytest.raises(CacheConfigurationError):
            proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))

    def test_deregister_stops_polling(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"))
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        proxy.deregister_object(ObjectId("x"))
        kernel.run(until=100.0)
        assert proxy.entry_for(ObjectId("x")).poll_count == 1  # initial only

    def test_deregister_unknown_rejected(self):
        kernel, server, proxy, _ = build_stack()
        with pytest.raises(UnknownObjectError):
            proxy.deregister_object(ObjectId("nope"))

    def test_passive_policy_never_schedules(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"))
        proxy.register_object(ObjectId("x"), server, PassivePolicy())
        kernel.run(until=1000.0)
        assert proxy.entry_for(ObjectId("x")).poll_count == 1

    def test_poll_events_logged_with_ttr(self):
        kernel, server, proxy, log = build_stack()
        server.create_object(ObjectId("x"))
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        kernel.run(until=25.0)
        events = log.of_type(PollEvent)
        assert len(events) == 3
        assert events[0].reason is PollReason.INITIAL_FETCH
        assert events[1].reason is PollReason.TTR_EXPIRED
        assert events[1].ttr_after == 10.0


class TestTriggeredPolls:
    def _setup(self, reschedule):
        kernel, server, proxy, _ = build_stack(triggered_reschedule=reschedule)
        server.create_object(ObjectId("x"), created_at=0.0)
        refresher = proxy.register_object(
            ObjectId("x"), server, FixedTTRPolicy(ttr=10.0)
        )
        return kernel, proxy, refresher

    def test_additional_mode_keeps_schedule(self):
        kernel, proxy, refresher = self._setup(reschedule=False)
        kernel.schedule_at(
            5.0,
            lambda k: proxy.trigger_poll(
                ObjectId("x"), reason=PollReason.MUTUAL_TRIGGER
            ),
        )
        kernel.run(until=12.0)
        entry = proxy.entry_for(ObjectId("x"))
        # initial(0) + trigger(5) + scheduled(10): schedule unchanged.
        assert [r.time for r in entry.fetch_log] == [0.0, 5.0, 10.0]

    def test_reschedule_mode_shifts_schedule(self):
        kernel, proxy, refresher = self._setup(reschedule=True)
        kernel.schedule_at(
            5.0,
            lambda k: proxy.trigger_poll(
                ObjectId("x"), reason=PollReason.MUTUAL_TRIGGER
            ),
        )
        kernel.run(until=16.0)
        entry = proxy.entry_for(ObjectId("x"))
        # initial(0) + trigger(5) + next at 15 (5+10).
        assert [r.time for r in entry.fetch_log] == [0.0, 5.0, 15.0]

    def test_triggered_poll_updates_last_poll_time(self):
        kernel, proxy, refresher = self._setup(reschedule=False)
        kernel.schedule_at(
            5.0,
            lambda k: proxy.trigger_poll(
                ObjectId("x"), reason=PollReason.MUTUAL_TRIGGER
            ),
        )
        kernel.run(until=6.0)
        assert refresher.last_poll_time == 5.0


class TestClientPath:
    def test_hit_serves_cached_snapshot(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"), created_at=0.0)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        client = Client(kernel, proxy)
        snapshot = client.request(ObjectId("x"))
        assert snapshot.version == 0
        assert client.counters.get("hits") == 1
        assert client.hit_ratio == 1.0

    def test_miss_fetches_and_populates(self):
        kernel, server, proxy, _ = build_stack()
        server.create_object(ObjectId("x"), created_at=0.0)
        proxy.bind_server(ObjectId("x"), server)
        client = Client(kernel, proxy)
        snapshot = client.request(ObjectId("x"))
        assert snapshot.version == 0
        assert client.counters.get("misses") == 1
        # Second request hits.
        client.request(ObjectId("x"))
        assert client.counters.get("hits") == 1

    def test_request_for_unbound_object_rejected(self):
        kernel, server, proxy, _ = build_stack()
        client = Client(kernel, proxy)
        with pytest.raises(UnknownObjectError):
            client.request(ObjectId("nope"))

    def test_versions_served_monotonic(self):
        """Section 2: versions served to clients never go backwards."""
        kernel, server, proxy, _ = build_stack()
        trace = trace_from_times(
            ObjectId("x"), [5.0, 15.0, 25.0], end_time=100.0
        )
        UpdateFeeder(kernel, server, trace)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        client = Client(kernel, proxy)
        for t in range(0, 60, 3):
            kernel.schedule_at(float(t), lambda k: client.request(ObjectId("x")))
        kernel.run(until=100.0)
        versions = client.versions_served(ObjectId("x"))
        assert versions == sorted(versions)


class TestLatencyIntegration:
    def test_polls_complete_after_round_trip(self):
        kernel = Kernel()
        server = OriginServer()
        proxy = ProxyCache(kernel, Network(kernel, LatencyModel(one_way=1.0)))
        server.create_object(ObjectId("x"), created_at=0.0)
        proxy.register_object(ObjectId("x"), server, FixedTTRPolicy(ttr=10.0))
        # The initial fetch is in flight; entry exists but is empty.
        assert not proxy.entry_for(ObjectId("x")).populated
        kernel.run(until=3.0)
        assert proxy.entry_for(ObjectId("x")).populated
        # Fetch completed at t=2 (1s each way).
        assert proxy.entry_for(ObjectId("x")).last_poll_time == 2.0


class TestOutOfOrderResponses:
    """Jittered latency can deliver poll responses out of order; the
    cached version must never regress (paper Section 2: P_t increases
    monotonically)."""

    class _ScriptedRandom:
        """random.Random stand-in returning scripted uniform() samples."""

        def __init__(self, values):
            self._values = iter(values)

        def uniform(self, _a, _b):
            return next(self._values)

    def test_overtaken_response_does_not_regress_version(self):
        kernel = Kernel()
        server = OriginServer()
        X = ObjectId("x")
        server.create_object(X, created_at=0.0)
        # Poll A at t=50: forward +4 (→9 s, server at 59), back −4 (→1 s,
        # arrives 60).  Poll B at t=50.5: forward −4 (→1 s, server at
        # 51.5), back +4 (→9 s, arrives 60.5).  The server updates at 55,
        # so A carries v1 and the later-arriving B carries v0.
        net = Network(
            kernel,
            LatencyModel(one_way=5.0, jitter=4.0),
            rng=self._ScriptedRandom([4.0, -4.0, 4.0, -4.0]),
        )
        proxy = ProxyCache(kernel, net)
        proxy.register_object(
            X, server, FixedTTRPolicy(ttr=1000.0), initial_fetch=False
        )
        kernel.schedule_at(55.0, lambda k: server.apply_update(X, 55.0))
        for when in (50.0, 50.5):
            kernel.schedule_at(
                when,
                lambda k: proxy.trigger_poll(
                    X, reason=PollReason.MUTUAL_TRIGGER
                ),
            )
        kernel.run(until=200.0)

        snapshot = proxy.entry_for(X).snapshot
        assert snapshot is not None and snapshot.version == 1
        assert proxy.counters.get("stale_responses") == 1
        versions = [
            record.snapshot.version
            for record in proxy.entry_for(X).fetch_log
        ]
        assert versions == sorted(versions)

    def test_stale_response_counts_as_revalidation(self):
        kernel = Kernel()
        server = OriginServer()
        X = ObjectId("x")
        server.create_object(X, created_at=0.0)
        net = Network(
            kernel,
            LatencyModel(one_way=5.0, jitter=4.0),
            rng=self._ScriptedRandom([4.0, -4.0, 4.0, -4.0]),
        )
        proxy = ProxyCache(kernel, net)
        proxy.register_object(
            X, server, FixedTTRPolicy(ttr=1000.0), initial_fetch=False
        )
        kernel.schedule_at(55.0, lambda k: server.apply_update(X, 55.0))
        for when in (50.0, 50.5):
            kernel.schedule_at(
                when,
                lambda k: proxy.trigger_poll(
                    X, reason=PollReason.MUTUAL_TRIGGER
                ),
            )
        kernel.run(until=200.0)
        log = proxy.entry_for(X).fetch_log
        # The overtaken response is recorded as a non-modified fetch of
        # the (newer) cached copy — the 304 semantics.
        assert [record.modified for record in log] == [True, False]
