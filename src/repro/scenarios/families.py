"""New scenario families beyond the paper's evaluation.

Six families exercise the scenario engine on regimes the paper never
measured:

* **flash_crowd** — a mass-conserving surge window concentrates updates
  into a burst; sweeps surge intensity.
* **diurnal** — sinusoidally modulated update rate; sweeps modulation
  amplitude from flat Poisson to rate-touching-zero nights.
* **failure_churn** — the proxy crashes and recovers on an alternating
  up/down schedule; sweeps the mean uptime (more churn to the left).
* **hetero_mix** — one cache holds a news page, a stock quote, and a
  synthetic Poisson object simultaneously; sweeps the shared Δ.
* **cdn_tree** — a CDN-style edge tree (one shield proxy fanning out to
  k² edges) absorbs a flash crowd; sweeps the fan-out and reports
  origin shielding vs edge staleness (topology layer,
  :mod:`repro.topology`).
* **hybrid_push_pull** — a push root with polling edges against the
  same tree running pure pull; sweeps the edge Δ across the
  message-cost crossover quantified by ``bench_extension_push``.

Every point derives its RNG seed from the run seed and its axis value
(:func:`repro.core.rng.derive_seed`), so serial and ``workers > 1``
runs are row-for-row identical — the same discipline as the figure
sweeps.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping

from repro.consistency.limd import limd_policy_factory
from repro.core.rng import RngRegistry, derive_seed
from repro.core.types import DAY, HOUR, MINUTE
from repro.experiments.figure3 import PAPER_LIMD_PARAMETERS, TTR_MAX, evaluate_delta
from repro.api.runs import run_individual
from repro.experiments.workloads import news_trace, stock_trace
from repro.httpsim.network import Network
from repro.metrics.collector import collect_snapshot_fidelity, collect_temporal
from repro.proxy.proxy import ProxyCache
from repro.scenarios.registry import prepare_params_seed, scenario
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel
from repro.topology import LevelPolicyFactory, TopologyTree, TreeLevel
from repro.traces.model import UpdateTrace
from repro.traces.synthetic import poisson_trace
from repro.workload.failures import FailureInjector, generate_failure_schedule
from repro.workload.modulation import DiurnalModulation, diurnal_trace
from repro.workload.surges import SurgeWindow, flash_crowd_trace

# ----------------------------------------------------------------------
# Flash crowds
# ----------------------------------------------------------------------


@scenario(
    name="flash_crowd",
    description="Flash-crowd surges: LIMD vs baseline as burst intensity grows",
    axis="surge_intensity",
    values=(1.0, 5.0, 10.0, 25.0, 50.0),
    params={
        "total_updates": 400,
        "hours": 24.0,
        "surge_start_hour": 12.0,
        "surge_duration_min": 30.0,
        "delta_min": 10.0,
    },
    columns=(
        "surge_intensity",
        "updates_in_surge",
        "limd_polls",
        "baseline_polls",
        "poll_ratio",
        "limd_fidelity_violations",
        "limd_fidelity_time",
    ),
    title="Flash crowd: polls and fidelity vs surge intensity",
    tags=("family", "workload"),
    prepare=prepare_params_seed,
)
def _flash_crowd_point(
    surge_intensity: float, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    # float() so numerically equal int/float axis values (e.g. a CLI
    # `--values 25` vs the spec's 25.0) derive the same point seed.
    rng = random.Random(
        derive_seed(seed, f"flash_crowd[{float(surge_intensity)}]")
    )
    end = float(params["hours"]) * HOUR  # type: ignore[arg-type]
    surge = SurgeWindow(
        at=float(params["surge_start_hour"]) * HOUR,  # type: ignore[arg-type]
        duration=float(params["surge_duration_min"]) * MINUTE,  # type: ignore[arg-type]
        intensity=surge_intensity,
    )
    trace = flash_crowd_trace(
        "flash_crowd",
        rng,
        total=int(params["total_updates"]),  # type: ignore[arg-type]
        end=end,
        surges=(surge,),
    )
    in_surge = len(trace.updates_in(surge.at, surge.end))
    row: Dict[str, object] = {"updates_in_surge": in_surge}
    row.update(
        evaluate_delta(trace, float(params["delta_min"]) * MINUTE)  # type: ignore[arg-type]
    )
    return row


# ----------------------------------------------------------------------
# Diurnal load cycles
# ----------------------------------------------------------------------


@scenario(
    name="diurnal",
    description="Diurnal load cycles: LIMD vs baseline as day/night swing grows",
    axis="amplitude",
    values=(0.0, 0.25, 0.5, 0.75, 1.0),
    params={
        "base_rate_per_hour": 12.0,
        "days": 2.0,
        "peak_hour": 14.0,
        "delta_min": 10.0,
    },
    columns=(
        "amplitude",
        "updates",
        "limd_polls",
        "baseline_polls",
        "poll_ratio",
        "limd_fidelity_violations",
        "limd_fidelity_time",
    ),
    title="Diurnal cycles: polls and fidelity vs modulation amplitude",
    tags=("family", "workload"),
    prepare=prepare_params_seed,
)
def _diurnal_point(
    amplitude: float, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    rng = random.Random(derive_seed(seed, f"diurnal[{float(amplitude)}]"))
    modulation = DiurnalModulation(
        base_rate=float(params["base_rate_per_hour"]) / HOUR,  # type: ignore[arg-type]
        amplitude=amplitude,
        period=DAY,
        peak_at=float(params["peak_hour"]) * HOUR,  # type: ignore[arg-type]
    )
    trace = diurnal_trace(
        "diurnal",
        rng,
        modulation,
        end=float(params["days"]) * DAY,  # type: ignore[arg-type]
    )
    row: Dict[str, object] = {"updates": trace.update_count}
    row.update(
        evaluate_delta(trace, float(params["delta_min"]) * MINUTE)  # type: ignore[arg-type]
    )
    return row


# ----------------------------------------------------------------------
# Proxy failure/recovery churn
# ----------------------------------------------------------------------


def _prepare_failure_churn(
    params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    return {
        "trace": news_trace(str(params["trace"]), seed),
        "delta": float(params["delta_min"]) * MINUTE,  # type: ignore[arg-type]
        "mean_downtime": float(params["mean_downtime_min"]) * MINUTE,  # type: ignore[arg-type]
        "seed": seed,
    }


@scenario(
    name="failure_churn",
    description="Proxy crash/recovery churn: cost of losing learned TTR state",
    axis="mean_uptime_min",
    values=(60.0, 120.0, 240.0, 480.0),
    params={"trace": "cnn_fn", "delta_min": 10.0, "mean_downtime_min": 10.0},
    columns=(
        "mean_uptime_min",
        "failures",
        "downtime_fraction",
        "polls",
        "fidelity_violations",
        "fidelity_time",
    ),
    title="Failure churn: LIMD under crash/recovery cycles",
    tags=("family", "failure"),
    prepare=_prepare_failure_churn,
)
def _failure_churn_point(
    mean_uptime_min: float,
    *,
    trace: UpdateTrace,
    delta: float,
    mean_downtime: float,
    seed: int,
) -> Dict[str, object]:
    rng = random.Random(
        derive_seed(seed, f"failure_churn[{float(mean_uptime_min)}]")
    )
    schedule = generate_failure_schedule(
        rng,
        horizon=trace.end_time,
        mean_uptime=mean_uptime_min * MINUTE,
        mean_downtime=mean_downtime,
        start=trace.start_time,
    )
    kernel = Kernel()
    server = OriginServer()
    feed_traces(kernel, server, [trace])
    proxy = ProxyCache(kernel, Network(kernel))
    factory = limd_policy_factory(
        delta, ttr_max=TTR_MAX, parameters=PAPER_LIMD_PARAMETERS
    )
    proxy.register_object(trace.object_id, server, factory(trace.object_id))
    injector = FailureInjector(kernel, proxy, schedule)
    kernel.run(until=trace.end_time)
    report = collect_temporal(proxy, trace, delta).report
    return {
        "failures": schedule.failure_count,
        "downtime_fraction": (
            schedule.total_downtime / trace.duration if trace.duration else 0.0
        ),
        "recoveries": injector.recoveries,
        "polls": report.polls,
        "fidelity_violations": report.fidelity_by_violations,
        "fidelity_time": report.fidelity_by_time,
    }


# ----------------------------------------------------------------------
# Heterogeneous object mixes
# ----------------------------------------------------------------------


def _prepare_hetero_mix(
    params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    synthetic = poisson_trace(
        "synthetic",
        RngRegistry(seed).stream("hetero_mix.synthetic"),
        float(params["synthetic_rate_per_hour"]) / HOUR,  # type: ignore[arg-type]
        end=float(params["hours"]) * HOUR,  # type: ignore[arg-type]
    )
    return {
        "traces": {
            "news": news_trace(str(params["news"]), seed),
            "stock": stock_trace(str(params["stock"]), seed),
            "synthetic": synthetic,
        }
    }


@scenario(
    name="hetero_mix",
    description="Heterogeneous mix: news + stock + synthetic objects in one cache",
    axis="delta_min",
    values=(2.0, 5.0, 10.0, 20.0, 30.0),
    params={
        "news": "cnn_fn",
        "stock": "att",
        "synthetic_rate_per_hour": 6.0,
        "hours": 24.0,
    },
    columns=(
        "delta_min",
        "total_polls",
        "news_polls",
        "stock_polls",
        "synthetic_polls",
        "news_fidelity_time",
        "stock_fidelity_time",
        "synthetic_fidelity_time",
    ),
    title="Heterogeneous mix: one cache, three object classes, shared delta",
    tags=("family", "workload"),
    prepare=_prepare_hetero_mix,
)
def _hetero_mix_point(
    delta_min: float, *, traces: Mapping[str, object]
) -> Dict[str, object]:
    delta = delta_min * MINUTE
    result = run_individual(
        list(traces.values()),
        limd_policy_factory(
            delta, ttr_max=TTR_MAX, parameters=PAPER_LIMD_PARAMETERS
        ),
    )
    row: Dict[str, object] = {"total_polls": result.total_polls}
    for label, trace in traces.items():
        report = collect_temporal(result.proxy, trace, delta).report
        row[f"{label}_polls"] = report.polls
        row[f"{label}_fidelity_violations"] = report.fidelity_by_violations
        row[f"{label}_fidelity_time"] = report.fidelity_by_time
    return row


def _limd_level_factory(delta: float) -> LevelPolicyFactory:
    """A per-(level, object) LIMD factory at one shared Δ."""
    factory = limd_policy_factory(
        delta, ttr_max=TTR_MAX, parameters=PAPER_LIMD_PARAMETERS
    )
    return lambda _level, object_id: factory(object_id)


def _mean_edge_snapshot_fidelity(
    tree: TopologyTree, trace: UpdateTrace, delta: float
) -> float:
    """Mean time-fidelity over the edges, from snapshots actually held.

    Edge polls refresh to *parent*-current (possibly stale) state, so
    poll-time scoring would overestimate freshness — the same
    snapshot-based rule the hierarchy extension uses.
    """
    scores = [
        collect_snapshot_fidelity(
            node.proxy, trace, delta
        ).report.fidelity_by_time
        for node in tree.edge_nodes
    ]
    return sum(scores) / len(scores)


# ----------------------------------------------------------------------
# CDN-style edge trees under flash-crowd load
# ----------------------------------------------------------------------


@scenario(
    name="cdn_tree",
    description="CDN edge tree under a flash crowd: origin shielding vs edge staleness",
    axis="fan_out",
    values=(2, 4, 8),
    params={
        "depth": 3,
        "total_updates": 300,
        "hours": 12.0,
        "surge_start_hour": 6.0,
        "surge_duration_min": 30.0,
        "surge_intensity": 20.0,
        "delta_min": 10.0,
    },
    columns=(
        "fan_out",
        "nodes",
        "edge_nodes",
        "origin_requests",
        "total_polls",
        "polls_per_edge",
        "edge_fidelity_time",
    ),
    title="CDN tree: one shield level fanning out to fan_out^(depth-1) edges",
    tags=("family", "topology"),
    prepare=prepare_params_seed,
)
def _cdn_tree_point(
    fan_out: int, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    rng = random.Random(derive_seed(seed, f"cdn_tree[{int(fan_out)}]"))
    end = float(params["hours"]) * HOUR  # type: ignore[arg-type]
    surge = SurgeWindow(
        at=float(params["surge_start_hour"]) * HOUR,  # type: ignore[arg-type]
        duration=float(params["surge_duration_min"]) * MINUTE,  # type: ignore[arg-type]
        intensity=float(params["surge_intensity"]),  # type: ignore[arg-type]
    )
    trace = flash_crowd_trace(
        "cdn_tree",
        rng,
        total=int(params["total_updates"]),  # type: ignore[arg-type]
        end=end,
        surges=(surge,),
    )
    depth = int(params["depth"])  # type: ignore[arg-type]
    delta = float(params["delta_min"]) * MINUTE  # type: ignore[arg-type]

    kernel = Kernel()
    origin = OriginServer()
    feed_traces(kernel, origin, [trace])
    # One shield node polls the origin; every deeper level fans out.
    tree = TopologyTree(
        kernel,
        origin,
        [TreeLevel(fan_out=1)]
        + [TreeLevel(fan_out=int(fan_out)) for _ in range(depth - 1)],
    )
    tree.register_object(trace.object_id, _limd_level_factory(delta))
    kernel.run(until=trace.end_time)

    edge_count = len(tree.edge_nodes)
    per_level = tree.polls_per_level()
    return {
        "nodes": tree.node_count,
        "edge_nodes": edge_count,
        "origin_requests": tree.origin_request_count(),
        "total_polls": sum(per_level),
        "polls_per_edge": per_level[-1] / edge_count,
        # The additive bound gives the edges depth*delta of slack.
        "edge_fidelity_time": _mean_edge_snapshot_fidelity(
            tree, trace, depth * delta
        ),
    }


# ----------------------------------------------------------------------
# Hybrid push/pull trees: the message-cost crossover
# ----------------------------------------------------------------------


def _prepare_hybrid_push_pull(
    params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    return {
        "trace": news_trace(str(params["trace"]), seed),
        "edge_count": int(params["edge_count"]),  # type: ignore[arg-type]
    }


@scenario(
    name="hybrid_push_pull",
    description="Push root / polling edges vs pure pull: the message-cost crossover",
    axis="delta_min",
    values=(1.0, 5.0, 10.0, 30.0),
    params={"trace": "cnn_fn", "edge_count": 4},
    columns=(
        "delta_min",
        "hybrid_messages",
        "pull_messages",
        "message_ratio",
        "hybrid_origin_requests",
        "pull_origin_requests",
        "hybrid_edge_fidelity",
        "pull_edge_fidelity",
    ),
    title="Hybrid push/pull tree vs pure pull across the edge-delta sweep",
    tags=("family", "topology", "push"),
    prepare=_prepare_hybrid_push_pull,
)
def _hybrid_push_pull_point(
    delta_min: float, *, trace: UpdateTrace, edge_count: int
) -> Dict[str, object]:
    delta = float(delta_min) * MINUTE

    def run_tree(root_mode: str) -> Dict[str, object]:
        kernel = Kernel()
        origin = OriginServer()
        feed_traces(kernel, origin, [trace])
        tree = TopologyTree(
            kernel,
            origin,
            [
                TreeLevel(fan_out=1, mode=root_mode),
                TreeLevel(fan_out=edge_count),
            ],
        )
        tree.register_object(trace.object_id, _limd_level_factory(delta))
        kernel.run(until=trace.end_time)
        return {
            # Every message on the wire: conditional GETs at both
            # levels, plus (for the push root) one notification per
            # update pushed down by the origin.
            "messages": tree.total_polls() + tree.push_notifications(),
            "origin_requests": tree.origin_request_count(),
            "edge_fidelity": _mean_edge_snapshot_fidelity(
                tree, trace, 2 * delta
            ),
        }

    hybrid = run_tree("push")
    pull = run_tree("pull")
    return {
        "hybrid_messages": hybrid["messages"],
        "pull_messages": pull["messages"],
        "message_ratio": hybrid["messages"] / pull["messages"],
        "hybrid_origin_requests": hybrid["origin_requests"],
        "pull_origin_requests": pull["origin_requests"],
        "hybrid_edge_fidelity": hybrid["edge_fidelity"],
        "pull_edge_fidelity": pull["edge_fidelity"],
    }
