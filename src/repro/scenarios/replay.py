"""Replay and group-scale scenario families (ROADMAP item 2).

Three families push the trace/groups layer into adversarial territory:

* **trace_replay** — a deterministic synthetic access log
  (:func:`repro.traces.clf.generate_synthetic_log`) replays through a
  CDN-style tree via the ``trace_replay`` workload source, with a
  mutual-consistency group over the replayed pages; sweeps the replay
  ``time_scale`` (0.25 = four times faster than real time).
* **correlated_storm** — update storms hit whole groups at once (every
  member updates within a small lag window) while *hundreds of
  overlapping* groups share one proxy; sweeps the group count and
  reports trigger amplification and group-violation rates.
* **group_churn** — group membership re-forms on an epoch schedule
  while the proxy itself crashes and recovers
  (:mod:`repro.workload.failures`); sweeps the re-formation epoch.

Every point derives its RNG from the run seed and axis value
(:func:`repro.core.rng.derive_seed`), so serial and ``workers > 1``
runs are row-for-row identical — the golden files pin both.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.api.builder import SimulationBuilder
from repro.api.config import GroupConfig
from repro.api.runs import build_stack
from repro.consistency.limd import limd_policy_factory
from repro.consistency.mutual_temporal import MutualTemporalCoordinator
from repro.core.rng import RngRegistry, derive_seed
from repro.core.types import HOUR, MINUTE, GroupId, ObjectId
from repro.experiments.figure3 import PAPER_LIMD_PARAMETERS, TTR_MAX
from repro.groups.registry import GroupRegistry
from repro.metrics.collector import temporal_fetches_of
from repro.metrics.group import group_temporal_fidelity
from repro.scenarios.registry import prepare_params_seed, scenario
from repro.traces.clf import generate_synthetic_log, serialize_log
from repro.traces.model import UpdateTrace, trace_from_times
from repro.traces.synthetic import poisson_trace
from repro.workload.failures import FailureInjector, generate_failure_schedule

# ----------------------------------------------------------------------
# trace_replay: a log replayed through a CDN tree
# ----------------------------------------------------------------------

_REPLAY_URLS = ("/index.html", "/news/front", "/quote/ticker")


def _prepare_trace_replay(
    params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    # One log shared by every point, so the axis isolates the replay
    # speed (each point rescales the *same* request history).
    records = generate_synthetic_log(
        derive_seed(seed, "trace_replay.log"),
        urls=_REPLAY_URLS,
        duration_s=float(params["duration_hours"]) * HOUR,  # type: ignore[arg-type]
        mean_interval_s=float(params["mean_interval_s"]),  # type: ignore[arg-type]
        change_probability=float(params["change_probability"]),  # type: ignore[arg-type]
    )
    return {
        "lines": serialize_log(records).splitlines(),
        "params": dict(params),
        "seed": seed,
    }


@scenario(
    name="trace_replay",
    description="Access-log replay through a CDN tree, groups attached",
    axis="time_scale",
    values=(0.25, 0.5, 1.0, 2.0),
    params={
        "duration_hours": 4.0,
        "mean_interval_s": 45.0,
        "change_probability": 0.35,
        "rule": "size_change",
        "delta_min": 5.0,
        "fan_out": 2,
    },
    columns=(
        "time_scale",
        "updates",
        "root_polls",
        "edge_polls",
        "root_fidelity",
        "edge_fidelity",
        "group_violations",
    ),
    title="Trace replay: log-driven updates through a proxy tree",
    tags=("family", "replay"),
    prepare=_prepare_trace_replay,
)
def _trace_replay_point(
    time_scale: float,
    *,
    lines: List[str],
    params: Mapping[str, object],
    seed: int,
) -> Dict[str, object]:
    delta = float(params["delta_min"]) * MINUTE  # type: ignore[arg-type]
    outcome = (
        SimulationBuilder()
        .workload(
            "trace_replay",
            *_REPLAY_URLS,
            lines=list(lines),
            format="clf",
            rule=str(params["rule"]),
            time_scale=float(time_scale),
        )
        .policy("limd", delta=delta, ttr_max=TTR_MAX)
        .topology(
            "tree",
            levels=[
                {"fan_out": 1},
                {"fan_out": int(params["fan_out"])},  # type: ignore[arg-type]
            ],
        )
        .groups(
            [GroupConfig("front_pages", _REPLAY_URLS[:2], 2.0 * MINUTE)]
        )
        .fidelity_delta(delta)
        .seed(derive_seed(seed, f"trace_replay[{float(time_scale)}]"))
        .run()
    )
    root_polls = edge_polls = 0
    root_fid: List[float] = []
    edge_fid: List[float] = []
    group_violations = 0
    for row in outcome.results.to_records():
        if row.get("group") is not None:
            group_violations += int(row["group_violations"])  # type: ignore[arg-type]
            continue
        is_root = str(row["node"]).startswith("L0.")
        polls = int(row["polls"])  # type: ignore[arg-type]
        fidelity = row.get("fidelity_by_time")
        if is_root:
            root_polls += polls
            root_fid.append(float(fidelity))  # type: ignore[arg-type]
        else:
            edge_polls += polls
            edge_fid.append(float(fidelity))  # type: ignore[arg-type]
    updates = sum(
        trace.update_count for trace in outcome.run.traces.values()
    )
    return {
        "updates": updates,
        "root_polls": root_polls,
        "edge_polls": edge_polls,
        "root_fidelity": sum(root_fid) / len(root_fid),
        "edge_fidelity": sum(edge_fid) / len(edge_fid),
        "group_violations": group_violations,
    }


# ----------------------------------------------------------------------
# correlated_storm: whole groups invalidate together, at group scale
# ----------------------------------------------------------------------


def _increasing(times: List[float]) -> List[float]:
    """Sorted times with exact collisions dropped (traces need strict order)."""
    out: List[float] = []
    for time in sorted(times):
        if not out or time > out[-1]:
            out.append(time)
    return out


def _storm_population(
    rng: random.Random,
    object_ids: Sequence[ObjectId],
    group_count: int,
    group_size: int,
    *,
    horizon: float,
    storms_per_hour: float,
    lag_max: float,
) -> Tuple[List[UpdateTrace], List[Tuple[ObjectId, ...]], int]:
    """Overlapping groups plus storm-driven member updates."""
    memberships = [
        tuple(rng.sample(list(object_ids), group_size))
        for _ in range(group_count)
    ]
    times: Dict[ObjectId, List[float]] = {oid: [] for oid in object_ids}
    storms = 0
    clock = 0.0
    while True:
        clock += rng.expovariate(storms_per_hour / HOUR)
        if clock >= horizon - lag_max:
            break
        storms += 1
        for member in memberships[rng.randrange(group_count)]:
            times[member].append(clock + rng.uniform(0.0, lag_max))
    traces = [
        trace_from_times(
            oid, _increasing(times[oid]), start_time=0.0, end_time=horizon
        )
        for oid in object_ids
    ]
    return traces, memberships, storms


@scenario(
    name="correlated_storm",
    description="Correlated update storms across hundreds of overlapping groups",
    axis="group_count",
    values=(25, 50, 100, 200),
    params={
        "objects": 40,
        "group_size": 4,
        "hours": 6.0,
        "storms_per_hour": 12.0,
        "lag_max_s": 30.0,
        "delta_min": 2.0,
    },
    columns=(
        "group_count",
        "storms",
        "updates",
        "polls",
        "triggered_polls",
        "group_violation_rate",
        "group_fidelity_time",
    ),
    title="Correlated storms: trigger load vs overlapping group count",
    tags=("family", "groups"),
    prepare=prepare_params_seed,
)
def _correlated_storm_point(
    group_count: int,
    *,
    params: Mapping[str, object],
    seed: int,
) -> Dict[str, object]:
    rng = random.Random(
        derive_seed(seed, f"correlated_storm[{int(group_count)}]")
    )
    object_ids = [
        ObjectId(f"obj-{index:03d}")
        for index in range(int(params["objects"]))  # type: ignore[arg-type]
    ]
    horizon = float(params["hours"]) * HOUR  # type: ignore[arg-type]
    delta = float(params["delta_min"]) * MINUTE  # type: ignore[arg-type]
    traces, memberships, storms = _storm_population(
        rng,
        object_ids,
        int(group_count),
        int(params["group_size"]),  # type: ignore[arg-type]
        horizon=horizon,
        storms_per_hour=float(params["storms_per_hour"]),  # type: ignore[arg-type]
        lag_max=float(params["lag_max_s"]),  # type: ignore[arg-type]
    )
    kernel, server, proxy, _ = build_stack(traces)
    registry = GroupRegistry()
    for index, members in enumerate(memberships):
        registry.create_group(f"g{index:03d}", members, delta)
    coordinator = MutualTemporalCoordinator(proxy, registry)
    factory = limd_policy_factory(
        delta, ttr_max=TTR_MAX, parameters=PAPER_LIMD_PARAMETERS
    )
    for trace in traces:
        proxy.register_object(trace.object_id, server, factory(trace.object_id))
    kernel.run(until=horizon)

    traces_by_id = {trace.object_id: trace for trace in traces}
    group_polls = group_violations = 0
    out_sync = duration = 0.0
    for spec in registry:
        report = group_temporal_fidelity(
            {m: traces_by_id[m] for m in spec.members},
            {m: temporal_fetches_of(proxy, m) for m in spec.members},
            spec.mutual_delta,
            end=horizon,
        )
        group_polls += report.polls
        group_violations += report.violations
        out_sync += report.out_sync_time
        duration += report.duration
    return {
        "storms": storms,
        "updates": sum(trace.update_count for trace in traces),
        "polls": proxy.counters.get("polls"),
        "triggered_polls": coordinator.counters.get("triggered_polls"),
        "group_violation_rate": (
            group_violations / group_polls if group_polls else 0.0
        ),
        "group_fidelity_time": 1.0 - (out_sync / duration if duration else 0.0),
    }


# ----------------------------------------------------------------------
# group_churn: membership re-forms while the proxy crashes and recovers
# ----------------------------------------------------------------------


def _partition_groups(
    rng: random.Random, object_ids: Sequence[ObjectId], group_size: int
) -> List[Tuple[ObjectId, ...]]:
    """A random disjoint partition into groups of ``group_size``.

    The undersized remainder (< 2 members) is left ungrouped.
    """
    shuffled = list(object_ids)
    rng.shuffle(shuffled)
    groups = []
    for start in range(0, len(shuffled), group_size):
        chunk = tuple(shuffled[start : start + group_size])
        if len(chunk) >= 2:
            groups.append(chunk)
    return groups


@scenario(
    name="group_churn",
    description="Groups re-form on an epoch schedule during failure churn",
    axis="epoch_min",
    values=(15.0, 30.0, 60.0, 120.0),
    params={
        "objects": 12,
        "group_size": 3,
        "hours": 8.0,
        "rate_per_hour": 6.0,
        "delta_min": 2.0,
        "mean_uptime_min": 60.0,
        "mean_downtime_min": 5.0,
    },
    columns=(
        "epoch_min",
        "reforms",
        "failures",
        "recoveries",
        "polls",
        "triggered_polls",
        "final_group_violations",
        "final_group_fidelity_time",
    ),
    title="Group churn: re-forming groups under crash/recovery cycles",
    tags=("family", "groups", "failure"),
    prepare=prepare_params_seed,
)
def _group_churn_point(
    epoch_min: float,
    *,
    params: Mapping[str, object],
    seed: int,
) -> Dict[str, object]:
    point_seed = derive_seed(seed, f"group_churn[{float(epoch_min)}]")
    rng = random.Random(point_seed)
    rngs = RngRegistry(point_seed)
    object_ids = [
        ObjectId(f"obj-{index:02d}")
        for index in range(int(params["objects"]))  # type: ignore[arg-type]
    ]
    horizon = float(params["hours"]) * HOUR  # type: ignore[arg-type]
    delta = float(params["delta_min"]) * MINUTE  # type: ignore[arg-type]
    group_size = int(params["group_size"])  # type: ignore[arg-type]
    epoch = float(epoch_min) * MINUTE

    traces = [
        poisson_trace(
            str(oid),
            rngs.stream(f"group_churn.{oid}"),
            float(params["rate_per_hour"]) / HOUR,  # type: ignore[arg-type]
            end=horizon,
        )
        for oid in object_ids
    ]

    # Every epoch's partition is drawn up front so the kernel callbacks
    # mutate the registry without consuming randomness mid-run (their
    # execution order alone then determines the outcome).
    reform_times = []
    clock = epoch
    while clock < horizon:
        reform_times.append(clock)
        clock += epoch
    partitions = [
        _partition_groups(rng, object_ids, group_size)
        for _ in range(len(reform_times) + 1)
    ]

    kernel, server, proxy, _ = build_stack(traces)
    registry = GroupRegistry()
    current_ids: List[GroupId] = []

    def apply_partition(epoch_index: int) -> None:
        for group_id in current_ids:
            registry.remove_group(group_id)
        current_ids.clear()
        for index, members in enumerate(partitions[epoch_index]):
            spec = registry.create_group(
                f"e{epoch_index}-g{index}", members, delta
            )
            current_ids.append(spec.group_id)

    apply_partition(0)
    coordinator = MutualTemporalCoordinator(proxy, registry)
    reforms = 0

    def make_reform(epoch_index: int) -> Callable[[object], None]:
        def reform(_kernel: object) -> None:
            nonlocal reforms
            reforms += 1
            apply_partition(epoch_index)

        return reform

    for index, time in enumerate(reform_times, start=1):
        kernel.schedule_at(time, make_reform(index))

    schedule = generate_failure_schedule(
        rng,
        horizon=horizon,
        mean_uptime=float(params["mean_uptime_min"]) * MINUTE,  # type: ignore[arg-type]
        mean_downtime=float(params["mean_downtime_min"]) * MINUTE,  # type: ignore[arg-type]
    )
    injector = FailureInjector(kernel, proxy, schedule)

    factory = limd_policy_factory(
        delta, ttr_max=TTR_MAX, parameters=PAPER_LIMD_PARAMETERS
    )
    for trace in traces:
        proxy.register_object(trace.object_id, server, factory(trace.object_id))
    kernel.run(until=horizon)

    # The final epoch's groups are scored over the window they actually
    # existed in; earlier incarnations are reflected in the counters.
    final_start = reform_times[-1] if reform_times else 0.0
    traces_by_id = {trace.object_id: trace for trace in traces}
    violations = 0
    out_sync = duration = 0.0
    for spec in registry:
        report = group_temporal_fidelity(
            {m: traces_by_id[m] for m in spec.members},
            {m: temporal_fetches_of(proxy, m) for m in spec.members},
            spec.mutual_delta,
            start=final_start,
            end=horizon,
        )
        violations += report.violations
        out_sync += report.out_sync_time
        duration += report.duration
    return {
        "reforms": reforms,
        "failures": schedule.failure_count,
        "recoveries": injector.recoveries,
        "polls": proxy.counters.get("polls"),
        "triggered_polls": coordinator.counters.get("triggered_polls"),
        "final_group_violations": violations,
        "final_group_fidelity_time": (
            1.0 - (out_sync / duration if duration else 0.0)
        ),
    }
