"""Built-in scenarios: every paper table/figure, extension, and ablation.

Each registration is a thin declarative spec over the point logic that
already lives in :mod:`repro.experiments` — the experiment modules'
``run()`` entry points delegate back to :func:`repro.scenarios.engine.
run_scenario`, so the CLI's classic ``python -m repro figure3`` path
and ``python -m repro scenarios run figure3`` execute the exact same
code and produce row-for-row identical output (pinned by the golden
regression suite, serially and with ``--workers 2``).

Time-series experiments (figures 4, 6 and 8) are single simulations,
not sweeps; their scenarios run the underlying experiment once per
(singleton) axis value and report the summary statistics their modules
expose, so they too are listable, runnable, and golden-pinned.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.traces.model import UpdateTrace

from repro.core.types import MINUTE, TTRBounds
from repro.experiments import figure3, figure4, figure5, figure6, figure7, figure8
from repro.experiments import group_mt, hierarchy, table2, table3
from repro.experiments.ablations import (
    DETECTION_MODES,
    LIMD_TUNINGS,
    _history_point,
    _latency_point,
    _limd_parameters_point,
    _partition_point,
    _smoothing_point,
    _threshold_point,
    _trigger_point,
)
from repro.experiments.workloads import news_trace, news_traces, stock_trace, stock_traces
from repro.scenarios.registry import prepare_params_seed, scenario

# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


def _prepare_table2(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    del params
    return {"traces": news_traces(seed)}


@scenario(
    name="table2",
    description="Table 2: temporal workload characteristics",
    axis="key",
    values=("cnn_fn", "nyt_ap", "nyt_reuters", "guardian"),
    columns=("trace", "key", "duration_h", "num_updates", "avg_update_interval_min"),
    title="Table 2: Characteristics of Trace Workloads (Temporal Domain)",
    tags=("paper", "table"),
    prepare=_prepare_table2,
)
def _table2_point(
    key: str, *, traces: Mapping[str, UpdateTrace]
) -> Dict[str, object]:
    return table2._summary_row((key, traces[key]))


def _prepare_table3(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    del params
    return {"traces": stock_traces(seed)}


@scenario(
    name="table3",
    description="Table 3: value workload characteristics",
    axis="key",
    values=("att", "yahoo"),
    columns=("stock", "key", "duration_h", "num_updates", "min_value", "max_value"),
    title="Table 3: Characteristics of Trace Workloads (Value Domain)",
    tags=("paper", "table"),
    prepare=_prepare_table3,
)
def _table3_point(
    key: str, *, traces: Mapping[str, UpdateTrace]
) -> Dict[str, object]:
    return table3._summary_row((key, traces[key]))


# ----------------------------------------------------------------------
# Figure sweeps
# ----------------------------------------------------------------------


def _prepare_figure3(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    return {
        "trace": news_trace(str(params["trace"]), seed),
        "trace_key": str(params["trace"]),
        "detection_mode": str(params["detection_mode"]),
    }


@scenario(
    name="figure3",
    description="Figure 3: LIMD vs poll-every-delta baseline (delta sweep)",
    axis="delta_min",
    values=figure3.DEFAULT_DELTAS_MIN,
    params={"trace": "cnn_fn", "detection_mode": "history"},
    columns=(
        "delta_min",
        "limd_polls",
        "baseline_polls",
        "poll_ratio",
        "limd_fidelity_violations",
        "limd_fidelity_time",
        "baseline_fidelity_violations",
    ),
    title="Figure 3: LIMD vs baseline (polls and fidelity vs delta)",
    tags=("paper", "figure"),
    prepare=_prepare_figure3,
)
def _figure3_point(
    delta_min: float, *, trace: UpdateTrace, trace_key: str, detection_mode: str
) -> Dict[str, object]:
    row: Dict[str, object] = {"trace": trace_key}
    row.update(
        figure3.evaluate_delta(
            trace, delta_min * MINUTE, detection_mode=detection_mode
        )
    )
    return row


def _prepare_figure5(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    key_a, key_b = params["pair"]  # type: ignore[misc]
    return {
        "trace_a": news_trace(str(key_a), seed),
        "trace_b": news_trace(str(key_b), seed),
        "pair_label": f"{key_a}+{key_b}",
        "delta": float(params["delta_s"]),  # type: ignore[arg-type]
        "rate_ratio_threshold": float(params["rate_ratio_threshold"]),  # type: ignore[arg-type]
    }


@scenario(
    name="figure5",
    description="Figure 5: mutual temporal approaches (mutual-delta sweep)",
    axis="mutual_delta_min",
    values=figure5.DEFAULT_MUTUAL_DELTAS_MIN,
    params={
        "pair": ("cnn_fn", "nyt_ap"),
        "delta_s": 600.0,
        "rate_ratio_threshold": 0.8,
    },
    columns=(
        "mutual_delta_min",
        "baseline_polls",
        "triggered_polls",
        "heuristic_polls",
        "heuristic_overhead",
        "baseline_fidelity",
        "triggered_fidelity",
        "heuristic_fidelity",
    ),
    title="Figure 5: Mutual temporal consistency (delta = 10 min)",
    tags=("paper", "figure"),
    prepare=_prepare_figure5,
)
def _figure5_point(
    mutual_delta_min: float,
    *,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    pair_label: str,
    delta: float,
    rate_ratio_threshold: float,
) -> Dict[str, object]:
    row: Dict[str, object] = {"pair": pair_label}
    row.update(
        figure5.evaluate_mutual_delta(
            trace_a,
            trace_b,
            mutual_delta_min * MINUTE,
            delta=delta,
            rate_ratio_threshold=rate_ratio_threshold,
        )
    )
    return row


def _prepare_figure7(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    key_a, key_b = params["pair"]  # type: ignore[misc]
    return {
        "trace_a": stock_trace(str(key_a), seed),
        "trace_b": stock_trace(str(key_b), seed),
        "pair_label": f"{key_a}+{key_b}",
        "ttr_min": float(params["ttr_min"]),  # type: ignore[arg-type]
        "ttr_max": float(params["ttr_max"]),  # type: ignore[arg-type]
    }


@scenario(
    name="figure7",
    description="Figure 7: mutual value approaches (mutual-delta sweep, $)",
    axis="mutual_delta",
    values=figure7.DEFAULT_MUTUAL_DELTAS,
    params={"pair": ("att", "yahoo"), "ttr_min": 1.0, "ttr_max": 60.0},
    columns=(
        "mutual_delta",
        "adaptive_polls",
        "partitioned_polls",
        "adaptive_fidelity",
        "partitioned_fidelity",
        "adaptive_fidelity_time",
        "partitioned_fidelity_time",
    ),
    title="Figure 7: Mutual value consistency (polls and fidelity vs delta, $)",
    tags=("paper", "figure"),
    prepare=_prepare_figure7,
)
def _figure7_point(
    mutual_delta: float,
    *,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    pair_label: str,
    ttr_min: float,
    ttr_max: float,
) -> Dict[str, object]:
    row: Dict[str, object] = {"pair": pair_label}
    row.update(
        figure7.evaluate_mutual_delta(
            trace_a,
            trace_b,
            mutual_delta,
            bounds=TTRBounds(ttr_min=ttr_min, ttr_max=ttr_max),
        )
    )
    return row


# ----------------------------------------------------------------------
# Time-series experiments (single runs, summarised)
# ----------------------------------------------------------------------


@scenario(
    name="figure4",
    description="Figure 4: LIMD adaptivity over time (summary statistics)",
    axis="delta_min",
    values=(10.0,),
    params={"trace": "cnn_fn"},
    title="Figure 4: LIMD TTR adaptivity (single run summary)",
    tags=("paper", "figure", "timeseries"),
    prepare=prepare_params_seed,
)
def _figure4_point(
    delta_min: float, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    result = figure4.run(
        trace_key=str(params["trace"]), delta=delta_min * MINUTE, seed=seed
    )
    return {
        "trace": params["trace"],
        "polls": result.run.total_polls,
        "ttr_min_min": result.min_ttr_minutes,
        "ttr_max_min": result.max_ttr_minutes,
    }


@scenario(
    name="figure6",
    description="Figure 6: mutual-heuristic adaptivity (summary statistics)",
    axis="mutual_delta_min",
    values=(5.0,),
    params={
        "pair": ("nyt_ap", "nyt_reuters"),
        "delta_min": 10.0,
        "rate_ratio_threshold": 0.8,
    },
    title="Figure 6: Mutual-heuristic adaptivity (single run summary)",
    tags=("paper", "figure", "timeseries"),
    prepare=prepare_params_seed,
)
def _figure6_point(
    mutual_delta_min: float, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    pair = tuple(str(key) for key in params["pair"])  # type: ignore[union-attr]
    result = figure6.run(
        pair=pair,
        delta=float(params["delta_min"]) * MINUTE,  # type: ignore[arg-type]
        mutual_delta=mutual_delta_min * MINUTE,
        seed=seed,
        rate_ratio_threshold=float(params["rate_ratio_threshold"]),  # type: ignore[arg-type]
    )
    return {
        "pair": "+".join(pair),
        "extra_polls": result.total_extra_polls,
        "suppressed_slower": result.total_suppressed_by_rate,
        "total_polls": result.run.total_polls,
    }


@scenario(
    name="figure8",
    description="Figure 8: f at proxy vs server (tracking-error summary)",
    axis="mutual_delta",
    values=(0.6,),
    params={"pair": ("att", "yahoo")},
    title="Figure 8: proxy-vs-server tracking error (single run summary)",
    tags=("paper", "figure", "timeseries"),
    prepare=prepare_params_seed,
)
def _figure8_point(
    mutual_delta: float, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    pair = tuple(str(key) for key in params["pair"])  # type: ignore[union-attr]
    result = figure8.run(pair=pair, mutual_delta=mutual_delta, seed=seed)
    return {
        "pair": "+".join(pair),
        "adaptive_tracking_error": result.tracking_error("adaptive"),
        "partitioned_tracking_error": result.tracking_error("partitioned"),
    }


# ----------------------------------------------------------------------
# Extensions
# ----------------------------------------------------------------------


def _prepare_group_mt(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    trio = [str(key) for key in params["trio"]]  # type: ignore[union-attr]
    return {"traces": [news_trace(key, seed) for key in trio]}


@scenario(
    name="group_mt",
    description="Extension: n-object mutual temporal consistency",
    axis="mutual_delta_min",
    values=group_mt.DEFAULT_MUTUAL_DELTAS,
    params={"trio": group_mt.DEFAULT_TRIO},
    title="Extension: n-object mutual temporal consistency (delta = 10 min)",
    tags=("extension",),
    prepare=_prepare_group_mt,
)
def _group_mt_point(
    mutual_delta_min: float, *, traces: List[UpdateTrace]
) -> Dict[str, object]:
    return group_mt._sweep_point(mutual_delta_min, traces=traces)


def _prepare_hierarchy(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    return {
        "trace": news_trace(str(params["trace"]), seed),
        "edge_count": int(params["edge_count"]),  # type: ignore[arg-type]
    }


@scenario(
    name="hierarchy",
    description="Extension: flat vs hierarchical proxy topologies",
    axis="topology",
    values=("flat", "hierarchy"),
    params={"trace": "cnn_fn", "edge_count": hierarchy.DEFAULT_EDGE_COUNT},
    title="Extension: flat vs hierarchical proxies (delta = 10 min/level)",
    tags=("extension",),
    prepare=_prepare_hierarchy,
)
def _hierarchy_point(
    topology: str, *, trace: UpdateTrace, edge_count: int
) -> Dict[str, object]:
    return hierarchy._topology_row(topology, trace=trace, edge_count=edge_count)


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


def _prepare_history(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    return {
        "trace": news_trace(str(params["trace"]), seed),
        "delta": float(params["delta_s"]),  # type: ignore[arg-type]
    }


@scenario(
    name="ablation_history",
    description="Ablation: violation-detection modes (history vs inference)",
    axis="detection",
    values=DETECTION_MODES,
    params={"trace": "guardian", "delta_s": 300.0},
    title="Ablation: violation detection modes",
    tags=("ablation",),
    prepare=_prepare_history,
)
def _ablation_history_point(
    mode: str, *, trace: UpdateTrace, delta: float
) -> Dict[str, object]:
    return _history_point(mode, trace=trace, delta=delta)


def _prepare_news_pair(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    key_a, key_b = params["pair"]  # type: ignore[misc]
    return {
        "trace_a": news_trace(str(key_a), seed),
        "trace_b": news_trace(str(key_b), seed),
        "delta": float(params["delta_s"]),  # type: ignore[arg-type]
        "mutual_delta": float(params["mutual_delta_s"]),  # type: ignore[arg-type]
    }


@scenario(
    name="ablation_heuristic_threshold",
    description="Ablation: rate-ratio gate of the mutual heuristic",
    axis="threshold",
    values=(0.25, 0.5, 0.8, 1.0, 2.0),
    params={"pair": ("cnn_fn", "nyt_ap"), "delta_s": 600.0, "mutual_delta_s": 120.0},
    title="Ablation: heuristic rate-ratio threshold",
    tags=("ablation",),
    prepare=_prepare_news_pair,
)
def _ablation_threshold_point(
    threshold: float,
    *,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    delta: float,
    mutual_delta: float,
) -> Dict[str, object]:
    return _threshold_point(
        threshold,
        trace_a=trace_a,
        trace_b=trace_b,
        delta=delta,
        mutual_delta=mutual_delta,
    )


@scenario(
    name="ablation_trigger_semantics",
    description="Ablation: triggered polls as additional vs replacing polls",
    axis="semantics",
    values=("additional", "replace"),
    params={"pair": ("cnn_fn", "nyt_ap"), "delta_s": 600.0, "mutual_delta_s": 120.0},
    title="Ablation: trigger semantics",
    tags=("ablation",),
    prepare=_prepare_news_pair,
)
def _ablation_trigger_point(
    semantics: str,
    *,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    delta: float,
    mutual_delta: float,
) -> Dict[str, object]:
    return _trigger_point(
        (semantics, semantics == "replace"),
        trace_a=trace_a,
        trace_b=trace_b,
        delta=delta,
        mutual_delta=mutual_delta,
    )


def _prepare_stock_pair(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    key_a, key_b = params["pair"]  # type: ignore[misc]
    context: Dict[str, object] = {
        "trace_a": stock_trace(str(key_a), seed),
        "trace_b": stock_trace(str(key_b), seed),
        "mutual_delta": float(params["mutual_delta"]),  # type: ignore[arg-type]
        "bounds": TTRBounds(
            ttr_min=float(params["ttr_min"]),  # type: ignore[arg-type]
            ttr_max=float(params["ttr_max"]),  # type: ignore[arg-type]
        ),
    }
    if "reapportion_interval_s" in params:
        context["reapportion_interval_s"] = float(
            params["reapportion_interval_s"]  # type: ignore[arg-type]
        )
    return context


@scenario(
    name="ablation_partition",
    description="Ablation: static vs dynamic mutual-delta split",
    axis="split",
    values=("static", "dynamic"),
    params={
        "pair": ("att", "yahoo"),
        "mutual_delta": 0.6,
        "ttr_min": 1.0,
        "ttr_max": 60.0,
        "reapportion_interval_s": 60.0,
    },
    title="Ablation: static vs dynamic delta split",
    tags=("ablation",),
    prepare=_prepare_stock_pair,
)
def _ablation_partition_point(
    split: str,
    *,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    mutual_delta: float,
    bounds: TTRBounds,
    reapportion_interval_s: float,
) -> Dict[str, object]:
    interval = None if split == "static" else reapportion_interval_s
    return _partition_point(
        (split, interval),
        trace_a=trace_a,
        trace_b=trace_b,
        mutual_delta=mutual_delta,
        bounds=bounds,
    )


@scenario(
    name="ablation_smoothing",
    description="Ablation: Eq. 10 smoothing-alpha sweep",
    axis="alpha",
    values=(0.3, 0.5, 0.7, 0.9, 1.0),
    params={
        "pair": ("att", "yahoo"),
        "mutual_delta": 0.6,
        "ttr_min": 1.0,
        "ttr_max": 60.0,
    },
    title="Ablation: Eq. 10 alpha sweep",
    tags=("ablation",),
    prepare=_prepare_stock_pair,
)
def _ablation_smoothing_point(
    alpha: float,
    *,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    mutual_delta: float,
    bounds: TTRBounds,
) -> Dict[str, object]:
    return _smoothing_point(
        alpha,
        trace_a=trace_a,
        trace_b=trace_b,
        mutual_delta=mutual_delta,
        bounds=bounds,
    )


@scenario(
    name="ablation_limd_parameters",
    description="Ablation: LIMD growth/back-off tunings",
    axis="tuning",
    values=tuple(LIMD_TUNINGS),
    params={"trace": "cnn_fn", "delta_s": 600.0},
    title="Ablation: LIMD l/m tuning",
    tags=("ablation",),
    prepare=_prepare_history,
)
def _ablation_limd_point(
    tuning: str, *, trace: UpdateTrace, delta: float
) -> Dict[str, object]:
    return _limd_parameters_point(
        (tuning, LIMD_TUNINGS[tuning]), trace=trace, delta=delta
    )


@scenario(
    name="ablation_latency",
    description="Ablation: network-latency sensitivity of LIMD",
    axis="one_way_latency_s",
    values=(0.0, 30.0, 150.0, 300.0, 600.0),
    params={"trace": "cnn_fn", "delta_s": 600.0},
    title="Ablation: network-latency sensitivity",
    tags=("ablation",),
    prepare=_prepare_history,
)
def _ablation_latency_point(
    latency: float, *, trace: UpdateTrace, delta: float
) -> Dict[str, object]:
    return _latency_point(latency, trace=trace, delta=delta)
