"""Generic scenario driver.

:func:`run_scenario` is the one execution path every scenario —
paper figure, ablation, or new workload family — flows through:

1. resolve the scenario (by name or an explicit spec),
2. apply parameter / axis-value overrides,
3. ``prepare`` the shared context once in the parent process,
4. fan the axis values out through the same
   :func:`repro.experiments.sweep.executor_for` seam the figure sweeps
   use — so ``workers > 1`` runs points in parallel processes with
   rows collected in axis order, bit-identical to the serial run.

Each point produces one plain-dict row; the axis value is prepended
under the axis name unless the point already reported it (configuration
grids like the ablations label their own rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.api.results import ResultSet
from repro.core.errors import ExperimentError
from repro.core.rng import DEFAULT_SEED
from repro.experiments.render import render_dict_rows
from repro.experiments.sweep import SweepResult, executor_for
from repro.scenarios.registry import SCENARIOS, PointFn, Scenario
from repro.scenarios.spec import AxisValue, ScenarioSpec


@dataclass
class ScenarioResult:
    """The rows a scenario produced, plus the spec that produced them."""

    spec: ScenarioSpec
    seed: int
    rows: List[Dict[str, object]]

    @property
    def sweep(self) -> SweepResult:
        """The rows viewed as a :class:`SweepResult` over the axis."""
        return SweepResult(parameter=self.spec.axis, rows=self.rows)

    @property
    def result_set(self) -> ResultSet:
        """The rows as a :class:`~repro.api.results.ResultSet`.

        The schema is inferred first-seen across the rows (points may
        report topology-specific extra columns), so the declared order
        matches row-dict order exactly.
        """
        return ResultSet.from_records(self.rows)

    def to_dict(self) -> Dict[str, object]:
        """Serializable form: configuration, schema, and every row."""
        results = self.result_set
        return {
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "columns": list(results.columns),
            "rows": results.to_records(),
        }


def execute_scenario_point(
    value: AxisValue,
    *,
    point: PointFn,
    axis: str,
    context: Mapping[str, object],
) -> Dict[str, object]:
    """Run one scenario point and assemble its row.

    Module-level so parallel workers can unpickle it; the serial path
    uses the same function so both executors share row semantics.
    """
    produced = point(value, **context)
    if not isinstance(produced, Mapping):
        raise ExperimentError(
            f"scenario point for axis value {value!r} returned "
            f"{type(produced).__name__}, expected a mapping of columns"
        )
    row: Dict[str, object] = {}
    if axis not in produced:
        row[axis] = value
    row.update(produced)
    return row


def _resolve(
    target: Union[str, Scenario],
    params: Optional[Mapping[str, object]],
    values: Optional[Sequence[AxisValue]],
) -> Scenario:
    entry = SCENARIOS.get(target) if isinstance(target, str) else target
    spec = entry.spec
    if params:
        spec = spec.with_params(params)
    if values is not None:
        spec = spec.with_values(values)
    if spec is entry.spec:
        return entry
    return Scenario(spec=spec, point=entry.point, prepare=entry.prepare)


def run_scenario(
    target: Union[str, Scenario],
    *,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    params: Optional[Mapping[str, object]] = None,
    values: Optional[Sequence[AxisValue]] = None,
) -> ScenarioResult:
    """Run one registered scenario end to end.

    ``params`` overrides entries of the spec's parameter mapping
    (unknown names are rejected); ``values`` replaces the swept axis
    values.  ``workers`` > 1 executes points across worker processes
    through :func:`repro.experiments.sweep.executor_for`, with rows
    returned in axis order — identical to a serial run.
    """
    entry = _resolve(target, params, values)
    spec = entry.spec
    context = entry.prepare(dict(spec.params), seed)
    rows = executor_for(workers).map(
        partial(
            execute_scenario_point,
            point=entry.point,
            axis=spec.axis,
            context=context,
        ),
        spec.values,
    )
    return ScenarioResult(spec=spec, seed=seed, rows=rows)


def render_scenario(result: ScenarioResult) -> str:
    """Render a scenario's rows as the standard ASCII table."""
    spec = result.spec
    return render_dict_rows(
        result.rows,
        columns=list(spec.columns) if spec.columns else None,
        title=spec.title or spec.name,
    )


def describe_scenario(target: Union[str, Scenario]) -> str:
    """Human-readable description of a scenario's spec."""
    entry = SCENARIOS.get(target) if isinstance(target, str) else target
    spec = entry.spec
    lines = [
        f"{spec.name} — {spec.description}",
        f"  axis:    {spec.axis} = {list(spec.values)}",
        f"  tags:    {', '.join(spec.tags) or '(none)'}",
        "  params:",
    ]
    if spec.params:
        width = max(len(key) for key in spec.params)
        for key in sorted(spec.params):
            lines.append(f"    {key.ljust(width)} = {spec.params[key]!r}")
    else:
        lines.append("    (none)")
    if spec.columns:
        lines.append(f"  columns: {', '.join(spec.columns)}")
    return "\n".join(lines)
