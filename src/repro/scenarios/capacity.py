"""Finite-capacity scenario families: eviction × consistency interplay.

The paper assumes an infinitely large proxy cache (Section 6.1.1), so
its Δ bound silently presumes every object *stays* cached between
polls.  A bounded cache breaks that premise: evicting an object throws
away both the copy and the poll history behind the policy's learned
TTR, and until the refetch the bound is void.  Two families measure
that interaction:

* **capacity_edge** — a CDN-style edge tree absorbs a flash crowd
  while its edge caches hold fewer entries than the object population;
  sweeps the edge capacity and reports eviction churn, refetch counts,
  and the *effective staleness violations* the absences caused
  (:func:`repro.metrics.collector.collect_eviction_impact`).
* **ttl_class_mix** — heterogeneous TTL classes à la operational TTL
  tables: part of the population runs a declared per-class static TTL
  (``CacheConfig.ttl_classes``) while the rest keeps LIMD, all inside
  one small bounded cache; sweeps the class TTL across the polling
  cadence of the adaptive policy.

Both derive every point's RNG from the run seed and axis value, so
serial and ``workers > 1`` runs stay row-for-row identical.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api.builder import SimulationBuilder
from repro.consistency.limd import limd_policy_factory
from repro.core.rng import derive_seed
from repro.core.types import HOUR, MINUTE
from repro.experiments.figure3 import PAPER_LIMD_PARAMETERS, TTR_MAX
from repro.metrics.collector import (
    collect_eviction_impact,
    collect_snapshot_fidelity,
)
from repro.proxy.cache import ObjectCache
from repro.scenarios.registry import prepare_params_seed, scenario
from repro.server.origin import OriginServer
from repro.server.updates import feed_traces
from repro.sim.kernel import Kernel
from repro.topology import LevelPolicyFactory, TopologyTree, TreeLevel
from repro.traces.model import UpdateTrace
from repro.workload.surges import SurgeWindow, flash_crowd_trace

# ----------------------------------------------------------------------
# Bounded edge caches under flash-crowd load
# ----------------------------------------------------------------------


def _limd_level_factory(delta: float) -> LevelPolicyFactory:
    """A per-(level, object) LIMD factory at one shared Δ."""
    factory = limd_policy_factory(
        delta, ttr_max=TTR_MAX, parameters=PAPER_LIMD_PARAMETERS
    )
    return lambda _level, object_id: factory(object_id)


def _mean_edge_fidelity_present(
    tree: TopologyTree, traces: Sequence[UpdateTrace], delta: float
) -> Optional[float]:
    """Mean edge time-fidelity over the (edge, object) pairs still cached.

    Bounded edges may have evicted an object without refetching it by
    the end of the run; those pairs have no snapshots to score and are
    skipped (their cost is what ``staleness_violations`` counts).
    """
    scores: List[float] = []
    for node in tree.edge_nodes:
        for trace in traces:
            if node.proxy.entry_or_none(trace.object_id) is None:
                continue
            scores.append(
                collect_snapshot_fidelity(
                    node.proxy, trace, delta
                ).report.fidelity_by_time
            )
    return sum(scores) / len(scores) if scores else None


@scenario(
    name="capacity_edge",
    description=(
        "Bounded edge caches under a flash crowd: eviction churn vs the "
        "policy's staleness bound"
    ),
    axis="capacity",
    values=(2, 4, 8),
    params={
        "objects": 6,
        "fan_out": 3,
        "eviction": "tinylfu",
        "total_updates": 240,
        "hours": 12.0,
        "surge_start_hour": 6.0,
        "surge_duration_min": 30.0,
        "surge_intensity": 20.0,
        "delta_min": 10.0,
    },
    columns=(
        "capacity",
        "objects",
        "evictions",
        "refetch_after_evict",
        "staleness_violations",
        "absent_time_s",
        "edge_fidelity_time",
        "origin_requests",
        "total_polls",
    ),
    title="Edge capacity sweep: eviction churn against the Δ bound",
    tags=("family", "capacity", "topology"),
    prepare=prepare_params_seed,
)
def _capacity_edge_point(
    capacity: int, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    point_seed = derive_seed(seed, f"capacity_edge[{int(capacity)}]")
    end = float(params["hours"]) * HOUR  # type: ignore[arg-type]
    surge = SurgeWindow(
        at=float(params["surge_start_hour"]) * HOUR,  # type: ignore[arg-type]
        duration=float(params["surge_duration_min"]) * MINUTE,  # type: ignore[arg-type]
        intensity=float(params["surge_intensity"]),  # type: ignore[arg-type]
    )
    traces = [
        flash_crowd_trace(
            f"obj-{index}",
            random.Random(derive_seed(point_seed, f"trace.obj-{index}")),
            total=int(params["total_updates"]),  # type: ignore[arg-type]
            end=end,
            surges=(surge,),
        )
        for index in range(int(params["objects"]))  # type: ignore[arg-type]
    ]
    delta = float(params["delta_min"]) * MINUTE  # type: ignore[arg-type]
    eviction = str(params["eviction"])

    kernel = Kernel()
    origin = OriginServer()
    feed_traces(kernel, origin, traces)
    # The shield keeps the paper's unbounded cache; only the edges are
    # squeezed below the object population.
    tree = TopologyTree(
        kernel,
        origin,
        [
            TreeLevel(fan_out=1),
            TreeLevel(fan_out=int(params["fan_out"])),  # type: ignore[arg-type]
        ],
        cache_factory=lambda level, _index: (
            ObjectCache(capacity=int(capacity), eviction=eviction)
            if level > 0
            else None
        ),
    )
    for trace in traces:
        tree.register_object(trace.object_id, _limd_level_factory(delta))
    kernel.run(until=end)

    evictions = 0
    refetches = 0
    violations = 0
    absent = 0.0
    for node in tree.edge_nodes:
        for trace in traces:
            impact = collect_eviction_impact(
                node.proxy, trace, delta, horizon=end
            )
            evictions += impact.evictions
            refetches += impact.refetches_after_evict
            violations += impact.staleness_violations
            absent += impact.absent_time
    return {
        "objects": len(traces),
        "evictions": evictions,
        "refetch_after_evict": refetches,
        "staleness_violations": violations,
        "absent_time_s": absent,
        # The additive bound gives depth-2 edges 2Δ of slack.
        "edge_fidelity_time": _mean_edge_fidelity_present(
            tree, traces, 2 * delta
        ),
        "origin_requests": tree.origin_request_count(),
        "total_polls": tree.total_polls(),
    }


# ----------------------------------------------------------------------
# Heterogeneous TTL classes in one bounded cache
# ----------------------------------------------------------------------

#: Objects declared into the swept TTL class vs. left on the main policy.
_TTL_CLASSED = ("cnn_fn", "nyt_ap")
_TTL_DEFAULT = ("guardian",)


@scenario(
    name="ttl_class_mix",
    description=(
        "Heterogeneous TTL classes in one bounded cache: declared "
        "per-class TTLs vs the adaptive policy"
    ),
    axis="ttl_min",
    values=(2.0, 10.0, 30.0),
    params={
        "capacity": 2,
        "eviction": "lru",
        "delta_min": 10.0,
    },
    columns=(
        "ttl_min",
        "classed_polls",
        "default_polls",
        "classed_fidelity_time",
        "default_fidelity_time",
        "evictions",
        "refetch_after_evict",
        "staleness_violations",
    ),
    title="TTL class mix: declared freshness classes inside a bounded cache",
    tags=("family", "capacity"),
    prepare=prepare_params_seed,
)
def _ttl_class_mix_point(
    ttl_min: float, *, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    delta = float(params["delta_min"]) * MINUTE  # type: ignore[arg-type]
    outcome = (
        SimulationBuilder()
        .workload("news", *(_TTL_CLASSED + _TTL_DEFAULT))
        .policy("limd", delta=delta, ttr_max=TTR_MAX)
        .cache(
            int(params["capacity"]),  # type: ignore[arg-type]
            eviction=str(params["eviction"]),
            ttl_classes={"classed": float(ttl_min) * MINUTE},
            object_classes={key: "classed" for key in _TTL_CLASSED},
        )
        .fidelity_delta(delta)
        .seed(derive_seed(seed, f"ttl_class_mix[{float(ttl_min)}]"))
        .run()
    )
    rows = {str(row["object"]): row for row in outcome.results}

    def _polls(keys: Sequence[str]) -> int:
        return sum(int(rows[key]["polls"]) for key in keys)

    def _fidelity(keys: Sequence[str]) -> Optional[float]:
        cells = [rows[key]["fidelity_by_time"] for key in keys]
        present = [float(cell) for cell in cells if cell is not None]
        return sum(present) / len(present) if present else None

    def _total(column: str) -> int:
        return sum(int(row[column]) for row in rows.values())

    return {
        "classed_polls": _polls(_TTL_CLASSED),
        "default_polls": _polls(_TTL_DEFAULT),
        "classed_fidelity_time": _fidelity(_TTL_CLASSED),
        "default_fidelity_time": _fidelity(_TTL_DEFAULT),
        "evictions": _total("evictions"),
        "refetch_after_evict": _total("refetch_after_evict"),
        "staleness_violations": _total("staleness_violations"),
    }
