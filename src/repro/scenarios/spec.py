"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *what* an experiment is — workload and
trace parameters, the policy grid, the swept axis, and the metric
columns to report — as plain, JSON-serializable data.  The *how* (the
point function that turns one axis value into a row of metrics) lives
in the registry (:mod:`repro.scenarios.registry`); the two are joined
by :func:`repro.scenarios.engine.run_scenario`.

Keeping the spec declarative buys three things:

* scenarios can be listed, described, and overridden from the CLI
  (``python -m repro scenarios run figure3 --params trace=guardian``)
  without touching code;
* the golden-output regression suite can serialize the exact
  configuration it pinned alongside the rows it hashed;
* new scenarios are mostly data — a spec plus one point function.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Sequence, Tuple, Union

# Shared with repro.api.config: one JSON-round-trip discipline.
from repro.api.jsonable import check_jsonable as _check
from repro.api.jsonable import freeze as _freeze
from repro.api.jsonable import thaw as _thaw
from repro.core.errors import ReproError

#: Values a scenario axis may sweep over: numbers for the classic Δ/δ
#: sweeps, strings for configuration grids (detection modes, topologies).
AxisValue = Union[int, float, str]


class ScenarioSpecError(ReproError):
    """A scenario specification was malformed or inconsistent."""


def _check_jsonable(name: str, value: object) -> None:
    """Reject parameter values that would not survive a JSON round trip."""
    _check(name, value, ScenarioSpecError)


@dataclass(frozen=True)
class ScenarioSpec:
    """The declarative description of one registered scenario.

    Attributes:
        name: Unique registry key (``repro scenarios run <name>``).
        description: One-line summary shown by ``scenarios list``.
        axis: Name of the swept parameter; becomes the first row column.
        values: The axis values — one simulation point per value.
        params: Scenario-family parameters (trace keys, tolerances,
            workload knobs, policy settings).  Everything here must be
            JSON-serializable and is overridable via ``--params``.
        columns: Metric columns to render, in order ('()' = all).
        title: Heading used when rendering the result table.
        tags: Free-form labels (``paper``, ``ablation``, ``family``...).
    """

    name: str
    description: str
    axis: str
    values: Tuple[AxisValue, ...]
    params: Mapping[str, object] = field(default_factory=dict)
    columns: Tuple[str, ...] = ()
    title: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for attribute in ("name", "description", "axis", "title"):
            if not isinstance(getattr(self, attribute), str):
                raise ScenarioSpecError(
                    f"{attribute} must be a string, got "
                    f"{type(getattr(self, attribute)).__name__}"
                )
        if not self.name:
            raise ScenarioSpecError("name must be non-empty")
        if not self.axis:
            raise ScenarioSpecError("axis must be non-empty")
        if isinstance(self.values, (str, bytes)) or not isinstance(
            self.values, Sequence
        ):
            raise ScenarioSpecError(
                f"values must be a sequence, got {type(self.values).__name__}"
            )
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ScenarioSpecError("values must be non-empty")
        for value in self.values:
            if isinstance(value, bool) or not isinstance(
                value, (int, float, str)
            ):
                raise ScenarioSpecError(
                    f"axis values must be numbers or strings, got {value!r}"
                )
        if not isinstance(self.params, Mapping):
            raise ScenarioSpecError(
                f"params must be a mapping, got {type(self.params).__name__}"
            )
        for key, value in self.params.items():
            if not isinstance(key, str):
                raise ScenarioSpecError(
                    f"param names must be strings, got {key!r}"
                )
            _check_jsonable(key, value)
        # Normalise sequences to tuples so list- and tuple-specified
        # params compare equal (and a dict/JSON round trip is identity).
        object.__setattr__(
            self,
            "params",
            {key: _freeze(value) for key, value in self.params.items()},
        )
        for attribute in ("columns", "tags"):
            raw = getattr(self, attribute)
            if isinstance(raw, (str, bytes)) or not isinstance(raw, Sequence):
                raise ScenarioSpecError(
                    f"{attribute} must be a sequence of strings"
                )
            items = tuple(raw)
            if not all(isinstance(item, str) for item in items):
                raise ScenarioSpecError(
                    f"{attribute} must contain only strings, got {items!r}"
                )
            object.__setattr__(self, attribute, items)

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------
    def with_params(self, overrides: Mapping[str, object]) -> "ScenarioSpec":
        """Return a copy with ``overrides`` merged into ``params``.

        Only existing parameter names may be overridden — a typo'd name
        is an error, not a silently ignored knob.
        """
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ScenarioSpecError(
                f"unknown parameter(s) for scenario {self.name!r}: "
                f"{unknown}; known: {sorted(self.params)}"
            )
        merged = dict(self.params)
        merged.update(overrides)
        return replace(self, params=merged)

    def with_values(self, values: Sequence[AxisValue]) -> "ScenarioSpec":
        """Return a copy sweeping ``values`` instead."""
        return replace(self, values=tuple(values))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form: lists for tuples, safe to ``json.dumps``."""
        return {
            "name": self.name,
            "description": self.description,
            "axis": self.axis,
            "values": list(self.values),
            "params": {k: _thaw(v) for k, v in self.params.items()},
            "columns": list(self.columns),
            "title": self.title,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Build a spec from a plain dict, rejecting unknown fields."""
        if not isinstance(data, Mapping):
            raise ScenarioSpecError(
                f"spec must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioSpecError(
                f"unknown spec field(s): {unknown}; known: {sorted(known)}"
            )
        missing = sorted(
            {"name", "description", "axis", "values"} - set(data)
        )
        if missing:
            raise ScenarioSpecError(f"missing spec field(s): {missing}")
        kwargs = dict(data)
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"invalid spec JSON: {exc}") from None
        return cls.from_dict(data)


def parse_param_overrides(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse CLI ``key=value`` override pairs into a params mapping.

    Values are parsed as JSON when possible (numbers, booleans, lists,
    quoted strings) and fall back to the raw string otherwise, so
    ``--params delta_min=2.5 trace=guardian surges='[[3600,600,20]]'``
    all work without shell gymnastics.
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ScenarioSpecError(
                f"malformed --params entry {pair!r}: expected key=value"
            )
        try:
            value: object = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides
