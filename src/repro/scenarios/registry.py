"""Decorator-based scenario registry.

A scenario is a :class:`~repro.scenarios.spec.ScenarioSpec` plus two
callables:

* ``prepare(params, seed)`` — runs **once** in the parent process and
  materialises the shared context every point needs (generated traces,
  rebuilt parameter objects).  Everything it returns must pickle, since
  with ``workers`` > 1 the context crosses the process boundary.
* the decorated **point function** — ``point(value, **context)`` runs
  once per axis value (possibly in a worker process) and returns one
  row of metric columns as a plain mapping.

Registration is declarative::

    @scenario(
        name="diurnal",
        description="LIMD under diurnally modulated load",
        axis="amplitude",
        values=(0.0, 0.5, 1.0),
        params={"base_rate_per_hour": 12.0, "days": 2.0},
        prepare=_prepare_diurnal,
    )
    def _diurnal_point(amplitude, *, trace, delta):
        ...

Point functions must be module-level (pickling requirement, exactly as
for :mod:`repro.experiments.sweep` row builders).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.errors import ReproError
from repro.scenarios.spec import AxisValue, ScenarioSpec

#: Builds the per-run shared context from (params, seed).
PrepareFn = Callable[[Mapping[str, object], int], Mapping[str, object]]

#: Turns one axis value (plus the prepared context) into a metrics row.
PointFn = Callable[..., Mapping[str, object]]


class UnknownScenarioError(ReproError, KeyError):
    """A scenario name was not found in the registry."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__(
            f"unknown scenario {name!r}; known: {', '.join(known) or '(none)'}"
        )
        self.name = name

    def __str__(self) -> str:  # KeyError.__str__ would repr the message
        return self.args[0]


def _prepare_nothing(
    params: Mapping[str, object], seed: int
) -> Mapping[str, object]:
    """Default ``prepare``: the point needs no shared context."""
    del params, seed
    return {}


def prepare_params_seed(
    params: Mapping[str, object], seed: int
) -> Mapping[str, object]:
    """Common ``prepare``: hand the raw params and seed to every point.

    For scenarios whose points build their own workload per axis value
    (deriving the point RNG from ``seed`` and the value).
    """
    return {"params": dict(params), "seed": seed}


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: declarative spec + executable hooks."""

    spec: ScenarioSpec
    point: PointFn
    prepare: PrepareFn = _prepare_nothing


_REGISTRY: Dict[str, Scenario] = {}
_BUILTINS_LOADED = False


def scenario(
    *,
    name: str,
    description: str,
    axis: str,
    values: Sequence[AxisValue],
    params: Optional[Mapping[str, object]] = None,
    columns: Sequence[str] = (),
    title: str = "",
    tags: Sequence[str] = (),
    prepare: Optional[PrepareFn] = None,
) -> Callable[[PointFn], PointFn]:
    """Register the decorated point function as a runnable scenario."""
    spec = ScenarioSpec(
        name=name,
        description=description,
        axis=axis,
        values=tuple(values),
        params=dict(params or {}),
        columns=tuple(columns),
        title=title or description,
        tags=tuple(tags),
    )

    def wrap(point: PointFn) -> PointFn:
        register_scenario(
            Scenario(spec=spec, point=point, prepare=prepare or _prepare_nothing)
        )
        return point

    return wrap


def register_scenario(entry: Scenario) -> None:
    """Add a scenario to the registry (duplicate names are an error)."""
    if entry.spec.name in _REGISTRY:
        raise ValueError(
            f"scenario {entry.spec.name!r} is already registered"
        )
    _REGISTRY[entry.spec.name] = entry


def _ensure_builtins() -> None:
    """Import the modules whose import side-effect is registration."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Imported for their @scenario decorators; order matters only for
    # listing aesthetics (builtin paper scenarios first).
    import repro.scenarios.builtin  # noqa: F401
    import repro.scenarios.families  # noqa: F401


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, scenario_names()) from None


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
