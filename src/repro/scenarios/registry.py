"""Decorator-based scenario registry.

A scenario is a :class:`~repro.scenarios.spec.ScenarioSpec` plus two
callables:

* ``prepare(params, seed)`` — runs **once** in the parent process and
  materialises the shared context every point needs (generated traces,
  rebuilt parameter objects).  Everything it returns must pickle, since
  with ``workers`` > 1 the context crosses the process boundary.
* the decorated **point function** — ``point(value, **context)`` runs
  once per axis value (possibly in a worker process) and returns one
  row of metric columns as a plain mapping.

Registration is declarative::

    @scenario(
        name="diurnal",
        description="LIMD under diurnally modulated load",
        axis="amplitude",
        values=(0.0, 0.5, 1.0),
        params={"base_rate_per_hour": 12.0, "days": 2.0},
        prepare=_prepare_diurnal,
    )
    def _diurnal_point(amplitude, *, trace, delta):
        ...

Point functions must be module-level (pickling requirement, exactly as
for :mod:`repro.experiments.sweep` row builders).

Lookup goes through :data:`SCENARIOS`, a
:class:`repro.core.registry.Registry` shared with the consistency and
workload-source registries (``SCENARIOS.get(name)``,
``SCENARIOS.names()``).  The historical module-level lookup functions
(``get_scenario`` / ``scenario_names`` / ``list_scenarios``) remain as
deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from repro.api.deprecation import warn_deprecated
from repro.core.registry import Registry
from repro.core.errors import ReproError
from repro.scenarios.spec import AxisValue, ScenarioSpec

#: Builds the per-run shared context from (params, seed).
PrepareFn = Callable[[Mapping[str, object], int], Mapping[str, object]]

#: Turns one axis value (plus the prepared context) into a metrics row.
PointFn = Callable[..., Mapping[str, object]]


class UnknownScenarioError(ReproError, KeyError):
    """A scenario name was not found in the registry."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__(
            f"unknown scenario {name!r}; known: {', '.join(known) or '(none)'}"
        )
        self.name = name

    def __str__(self) -> str:  # KeyError.__str__ would repr the message
        return self.args[0]


def _prepare_nothing(
    params: Mapping[str, object], seed: int
) -> Mapping[str, object]:
    """Default ``prepare``: the point needs no shared context."""
    del params, seed
    return {}


def prepare_params_seed(
    params: Mapping[str, object], seed: int
) -> Mapping[str, object]:
    """Common ``prepare``: hand the raw params and seed to every point.

    For scenarios whose points build their own workload per axis value
    (deriving the point RNG from ``seed`` and the value).
    """
    return {"params": dict(params), "seed": seed}


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: declarative spec + executable hooks."""

    spec: ScenarioSpec
    point: PointFn
    prepare: PrepareFn = _prepare_nothing


def _load_builtins() -> None:
    """Import the modules whose import side-effect is registration."""
    # Imported for their @scenario decorators; order matters only for
    # listing aesthetics (builtin paper scenarios first).
    import repro.scenarios.builtin  # noqa: F401
    import repro.scenarios.families  # noqa: F401
    import repro.scenarios.capacity  # noqa: F401
    import repro.scenarios.replay  # noqa: F401


#: The scenario registry: ``SCENARIOS.get(name)`` resolves one entry,
#: ``SCENARIOS.names()`` lists them, ``in`` tests membership.  Built-in
#: scenarios load lazily on first lookup.
SCENARIOS: Registry[Scenario] = Registry(
    "scenario",
    error_factory=lambda name, known: UnknownScenarioError(name, known),
    loader=_load_builtins,
)


def scenario(
    *,
    name: str,
    description: str,
    axis: str,
    values: Sequence[AxisValue],
    params: Optional[Mapping[str, object]] = None,
    columns: Sequence[str] = (),
    title: str = "",
    tags: Sequence[str] = (),
    prepare: Optional[PrepareFn] = None,
) -> Callable[[PointFn], PointFn]:
    """Register the decorated point function as a runnable scenario."""
    spec = ScenarioSpec(
        name=name,
        description=description,
        axis=axis,
        values=tuple(values),
        params=dict(params or {}),
        columns=tuple(columns),
        title=title or description,
        tags=tuple(tags),
    )

    def wrap(point: PointFn) -> PointFn:
        register_scenario(
            Scenario(spec=spec, point=point, prepare=prepare or _prepare_nothing)
        )
        return point

    return wrap


def register_scenario(entry: Scenario) -> None:
    """Add a scenario to the registry (duplicate names are an error)."""
    SCENARIOS.register(entry.spec.name, entry)


# ----------------------------------------------------------------------
# Deprecated lookup shims (use the SCENARIOS registry object instead)
# ----------------------------------------------------------------------


def get_scenario(name: str) -> Scenario:
    """Deprecated alias of ``SCENARIOS.get(name)``."""
    warn_deprecated(
        "repro.scenarios.registry.get_scenario",
        "repro.scenarios.registry.SCENARIOS.get",
    )
    return SCENARIOS.get(name)


def scenario_names() -> List[str]:
    """Deprecated alias of ``SCENARIOS.names()``."""
    warn_deprecated(
        "repro.scenarios.registry.scenario_names",
        "repro.scenarios.registry.SCENARIOS.names",
    )
    return SCENARIOS.names()


def list_scenarios() -> List[Scenario]:
    """Deprecated alias of ``SCENARIOS.values()``."""
    warn_deprecated(
        "repro.scenarios.registry.list_scenarios",
        "repro.scenarios.registry.SCENARIOS.values",
    )
    return SCENARIOS.values()
