"""Declarative scenario engine.

One subsystem turns every experiment — paper figure, ablation,
extension, or new workload family — into data plus a point function:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the serializable
  description (axis, values, params, columns);
* :mod:`repro.scenarios.registry` — the ``@scenario`` decorator and
  name-based lookup;
* :mod:`repro.scenarios.engine` — :func:`run_scenario`, the generic
  driver over the parallel sweep executors;
* :mod:`repro.scenarios.builtin` — every paper table/figure/ablation
  as a thin spec;
* :mod:`repro.scenarios.families` — flash crowds, diurnal cycles,
  failure churn, heterogeneous mixes.

See ``docs/SCENARIOS.md`` for the authoring guide.
"""

from repro.scenarios.engine import (
    DEFAULT_SEED,
    ScenarioResult,
    describe_scenario,
    render_scenario,
    run_scenario,
)
from repro.scenarios.registry import (  # repro-lint: disable=RL303 (back-compat re-export of the deprecated lookups)
    SCENARIOS,
    Scenario,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    ScenarioSpecError,
    parse_param_overrides,
)

__all__ = [
    "DEFAULT_SEED",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSpecError",
    "UnknownScenarioError",
    "describe_scenario",
    "get_scenario",
    "list_scenarios",
    "parse_param_overrides",
    "register_scenario",
    "render_scenario",
    "run_scenario",
    "scenario",
    "scenario_names",
]
