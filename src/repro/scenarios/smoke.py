"""Tiny smoke configurations and golden-output helpers.

Every registered scenario has a *tiny* configuration — a couple of axis
values and, where the spec allows, a shrunken workload — sized so the
whole catalogue runs in seconds.  Two consumers share these:

* the golden-output regression suite (``tests/test_scenario_goldens.py``)
  pins every scenario's tiny rows against committed JSON files, serial
  and with ``workers=2``, so refactors cannot silently drift results;
* ``tools/update_goldens.py`` regenerates those files after an
  *intentional* behaviour change.

The canonical row encoding is compact JSON with keys in row order;
float reprs are deterministic for identical doubles, and the simulator
is deterministic by construction (seeded RNG streams, ordered executor
collection), so byte-stable hashing is safe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.engine import DEFAULT_SEED, ScenarioResult, run_scenario
from repro.scenarios.registry import SCENARIOS


@dataclass(frozen=True)
class TinyConfig:
    """Axis/param overrides that shrink a scenario to smoke size."""

    values: Optional[Tuple[object, ...]] = None
    params: Mapping[str, object] = field(default_factory=dict)


#: Tiny overrides per scenario.  A scenario missing here runs with its
#: full spec — ``tiny_config`` raises instead, so adding a scenario
#: forces an explicit decision about its smoke cost.
TINY_CONFIGS: Dict[str, TinyConfig] = {
    "table2": TinyConfig(),
    "table3": TinyConfig(),
    "figure3": TinyConfig(values=(1.0, 10.0)),
    "figure4": TinyConfig(),
    "figure5": TinyConfig(values=(1.0, 10.0)),
    "figure6": TinyConfig(),
    "figure7": TinyConfig(values=(0.6, 2.0)),
    "figure8": TinyConfig(),
    "group_mt": TinyConfig(values=(5.0, 30.0)),
    "hierarchy": TinyConfig(params={"edge_count": 4}),
    "ablation_history": TinyConfig(),
    "ablation_heuristic_threshold": TinyConfig(values=(0.25, 1.0)),
    "ablation_partition": TinyConfig(),
    "ablation_smoothing": TinyConfig(values=(0.3, 1.0)),
    "ablation_trigger_semantics": TinyConfig(),
    "ablation_limd_parameters": TinyConfig(values=("paper", "optimistic")),
    "ablation_latency": TinyConfig(values=(0.0, 300.0)),
    "flash_crowd": TinyConfig(
        values=(1.0, 25.0),
        params={"total_updates": 200, "hours": 12.0, "surge_start_hour": 6.0},
    ),
    "diurnal": TinyConfig(values=(0.0, 1.0), params={"days": 1.0}),
    "failure_churn": TinyConfig(values=(60.0, 480.0)),
    "hetero_mix": TinyConfig(values=(2.0, 30.0), params={"hours": 12.0}),
    "cdn_tree": TinyConfig(
        values=(2, 4),
        params={
            "depth": 2,
            "total_updates": 150,
            "hours": 6.0,
            "surge_start_hour": 3.0,
        },
    ),
    "hybrid_push_pull": TinyConfig(values=(1.0, 30.0), params={"edge_count": 2}),
    "capacity_edge": TinyConfig(
        values=(2, 8),
        params={
            "objects": 4,
            "fan_out": 2,
            "total_updates": 120,
            "hours": 6.0,
            "surge_start_hour": 3.0,
        },
    ),
    "ttl_class_mix": TinyConfig(values=(2.0, 30.0)),
    "trace_replay": TinyConfig(
        values=(0.5, 1.0), params={"duration_hours": 1.0}
    ),
    "correlated_storm": TinyConfig(
        values=(10, 25),
        params={"objects": 12, "hours": 2.0, "storms_per_hour": 8.0},
    ),
    "group_churn": TinyConfig(values=(30.0, 60.0), params={"objects": 6, "hours": 3.0}),
}


def tiny_config(name: str) -> TinyConfig:
    """The tiny configuration for one scenario (must exist)."""
    try:
        return TINY_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"scenario {name!r} has no tiny smoke configuration; add one "
            "to repro.scenarios.smoke.TINY_CONFIGS (and regenerate the "
            "goldens with tools/update_goldens.py)"
        ) from None


def run_tiny(
    name: str, *, seed: int = DEFAULT_SEED, workers: Optional[int] = None
) -> ScenarioResult:
    """Run one scenario in its tiny configuration."""
    config = tiny_config(name)
    return run_scenario(
        name,
        seed=seed,
        workers=workers,
        params=dict(config.params) or None,
        values=config.values,
    )


def canonical_rows(rows: Sequence[Mapping[str, object]]) -> str:
    """Byte-stable encoding of result rows (compact JSON, row order)."""
    return json.dumps(list(rows), separators=(",", ":"))


def rows_digest(rows: Sequence[Mapping[str, object]]) -> str:
    """SHA-256 of the canonical row encoding."""
    digest = hashlib.sha256(canonical_rows(rows).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


def golden_payload(name: str, result: ScenarioResult) -> Dict[str, object]:
    """The committed golden-file content for one tiny scenario run."""
    config = tiny_config(name)
    return {
        "scenario": name,
        "seed": result.seed,
        "tiny_values": (
            list(config.values) if config.values is not None else None
        ),
        "tiny_params": dict(config.params),
        "row_hash": rows_digest(result.rows),
        "rows": result.rows,
    }


def all_tiny_scenarios() -> List[str]:
    """Registered scenario names, asserting tiny coverage is complete."""
    names = SCENARIOS.names()
    missing = sorted(set(names) - set(TINY_CONFIGS))
    if missing:
        raise KeyError(
            f"scenarios without tiny smoke configurations: {missing}"
        )
    return names
