"""Syntactic relationship extraction from HTML (paper Section 5.2).

"Syntactic relationships can be deduced by parsing html documents for
embedded links and objects."  This module extracts embedded-object
references (images, scripts, stylesheets, media, frames) from an HTML
document using the standard library parser, resolves them against the
document URL, and feeds a dependency graph.

Navigational ``<a href>`` links are *not* treated as embeddings by
default: a page does not need to be mutually consistent with everything
it merely links to.  Callers can opt in via ``include_anchors``.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import List, Optional, Set, Tuple
from urllib.parse import urljoin, urldefrag

from repro.core.types import ObjectId
from repro.groups.dependency import DependencyGraph

#: (tag, attribute) pairs whose values reference embedded objects.
EMBED_ATTRIBUTES: Tuple[Tuple[str, str], ...] = (
    ("img", "src"),
    ("script", "src"),
    ("iframe", "src"),
    ("frame", "src"),
    ("embed", "src"),
    ("audio", "src"),
    ("video", "src"),
    ("source", "src"),
    ("input", "src"),  # <input type="image">
    ("object", "data"),
    ("link", "href"),  # filtered to rel=stylesheet/icon below
)

#: ``<link rel=...>`` values that constitute embeddings.
EMBEDDING_LINK_RELS = frozenset({"stylesheet", "icon", "shortcut icon"})


class _EmbeddedObjectParser(HTMLParser):
    """Collects embedded-object URLs from a document."""

    def __init__(self, *, include_anchors: bool) -> None:
        super().__init__(convert_charrefs=True)
        self._include_anchors = include_anchors
        self.references: List[str] = []

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        attributes = {name.lower(): value for name, value in attrs}
        tag = tag.lower()
        for embed_tag, attribute in EMBED_ATTRIBUTES:
            if tag != embed_tag:
                continue
            value = attributes.get(attribute)
            if not value:
                continue
            if tag == "link":
                rel = (attributes.get("rel") or "").lower().strip()
                if rel not in EMBEDDING_LINK_RELS:
                    continue
            self.references.append(value)
        if self._include_anchors and tag == "a":
            href = attributes.get("href")
            if href:
                self.references.append(href)


def extract_embedded_urls(
    html: str,
    base_url: str,
    *,
    include_anchors: bool = False,
) -> List[str]:
    """Return absolute URLs of objects embedded in ``html``.

    URLs are resolved against ``base_url``, fragments are stripped, and
    duplicates are removed while preserving first-seen order.  Non-HTTP
    schemes (``mailto:``, ``javascript:``, ``data:``) are dropped.
    """
    parser = _EmbeddedObjectParser(include_anchors=include_anchors)
    parser.feed(html)
    parser.close()
    seen: Set[str] = set()
    result: List[str] = []
    for reference in parser.references:
        absolute, _fragment = urldefrag(urljoin(base_url, reference.strip()))
        if not absolute.startswith(("http://", "https://")):
            continue
        if absolute == base_url:
            continue
        if absolute not in seen:
            seen.add(absolute)
            result.append(absolute)
    return result


def relate_document(
    graph: DependencyGraph,
    document_url: str,
    html: str,
    *,
    include_anchors: bool = False,
) -> List[ObjectId]:
    """Parse a document and relate it to its embedded objects in ``graph``.

    Returns the embedded object ids that were related to the document.
    The document itself is added as a node even if it embeds nothing.
    """
    document_id = ObjectId(document_url)
    graph.add_object(document_id)
    embedded: List[ObjectId] = []
    for url in extract_embedded_urls(html, document_url, include_anchors=include_anchors):
        embedded_id = ObjectId(url)
        graph.relate(document_id, embedded_id)
        embedded.append(embedded_id)
    return embedded
