"""Group registry: object ↔ group bookkeeping for mutual consistency.

The mutual-consistency coordinators ask one question constantly: *which
groups does this just-updated object belong to, and who are its
partners?*  The registry answers it in O(groups-of-object).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.core.errors import UnknownGroupError
from repro.core.types import GroupId, GroupSpec, ObjectId
from repro.groups.dependency import DependencyGraph


class GroupRegistry:
    """Holds :class:`GroupSpec` records and indexes them by member."""

    def __init__(self) -> None:
        self._groups: Dict[GroupId, GroupSpec] = {}
        self._by_member: Dict[ObjectId, Set[GroupId]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_group(self, spec: GroupSpec) -> None:
        """Register a group; its id must be unused.

        The member list is re-validated here even though
        :class:`GroupSpec` checks it at construction: specs built
        through ``object.__new__`` or other bypasses would otherwise
        double-count members in the mutual-Δ bookkeeping.
        """
        if spec.group_id in self._groups:
            raise ValueError(f"group {spec.group_id!r} already registered")
        if len(spec.members) < 2:
            raise ValueError(
                f"group {spec.group_id!r} needs >= 2 members, "
                f"got {len(spec.members)}"
            )
        if len(set(spec.members)) != len(spec.members):
            raise ValueError(f"group {spec.group_id!r} has duplicate members")
        self._groups[spec.group_id] = spec
        for member in spec.members:
            self._by_member.setdefault(member, set()).add(spec.group_id)

    def create_group(
        self,
        group_id: str,
        members: Iterable[ObjectId],
        mutual_delta: float,
    ) -> GroupSpec:
        """Convenience: build and register a group in one step."""
        spec = GroupSpec(
            group_id=GroupId(group_id),
            members=tuple(members),
            mutual_delta=mutual_delta,
        )
        self.add_group(spec)
        return spec

    def remove_group(self, group_id: GroupId) -> GroupSpec:
        """Remove and return a group."""
        spec = self._groups.pop(group_id, None)
        if spec is None:
            raise UnknownGroupError(str(group_id))
        for member in spec.members:
            group_ids = self._by_member.get(member)
            if group_ids is not None:
                group_ids.discard(group_id)
                if not group_ids:
                    del self._by_member[member]
        return spec

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, group_id: GroupId) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[GroupSpec]:
        return iter(self._groups.values())

    def get(self, group_id: GroupId) -> GroupSpec:
        try:
            return self._groups[group_id]
        except KeyError:
            raise UnknownGroupError(str(group_id)) from None

    def groups_of(self, object_id: ObjectId) -> List[GroupSpec]:
        """All groups the object belongs to (empty list if none)."""
        return [
            self._groups[gid]
            for gid in sorted(self._by_member.get(object_id, ()), key=str)
        ]

    def partners_of(self, object_id: ObjectId) -> Set[ObjectId]:
        """Union of the object's partners across all its groups."""
        partners: Set[ObjectId] = set()
        for spec in self.groups_of(object_id):
            partners.update(spec.partners_of(object_id))
        return partners

    def all_members(self) -> Set[ObjectId]:
        """Every object that belongs to at least one group."""
        return set(self._by_member)

    def __repr__(self) -> str:
        return f"GroupRegistry(groups={len(self._groups)})"


def groups_from_components(
    graph: DependencyGraph,
    mutual_delta: float,
    *,
    prefix: str = "component",
    min_size: int = 2,
) -> List[GroupSpec]:
    """Derive one group per connected component of a dependency graph.

    Components smaller than ``min_size`` (isolated objects) are skipped.
    Group ids are ``{prefix}-0``, ``{prefix}-1``, ... in deterministic
    (sorted-member) order.
    """
    specs: List[GroupSpec] = []
    index = 0
    for component in graph.connected_components():
        if len(component) < min_size:
            continue
        members = tuple(sorted(component, key=str))
        specs.append(
            GroupSpec(
                group_id=GroupId(f"{prefix}-{index}"),
                members=members,
                mutual_delta=mutual_delta,
            )
        )
        index += 1
    return specs
