"""Dependency graphs over related web objects (paper Section 5.2).

Relationships among cached objects "can be specified by the user or be
automatically deduced using syntactic or semantic relationships" and
"stored using data structures such as dependency graphs".  This module
provides the graph; :mod:`repro.groups.html_links` provides syntactic
extraction; :mod:`repro.groups.registry` turns graph components or
explicit specifications into the :class:`~repro.core.types.GroupSpec`
records the mutual-consistency coordinators consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.core.types import ObjectId


class DependencyGraph:
    """An undirected graph of relatedness between objects.

    Nodes are object ids; an edge ``(a, b)`` means a and b are related
    (e.g. a page and its embedded image, or two stocks a user compares).
    Mutual-consistency groups are derived as connected components, or as
    explicit node subsets chosen by the caller.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[ObjectId, Set[ObjectId]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_object(self, object_id: ObjectId) -> None:
        """Ensure a node exists (isolated objects form no group)."""
        self._adjacency.setdefault(object_id, set())

    def relate(self, a: ObjectId, b: ObjectId) -> None:
        """Add an undirected relation between two distinct objects."""
        if a == b:
            raise ValueError(f"cannot relate object {a!r} to itself")
        self._adjacency.setdefault(a, set()).add(b)
        self._adjacency.setdefault(b, set()).add(a)

    def relate_all(self, objects: Iterable[ObjectId]) -> None:
        """Pairwise-relate every object in ``objects`` (a clique)."""
        items = list(objects)
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                self.relate(a, b)

    def unrelate(self, a: ObjectId, b: ObjectId) -> None:
        """Remove the relation between a and b (if present)."""
        self._adjacency.get(a, set()).discard(b)
        self._adjacency.get(b, set()).discard(a)

    def remove_object(self, object_id: ObjectId) -> None:
        """Remove a node and all its relations."""
        neighbours = self._adjacency.pop(object_id, set())
        for other in neighbours:
            self._adjacency[other].discard(object_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._adjacency

    def __iter__(self) -> Iterator[ObjectId]:
        return iter(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def neighbours(self, object_id: ObjectId) -> FrozenSet[ObjectId]:
        """Objects directly related to ``object_id``."""
        return frozenset(self._adjacency.get(object_id, set()))

    def edges(self) -> List[Tuple[ObjectId, ObjectId]]:
        """All relations, each reported once with endpoints sorted."""
        seen: Set[Tuple[ObjectId, ObjectId]] = set()
        for a, neighbours in self._adjacency.items():
            for b in neighbours:
                edge = (a, b) if str(a) <= str(b) else (b, a)
                seen.add(edge)
        return sorted(seen)

    def are_related(self, a: ObjectId, b: ObjectId) -> bool:
        """Direct relation check."""
        return b in self._adjacency.get(a, set())

    def connected_components(self) -> List[FrozenSet[ObjectId]]:
        """Connected components, each a frozenset, deterministic order."""
        visited: Set[ObjectId] = set()
        components: List[FrozenSet[ObjectId]] = []
        for start in sorted(self._adjacency, key=str):
            if start in visited:
                continue
            component: Set[ObjectId] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adjacency[node] - component)
            visited |= component
            components.append(frozenset(component))
        return components

    def component_of(self, object_id: ObjectId) -> FrozenSet[ObjectId]:
        """The connected component containing ``object_id``."""
        if object_id not in self._adjacency:
            raise KeyError(f"unknown object {object_id!r}")
        component: Set[ObjectId] = set()
        stack = [object_id]
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(self._adjacency[node] - component)
        return frozenset(component)

    def __repr__(self) -> str:
        return (
            f"DependencyGraph(objects={len(self._adjacency)}, "
            f"edges={len(self.edges())})"
        )
