"""Related-object management: dependency graphs, extraction, registry."""

from repro.groups.dependency import DependencyGraph
from repro.groups.html_links import extract_embedded_urls, relate_document
from repro.groups.registry import GroupRegistry, groups_from_components

__all__ = [
    "DependencyGraph",
    "extract_embedded_urls",
    "relate_document",
    "GroupRegistry",
    "groups_from_components",
]
