"""The assembled proxy tree: nodes, wiring, registration, introspection.

A :class:`TopologyTree` is built from a sequence of
:class:`~repro.topology.levels.TreeLevel` specs against one origin:
level 0 holds ``fan_out₀`` nodes attached to the origin, and every node
at level i has ``fan_outᵢ₊₁`` children at level i+1 — so a chain is
``fan_out=1`` everywhere, the old one-parent/N-edge hierarchy is
``(1, N)``, and a CDN-style edge tree is ``(1, k, k)``.

Each node is a full :class:`~repro.proxy.proxy.ProxyCache` with its own
per-link :class:`~repro.httpsim.network.Network`; because proxies
satisfy the :class:`~repro.topology.protocols.Upstream` protocol, every
link is served by ordinary conditional GETs.  A *push* level instead
subscribes its nodes to the upstream's push source
(:mod:`repro.topology.push`) and fetches on each notification — hybrid
trees (push at the root, TTR polling at the edges) need no special
cases.

Objects register root-first, level by level, so every initial fetch
finds its upstream already populated (with the synchronous zero-latency
network the fetch completes inline).
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.consistency.base import PassivePolicy, RefreshPolicy
from repro.core.errors import UnknownObjectError
from repro.core.events import PollReason
from repro.core.types import ObjectId, PollOutcome, Seconds
from repro.httpsim.network import Network
from repro.proxy.cache import ObjectCache
from repro.proxy.proxy import ProxyCache
from repro.sim.kernel import Kernel
from repro.sim.tracing import EventLog

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycle
    from repro.server.origin import OriginServer
from repro.topology.levels import (
    PUSH,
    LevelPolicyFactory,
    TopologyError,
    TreeLevel,
)
from repro.topology.protocols import Upstream
from repro.topology.push import OriginPushSource, ProxyPushSource, PushFanout

#: Names a node from its (level, index-within-level) position.
NodeNamer = Callable[[int, int], str]
#: Labels a node's upstream link for RNG-stream derivation.
LinkLabeler = Callable[[int, int], str]
#: Resolves a link label to the RNG jitter draws on that link use.
LinkRngFactory = Callable[[str], Optional[random.Random]]
#: Builds a node's cache from its (level, index); ``None`` entries fall
#: back to the proxy's default unbounded cache.
CacheFactory = Callable[[int, int], Optional[ObjectCache]]


def _default_namer(level: int, index: int) -> str:
    return f"L{level}.N{index}"


def _default_link_labeler(level: int, index: int) -> str:
    return f"network.L{level}.N{index}"


def _no_link_rng(_label: str) -> Optional[random.Random]:
    return None


def _holds_object(proxy: ProxyCache, object_id: ObjectId) -> bool:
    """Whether a proxy has the object registered *and* populated."""
    try:
        entry = proxy.entry_for(object_id)
    except UnknownObjectError:
        return False
    return entry.snapshot is not None


class _InstallOnFirstPoll:
    """One-shot observer: run ``install`` when the upstream proxy first
    completes a poll for the object (its cache is populated by then, so
    the downstream node's initial fetch cannot 404)."""

    __slots__ = ("_proxy", "_object_id", "_install")

    def __init__(
        self,
        proxy: ProxyCache,
        object_id: ObjectId,
        install: Callable[[], None],
    ) -> None:
        self._proxy = proxy
        self._object_id = object_id
        self._install = install
        proxy.add_observer(self)

    def on_poll_complete(
        self, object_id: ObjectId, outcome: PollOutcome
    ) -> None:
        if object_id != self._object_id:
            return
        self._proxy.remove_observer(self)
        self._install()


class TopologyNode:
    """One proxy in the tree, with its position and wiring."""

    __slots__ = ("proxy", "level", "index", "upstream", "parent", "children")

    def __init__(
        self,
        proxy: ProxyCache,
        level: int,
        index: int,
        upstream: Upstream,
        parent: Optional["TopologyNode"],
    ) -> None:
        self.proxy = proxy
        self.level = level
        self.index = index
        #: What this node polls (the origin, or the parent's proxy).
        self.upstream = upstream
        self.parent = parent
        self.children: List["TopologyNode"] = []

    @property
    def name(self) -> str:
        return self.proxy.name

    @property
    def is_edge(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        return (
            f"TopologyNode({self.name!r}, level={self.level}, "
            f"children={len(self.children)})"
        )


class TopologyTree:
    """An arbitrary proxy tree with unified pull/push consistency per level.

    Args:
        kernel: Shared simulation kernel.
        origin: The origin server every level-0 node attaches to.  A
            push-mode level 0 additionally requires the origin to expose
            update listeners
            (:meth:`repro.server.origin.OriginServer.add_update_listener`).
        levels: Per-level structure, level 0 first.
        want_history: Whether node polls request the Section 5.1
            modification-history extension.
        event_log: Optional structured log shared by every node.
        link_rng: Resolves a link label to the RNG its jitter draws use
            (``None`` degrades jittery latency to its fixed one-way
            value).  Labels come from ``link_labeler``.
        node_namer: Names nodes from (level, index); defaults to
            ``L{level}.N{index}``.  The assembly layer overrides this to
            keep historical names (``proxy``, ``edge-{i}``) stable.
        link_labeler: Labels upstream links from (level, index) for RNG
            derivation; defaults to ``network.L{level}.N{index}``.
        cache_factory: Builds each node's
            :class:`~repro.proxy.cache.ObjectCache` from (level, index)
            — bounded edge caches in an otherwise unbounded tree, say.
            ``None`` (default, and a legal per-node return value) means
            an unbounded cache.

    Example:
        >>> from repro.core.types import ObjectId
        >>> from repro.server.origin import OriginServer
        >>> from repro.sim.kernel import Kernel
        >>> from repro.topology.levels import TreeLevel
        >>> from repro.consistency.base import FixedTTRPolicy
        >>> kernel = Kernel()
        >>> origin = OriginServer()
        >>> _ = origin.create_object(ObjectId("x"), created_at=0.0)
        >>> tree = TopologyTree(
        ...     kernel, origin, [TreeLevel(fan_out=1), TreeLevel(fan_out=4)]
        ... )
        >>> _ = tree.register_object(
        ...     ObjectId("x"), lambda level, oid: FixedTTRPolicy(ttr=60.0)
        ... )
        >>> tree.node_count
        5
    """

    def __init__(
        self,
        kernel: Kernel,
        origin: Upstream,
        levels: Sequence[TreeLevel],
        *,
        want_history: bool = True,
        event_log: Optional[EventLog] = None,
        link_rng: LinkRngFactory = _no_link_rng,
        node_namer: NodeNamer = _default_namer,
        link_labeler: LinkLabeler = _default_link_labeler,
        cache_factory: Optional[CacheFactory] = None,
    ) -> None:
        if not levels:
            raise TopologyError("a topology tree needs at least one level")
        self._kernel = kernel
        self._origin = origin
        self._levels: Tuple[TreeLevel, ...] = tuple(levels)
        self._by_level: List[List[TopologyNode]] = []
        #: Push source per upstream: the origin's shared source under
        #: ``None``, one per parent node otherwise.
        self._push_sources: Dict[Optional[TopologyNode], PushFanout] = {}

        parents: List[Optional[TopologyNode]] = [None]
        for level_number, level in enumerate(self._levels):
            row: List[TopologyNode] = []
            for parent in parents:
                upstream: Upstream = (
                    origin if parent is None else parent.proxy
                )
                if level.mode == PUSH:
                    self._push_source_for(parent, level)
                for _ in range(level.fan_out):
                    index = len(row)
                    network = Network(
                        kernel,
                        level.latency,
                        rng=link_rng(link_labeler(level_number, index)),
                    )
                    node = TopologyNode(
                        ProxyCache(
                            kernel,
                            network,
                            cache=(
                                cache_factory(level_number, index)
                                if cache_factory is not None
                                else None
                            ),
                            want_history=want_history,
                            event_log=event_log,
                            name=node_namer(level_number, index),
                        ),
                        level_number,
                        index,
                        upstream,
                        parent,
                    )
                    if parent is not None:
                        parent.children.append(node)
                    row.append(node)
            self._by_level.append(row)
            parents = list(row)
        # register_object returns policies keyed by node name, so a
        # colliding namer would silently drop entries — fail instead.
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise TopologyError(
                f"node_namer produced duplicate node names: {duplicates}"
            )

    def _push_source_for(
        self, parent: Optional[TopologyNode], level: TreeLevel
    ) -> PushFanout:
        """The push source of one upstream, created on first use."""
        source = self._push_sources.get(parent)
        if source is not None:
            return source
        notify_latency = level.latency.one_way
        if parent is None:
            if not hasattr(self._origin, "add_update_listener"):
                raise TopologyError(
                    f"push mode at level 0 requires an origin with update "
                    f"listeners, got {type(self._origin).__name__}"
                )
            source = OriginPushSource(
                self._kernel,
                cast("OriginServer", self._origin),
                notify_latency=notify_latency,
            )
        else:
            source = ProxyPushSource(
                self._kernel, parent.proxy, notify_latency=notify_latency
            )
        self._push_sources[parent] = source
        return source

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @property
    def origin(self) -> Upstream:
        return self._origin

    @property
    def levels(self) -> Tuple[TreeLevel, ...]:
        return self._levels

    @property
    def depth(self) -> int:
        return len(self._levels)

    @property
    def node_count(self) -> int:
        return sum(len(row) for row in self._by_level)

    @property
    def nodes(self) -> Tuple[TopologyNode, ...]:
        """Every node, level by level, index order within each level."""
        return tuple(node for row in self._by_level for node in row)

    def nodes_at(self, level: int) -> Tuple[TopologyNode, ...]:
        if not 0 <= level < self.depth:
            raise TopologyError(
                f"level must be in [0, {self.depth}), got {level}"
            )
        return tuple(self._by_level[level])

    @property
    def edge_nodes(self) -> Tuple[TopologyNode, ...]:
        """The deepest level — the proxies clients would talk to."""
        return tuple(self._by_level[-1])

    @property
    def root(self) -> TopologyNode:
        """The single level-0 node (error when level 0 fans out wider)."""
        row = self._by_level[0]
        if len(row) != 1:
            raise TopologyError(
                f"tree has {len(row)} level-0 nodes; use nodes_at(0)"
            )
        return row[0]

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_object(
        self,
        object_id: ObjectId,
        policy_factory: Optional[LevelPolicyFactory] = None,
        *,
        node_filter: Optional[Callable[[int, int], bool]] = None,
    ) -> Dict[str, RefreshPolicy]:
        """Register an object at every node, root-first.

        ``node_filter(level, index)`` restricts registration to a
        subset of nodes — the sharded executor registers only a shard's
        cone (its boundary subtrees plus all their ancestors; see
        :mod:`repro.topology.sharding`).  The filter must be
        ancestor-closed: a registered node's upstream proxy must itself
        be registered, or its initial fetch 404s against an empty
        parent cache.  Filtered-out nodes stay constructed but idle.

        Pull nodes get ``policy_factory(level, object_id)`` (required if
        any level pulls); push nodes get a
        :class:`~repro.consistency.base.PassivePolicy` and subscribe to
        their upstream's push source instead.

        On a zero-latency link registration (and its initial fetch)
        completes inline, parent before child.  Below a *latent* link
        the parent's initial fetch is still in flight when the child
        registers, so the child's installation is deferred until the
        parent's first poll for the object completes (a one-shot poll
        observer) — racing ahead would 404 against the unpopulated
        parent.  The kernel must therefore
        :meth:`~repro.sim.kernel.Kernel.run` for those deferred
        installations to land; the worst case is one upstream round
        trip per level (:func:`~repro.topology.levels.warm_up_bound`).

        Returns:
            The policy instance installed at each node, by node name.
        """
        if policy_factory is None and any(
            level.mode != PUSH for level in self._levels
        ):
            raise TopologyError(
                "policy_factory is required when any level is pull-mode"
            )
        policies: Dict[str, RefreshPolicy] = {}
        for level_number, row in enumerate(self._by_level):
            level = self._levels[level_number]
            for node in row:
                if node_filter is not None and not node_filter(
                    level_number, node.index
                ):
                    continue
                policy: RefreshPolicy
                if level.mode == PUSH:
                    policy = PassivePolicy()
                else:
                    assert policy_factory is not None
                    policy = policy_factory(level_number, object_id)
                self._register_node(node, object_id, policy, level.mode == PUSH)
                policies[node.name] = policy
        return policies

    def _register_node(
        self,
        node: TopologyNode,
        object_id: ObjectId,
        policy: RefreshPolicy,
        push: bool,
    ) -> None:
        """Install one node's policy now, or once its upstream is warm."""

        def install() -> None:
            node.proxy.register_object(object_id, node.upstream, policy)
            if push:
                self._subscribe_node(node, object_id)

        parent = node.parent
        if parent is None or _holds_object(parent.proxy, object_id):
            # Zero-latency links land here: the parent's initial fetch
            # completed inline during its own registration above.
            install()
        else:
            _InstallOnFirstPoll(parent.proxy, object_id, install)

    def _subscribe_node(self, node: TopologyNode, object_id: ObjectId) -> None:
        source = self._push_sources[node.parent]
        proxy = node.proxy

        def on_push(oid: ObjectId, _update_time: Seconds) -> None:
            proxy.trigger_poll(oid, reason=PollReason.PUSH)

        source.subscribe(object_id, on_push)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def polls_per_level(
        self, object_id: Optional[ObjectId] = None
    ) -> List[int]:
        """Summed poll counts by level (for one object, or totals)."""
        if object_id is None:
            return [
                sum(node.proxy.counters.get("polls") for node in row)
                for row in self._by_level
            ]
        return [
            sum(
                node.proxy.entry_for(object_id).poll_count for node in row
            )
            for row in self._by_level
        ]

    def total_polls(self) -> int:
        """Polls issued by every node in the tree."""
        return sum(self.polls_per_level())

    def push_notifications(self) -> int:
        """Push notification messages delivered across every push link."""
        return sum(
            source.counters.get("notifications")
            for source in self._push_sources.values()
        )

    def origin_request_count(self) -> int:
        """Requests the origin actually received (level-0 traffic)."""
        counters = getattr(self._origin, "counters", None)
        if counters is None:
            raise TopologyError(
                f"origin {self._origin.name!r} exposes no request counters"
            )
        return cast(int, counters.get("requests"))

    def __repr__(self) -> str:
        shape = "x".join(str(level.fan_out) for level in self._levels)
        return (
            f"TopologyTree(depth={self.depth}, shape={shape}, "
            f"nodes={self.node_count}, origin={self._origin.name!r})"
        )
