"""Sharded execution of topology trees across worker processes.

A :class:`~repro.topology.tree.TopologyTree` run decomposes cleanly at
a subtree boundary: child polls never mutate their parent's cache
(:meth:`~repro.proxy.proxy.ProxyCache.handle_request` reads with
``touch=False``), so a subtree's observable history depends only on the
origin's update schedule and the subtree's own ancestors — never on a
sibling subtree.  Each shard therefore simulates its slice of some
*boundary level* plus everything below it, with private replicas of the
ancestor levels above; replicas poll identically in every shard (same
seeds, same origin), so each ancestor node is *scored* by exactly one
shard — the shard owning its first boundary-level descendant — and the
merged result table is byte-identical to the serial run.

The pieces:

* :func:`plan_shards` — pick the boundary level (the shallowest level
  at least ``shards`` wide) and balanced contiguous index ranges.
* :class:`ShardSelection` — one shard's node sets: ``registers`` (its
  cone: owned subtrees plus ancestor replicas) and ``owns`` (the nodes
  whose result rows it reports).
* :func:`run_sharded` — execute shard 0 in-process (its live tree
  backs the returned outcome) and the rest as picklable
  ``functools.partial`` tasks through :func:`repro.api.runs.run_many`
  — the same process-pool seam parameter sweeps use — then merge the
  keyed rows deterministically.

Sharding composes with ``fidelity="fastforward"``; both knobs live on
:class:`~repro.api.config.SimulationConfig` (``shards``/``fidelity``)
and route through :func:`repro.api.builder.run_simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.api.config import SimulationConfig, SimulationConfigError

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycle
    from repro.api.builder import (
        KeyedRows,
        SimulationOutcome,
        TreeInstrument,
    )

#: A node address: ``(level, index)`` within the tree's level grid.
NodeKey = Tuple[int, int]


@dataclass(frozen=True)
class ShardSelection:
    """One shard's view of the tree.

    Attributes:
        shard: This shard's number in ``[0, shards)``.
        registers: Nodes that register objects (and therefore poll):
            the shard's owned subtrees plus replicas of every ancestor
            above its boundary slice.
        owns: The subset of ``registers`` whose result rows this shard
            reports.  Ancestor replicas polled by several shards are
            owned by exactly one, so merged rows never duplicate.
    """

    shard: int
    registers: FrozenSet[NodeKey]
    owns: FrozenSet[NodeKey]

    def node_filter(self, level: int, index: int) -> bool:
        """The registration predicate handed to ``register_object``."""
        return (level, index) in self.registers


@dataclass(frozen=True)
class ShardPlan:
    """How a tree splits: boundary level plus per-shard index ranges.

    Attributes:
        fan_outs: Per-level fan-outs, root level first.
        shards: Number of shards.
        boundary_level: The shallowest level at least ``shards`` wide;
            shards own contiguous slices of this level's nodes.
        ranges: Per-shard ``(start, stop)`` half-open index ranges at
            the boundary level, contiguous and covering the level.
    """

    fan_outs: Tuple[int, ...]
    shards: int
    boundary_level: int
    ranges: Tuple[Tuple[int, int], ...]

    def selection(self, shard: int) -> ShardSelection:
        """The node sets shard ``shard`` registers and owns."""
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard must be in [0, {self.shards}), got {shard}"
            )
        start, stop = self.ranges[shard]
        registers: Set[NodeKey] = set()
        owns: Set[NodeKey] = set()
        boundary = self.boundary_level
        # The owned cone: the boundary slice and every descendant level.
        multiplier = 1
        for level in range(boundary, len(self.fan_outs)):
            if level > boundary:
                multiplier *= self.fan_outs[level]
            for index in range(start * multiplier, stop * multiplier):
                registers.add((level, index))
                owns.add((level, index))
        # Ancestor replicas: every shard polls them (identically), but
        # only the shard holding an ancestor's first boundary-level
        # descendant reports its rows.
        divisor = 1
        for level in range(boundary - 1, -1, -1):
            divisor *= self.fan_outs[level + 1]
            for ancestor in range(start // divisor, (stop - 1) // divisor + 1):
                registers.add((level, ancestor))
                if start <= ancestor * divisor < stop:
                    owns.add((level, ancestor))
        return ShardSelection(
            shard=shard,
            registers=frozenset(registers),
            owns=frozenset(owns),
        )


def plan_shards(fan_outs: Sequence[int], shards: int) -> ShardPlan:
    """Partition a tree of ``fan_outs`` into ``shards`` balanced slices.

    The boundary is the shallowest level with at least ``shards``
    nodes; slices are contiguous and within one node of equal size.
    Raises :class:`~repro.api.config.SimulationConfigError` when no
    level is wide enough.
    """
    if shards < 1:
        raise SimulationConfigError(f"shards must be >= 1, got {shards}")
    fan_outs = tuple(fan_outs)
    if not fan_outs:
        raise SimulationConfigError("cannot shard a tree with no levels")
    width = 1
    boundary = None
    for level, fan_out in enumerate(fan_outs):
        width *= fan_out
        if width >= shards:
            boundary = level
            break
    if boundary is None:
        raise SimulationConfigError(
            f"cannot split {width} deepest-level node(s) into "
            f"{shards} shards; reduce shards or widen the tree"
        )
    base, remainder = divmod(width, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for shard in range(shards):
        stop = start + base + (1 if shard < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ShardPlan(
        fan_outs=fan_outs,
        shards=shards,
        boundary_level=boundary,
        ranges=tuple(ranges),
    )


def _plan_for(config: SimulationConfig) -> ShardPlan:
    if config.topology.kind != "tree":
        raise SimulationConfigError(
            f"sharding requires the 'tree' topology, "
            f"got {config.topology.kind!r}"
        )
    fan_outs = tuple(
        level.fan_out for level in config.topology.levels
    )
    return plan_shards(fan_outs, config.shards)


def _execute_shard(
    config: SimulationConfig,
    shard: int,
    instrument: Optional["TreeInstrument"] = None,
) -> "KeyedRows":
    """Run one shard and return its keyed result rows.

    Module-level (and invoked via ``functools.partial``) so worker
    processes can unpickle it; the live tree stays in the worker and
    only plain row data crosses back.
    """
    from repro.api.builder import _run_tree_config

    selection = _plan_for(config).selection(shard)
    _outcome, keyed = _run_tree_config(
        config, selection=selection, instrument=instrument
    )
    return keyed


def run_sharded(
    config: SimulationConfig,
    *,
    workers: Optional[int] = None,
    instrument: Optional["TreeInstrument"] = None,
) -> "SimulationOutcome":
    """Execute a ``tree`` config split across ``config.shards`` shards.

    The merged result table is byte-identical to the serial unsharded
    run: shards return disjoint row sets keyed by ``(level, index)``
    and the merge sorts on that key, reproducing the serial node
    traversal order.  Shard 0 runs in-process, so the returned
    outcome's ``run``/``tree``/``edges`` expose live objects for shard
    0's partition (ancestor replicas included); other shards exist only
    as their reported rows.

    ``workers`` sizes the process pool for shards 1..N-1 (``None``:
    serial in-process execution — still byte-identical, just slower).
    """
    from repro.api.builder import (
        RESULT_COLUMNS,
        SimulationOutcome,
        _run_tree_config,
    )
    from repro.api.results import ColumnarBuilder
    from repro.api.runs import run_many

    plan = _plan_for(config)
    tasks = [
        partial(_execute_shard, config, shard, instrument)
        for shard in range(1, plan.shards)
    ]
    remote: List["KeyedRows"] = (
        run_many(tasks, workers=workers) if tasks else []
    )
    outcome, keyed = _run_tree_config(
        config, selection=plan.selection(0), instrument=instrument
    )
    merged = list(keyed)
    for shard_batches in remote:
        merged.extend(shard_batches)
    merged.sort(key=lambda item: item[0])
    # Shards ship columnar batches (see ``KeyedRows``); rows
    # materialize exactly once, from the merged columns.
    assembly = ColumnarBuilder(RESULT_COLUMNS)
    for _key, batch in merged:
        assembly.extend(batch)
    return SimulationOutcome(
        config=config,
        run=outcome.run,
        results=assembly.build(),
        edges=outcome.edges,
        tree=outcome.tree,
    )
