"""Push notification fan-out: the transport behind push-mode levels.

:class:`PushFanout` is the subscription registry with simulated
delivery delay that every push-capable upstream uses.  Two bindings
place it in a tree:

* :class:`OriginPushSource` — taps an origin server's update stream
  (:meth:`repro.server.origin.OriginServer.add_update_listener`), so
  every applied update is pushed downstream.  This is the paper's
  footnote-1 "server pushes relevant changes to the proxy" design and
  what :class:`repro.consistency.invalidation.PushChannel` builds on.
* :class:`ProxyPushSource` — observes a parent *proxy*'s completed
  polls and pushes only the updates the parent itself observed.  An
  interior push level therefore relays the parent's (possibly
  subsampled) view, exactly as a real invalidation-forwarding cache
  hierarchy would.

Delivery cost model: one notification message per subscriber per
pushed update, after ``notify_latency`` (one link traversal); the
subscriber's subsequent fetch pays its own network round trip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.types import ObjectId, PollOutcome, Seconds
from repro.sim.kernel import Kernel
from repro.sim.stats import Counter
from repro.topology.protocols import PushCallback

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from repro.proxy.proxy import ProxyCache
    from repro.server.origin import OriginServer


class PushFanout:
    """Subscription registry with simulated notification delivery.

    Satisfies :class:`repro.topology.protocols.PushSource`.  Sources of
    update instants call :meth:`notify`; each subscriber's callback runs
    after ``notify_latency`` (immediately when zero, keeping the
    synchronous fast path allocation-free).
    """

    def __init__(
        self, kernel: Kernel, *, notify_latency: Seconds = 0.0
    ) -> None:
        if notify_latency < 0:
            raise ValueError(
                f"notify_latency must be >= 0, got {notify_latency}"
            )
        self._kernel = kernel
        self._notify_latency = notify_latency
        self._subscribers: Dict[ObjectId, List[PushCallback]] = {}
        self.counters = Counter()

    @property
    def notify_latency(self) -> Seconds:
        return self._notify_latency

    def subscribe(self, object_id: ObjectId, callback: PushCallback) -> None:
        """Register a subscriber for an object's updates."""
        self._subscribers.setdefault(object_id, []).append(callback)
        self.counters.increment("subscriptions")

    def unsubscribe(self, object_id: ObjectId, callback: PushCallback) -> None:
        """Remove a subscriber (no error if absent)."""
        callbacks = self._subscribers.get(object_id)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def subscriber_count(self, object_id: ObjectId) -> int:
        return len(self._subscribers.get(object_id, ()))

    def notify(self, object_id: ObjectId, time: Seconds) -> None:
        """Push one update notification at every subscriber."""
        for callback in list(self._subscribers.get(object_id, ())):
            self.counters.increment("notifications")
            if self._notify_latency == 0:
                callback(object_id, time)
            else:
                # `cb` must be bound as a default: a plain closure would
                # capture the loop variable by reference and deliver
                # every deferred notification to the last subscriber.
                self._kernel.schedule_after(
                    self._notify_latency,
                    lambda _k, cb=callback, oid=object_id, t=time: cb(oid, t),
                    label=f"push.{object_id}",
                )


class OriginPushSource(PushFanout):
    """Pushes every update an origin server applies.

    Taps the server's update stream, so updates fed the normal way
    (:func:`repro.server.updates.feed_traces`) reach subscribers without
    rerouting the feeder — the origin itself is the push source.
    """

    def __init__(
        self,
        kernel: Kernel,
        server: "OriginServer",
        *,
        notify_latency: Seconds = 0.0,
    ) -> None:
        super().__init__(kernel, notify_latency=notify_latency)
        self._server = server
        server.add_update_listener(self.notify)

    @property
    def server(self) -> "OriginServer":
        return self._server


class ProxyPushSource(PushFanout):
    """Pushes the updates a parent proxy *observes* on its own polls.

    Attaches to the parent as a poll observer; a completed poll that
    returned a modified copy is pushed downstream.  Updates the parent
    never saw (overwritten between its polls) stay invisible below —
    the fidelity a real relaying hierarchy provides.
    """

    def __init__(
        self,
        kernel: Kernel,
        parent: "ProxyCache",
        *,
        notify_latency: Seconds = 0.0,
    ) -> None:
        super().__init__(kernel, notify_latency=notify_latency)
        self._parent = parent
        parent.add_observer(self)

    @property
    def parent(self) -> "ProxyCache":
        return self._parent

    def on_poll_complete(
        self, object_id: ObjectId, outcome: PollOutcome
    ) -> None:
        """Poll-observer hook: relay modified polls as push notifications."""
        if outcome.modified:
            self.notify(object_id, outcome.poll_time)
