"""Per-level structural specification of a proxy tree.

A tree is described level by level: each :class:`TreeLevel` gives the
fan-out (children per node of the level above), the consistency
*transport* for the link to the level above (``pull`` — the node polls
on its refresh policy's TTR schedule — or ``push`` — the upstream
pushes update notifications and the node fetches on each one), and the
per-link latency model.

Refresh policies are deliberately *not* part of the level spec: the
structure of a tree and the policies run over it vary independently
(the same CDN shape is swept over many Δ values), so policies arrive at
registration time via a :data:`LevelPolicyFactory` — exactly the
contract the old :class:`repro.proxy.hierarchy.ProxyChain` used.

**Staleness composes additively.**  If level i guarantees its copy is
at most Δᵢ behind its upstream, the edge copy is at most ``Σ Δᵢ``
behind the origin (:func:`additive_staleness_bound`); push levels
contribute only their one-way delivery latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence, Tuple

from repro.core.errors import ReproError
from repro.core.types import ObjectId, Seconds
from repro.httpsim.network import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - type alias only; a runtime
    # import would cycle (consistency → invalidation → topology → here)
    from repro.consistency.base import RefreshPolicy

#: Builds the refresh policy for one (level, object) pair.  Level 0 is
#: the level closest to the origin; higher levels poll the level above.
LevelPolicyFactory = Callable[[int, ObjectId], "RefreshPolicy"]

#: A level whose nodes poll their upstream on a TTR schedule.
PULL = "pull"
#: A level whose upstream pushes update notifications at its nodes.
PUSH = "push"
#: The consistency transports a level can run against its upstream.
LEVEL_MODES: Tuple[str, ...] = (PULL, PUSH)


class TopologyError(ReproError):
    """A topology specification was malformed or inconsistent."""


@dataclass(frozen=True)
class TreeLevel:
    """Structure of one tree level: fan-out, link mode, link latency.

    Attributes:
        fan_out: Children per node of the level above (per origin for
            level 0); must be >= 1.
        mode: :data:`PULL` or :data:`PUSH`.
        latency: Latency model of every link into this level.
    """

    fan_out: int = 1
    mode: str = PULL
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        if self.fan_out < 1:
            raise TopologyError(
                f"level fan_out must be >= 1, got {self.fan_out}"
            )
        if self.mode not in LEVEL_MODES:
            raise TopologyError(
                f"level mode must be one of {LEVEL_MODES}, got {self.mode!r}"
            )


def uniform_levels(
    depth: int,
    *,
    fan_out: int = 1,
    mode: str = PULL,
    latency: LatencyModel = LatencyModel(),
) -> Tuple[TreeLevel, ...]:
    """``depth`` identical levels — chains (fan_out=1) and regular trees."""
    if depth < 1:
        raise TopologyError(f"depth must be >= 1, got {depth}")
    return tuple(
        TreeLevel(fan_out=fan_out, mode=mode, latency=latency)
        for _ in range(depth)
    )


def warm_up_bound(levels: Sequence[TreeLevel]) -> Seconds:
    """Worst-case time until the deepest level's registration lands.

    Below latent links a node only installs once its upstream's initial
    fetch completed (see
    :meth:`~repro.topology.tree.TopologyTree.register_object`), so the
    deepest level is registered after at most one worst-case round trip
    per upstream link: ``Σ 2·(one_way + jitter)`` over all levels above
    it.  Zero for any all-synchronous tree.
    """
    return sum(
        2 * (level.latency.one_way + level.latency.jitter)
        for level in levels[:-1]
    )


def additive_staleness_bound(per_level_bounds: Sequence[Seconds]) -> Seconds:
    """The edge's worst-case staleness behind the origin: ``Σ Δᵢ``.

    Each entry is the staleness bound one level guarantees against its
    own upstream — a pull level's Δ, a push level's one-way delivery
    latency.
    """
    if not per_level_bounds:
        raise TopologyError("need at least one per-level staleness bound")
    total: Seconds = 0.0
    for bound in per_level_bounds:
        if bound < 0:
            raise TopologyError(
                f"per-level staleness bounds must be >= 0, got {bound}"
            )
        total += bound
    return total
