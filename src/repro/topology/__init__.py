"""First-class cache topology: arbitrary proxy trees, pull or push per level.

The paper evaluates one proxy polling one origin; its related work
(Yin et al. [10], Yu et al. [11]) poses the open question of consistency
in proxy *hierarchies*, where staleness composes additively (Σ Δᵢ) but
origin load concentrates at the root.  This package makes that topology
a first-class, declarative object:

* :mod:`repro.topology.protocols` — the :class:`Upstream` protocol every
  node above another node satisfies (origin servers, proxies), plus the
  :class:`PushSource` protocol for nodes that push update notifications
  downstream;
* :mod:`repro.topology.levels` — :class:`TreeLevel`, the per-level
  structural spec (fan-out, pull/push mode, link latency) and the
  Σ Δᵢ staleness-bound helper;
* :mod:`repro.topology.push` — :class:`PushFanout`, the subscription
  registry with simulated delivery delay, and its two bindings:
  :class:`OriginPushSource` (origin pushes every applied update) and
  :class:`ProxyPushSource` (a proxy pushes every *observed* update);
* :mod:`repro.topology.tree` — :class:`TopologyTree`, the assembled
  tree of :class:`TopologyNode` proxies, built from a level spec and
  registered object by object, root-first.

The layers above construct through this package:
:func:`repro.api.runs.build_stack` builds its single proxy as a
one-node tree, :func:`repro.api.builder.run_simulation` maps every
``TopologyConfig`` kind (``single`` / ``hierarchy`` / ``tree``) onto a
:class:`TopologyTree`, and :class:`repro.proxy.hierarchy.ProxyChain`
survives as a deprecation shim over a fan-out-1 tree.
"""

from repro.topology.protocols import PushCallback, PushSource, Upstream
from repro.topology.levels import (
    LEVEL_MODES,
    PULL,
    PUSH,
    LevelPolicyFactory,
    TopologyError,
    TreeLevel,
    additive_staleness_bound,
    uniform_levels,
    warm_up_bound,
)
from repro.topology.push import OriginPushSource, ProxyPushSource, PushFanout
from repro.topology.tree import TopologyNode, TopologyTree

__all__ = [
    "LEVEL_MODES",
    "PULL",
    "PUSH",
    "LevelPolicyFactory",
    "OriginPushSource",
    "ProxyPushSource",
    "PushCallback",
    "PushFanout",
    "PushSource",
    "TopologyError",
    "TopologyNode",
    "TopologyTree",
    "TreeLevel",
    "Upstream",
    "additive_staleness_bound",
    "uniform_levels",
    "warm_up_bound",
]
