"""Structural protocols for topology nodes.

Two capabilities define what a node can do for the nodes below it:

* :class:`Upstream` — it answers conditional GETs.  Both
  :class:`repro.server.origin.OriginServer` and
  :class:`repro.proxy.proxy.ProxyCache` satisfy this (the same shape as
  :class:`repro.httpsim.semantics.RequestTarget`), which is what lets a
  child poll its parent exactly as it would poll an origin.
* :class:`PushSource` — it pushes update notifications at subscribers.
  :class:`repro.topology.push.PushFanout` and its bindings (including
  :class:`repro.consistency.invalidation.PushChannel`) satisfy this.

A hybrid tree mixes the two per level: a node below a push-capable
upstream subscribes and fetches on notification; a node below a plain
upstream polls on its refresh policy's TTR schedule.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.core.types import ObjectId, Seconds
from repro.httpsim.messages import Request, Response

#: Called when an update notification reaches a subscriber:
#: ``(object_id, update_time)``.
PushCallback = Callable[[ObjectId, Seconds], None]


@runtime_checkable
class Upstream(Protocol):
    """Anything a node can poll: an origin server or an upstream proxy."""

    name: str

    def handle_request(self, request: Request, now: Seconds) -> Response:
        """Answer a simulated HTTP request at time ``now``."""
        ...  # pragma: no cover - protocol definition


@runtime_checkable
class PushSource(Protocol):
    """Anything that pushes update notifications at downstream nodes."""

    def subscribe(self, object_id: ObjectId, callback: PushCallback) -> None:
        """Register a subscriber for an object's update notifications."""
        ...  # pragma: no cover - protocol definition

    def unsubscribe(self, object_id: ObjectId, callback: PushCallback) -> None:
        """Remove a subscriber (no error if absent)."""
        ...  # pragma: no cover - protocol definition
