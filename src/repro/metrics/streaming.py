"""O(1)-per-sample streaming accumulators for metrics collection.

Materialising a Python list per sample just to compute an aggregate
afterwards costs an allocation, a pointer append, and a second full
pass — per sample, on the simulation's hot path.  The accumulators here
ingest each observation in O(1) and answer the aggregate queries the
experiments actually make:

* :class:`StreamingMoments` — count/sum/sum-of-squares moments (mean,
  variance, stddev, min/max) with exact merging.
* :class:`ReservoirSample` — a fixed-size uniform sample (Algorithm R)
  for quantiles of unbounded streams.
* :class:`StreamingBinCounter` — per-bin event counts over a fixed
  window; the incremental form of
  :func:`repro.analysis.timeseries.bin_count`, and convertible to the
  same :class:`~repro.analysis.timeseries.Series`.

Quantiles come from either the reservoir (exact over the retained
sample) or :class:`repro.sim.stats.Histogram` fixed bins, depending on
whether memory or resolution matters more; see
``docs/ARCHITECTURE.md`` ("Performance").
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional

from repro.core.rng import DEFAULT_SEED, derive_seed
from repro.core.types import Seconds


class StreamingMoments:
    """Count/sum/sum-of-squares accumulator with O(1) ingest.

    The moment form (rather than Welford's recurrence, used by
    :class:`repro.sim.stats.SummaryStats`) makes two-accumulator
    :meth:`merge` exact, which parallel sweep collection needs.
    Variance is computed as ``E[x²] − E[x]²`` with a non-negativity
    clamp for float cancellation.
    """

    __slots__ = ("count", "total", "total_sq", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, x: float) -> None:
        """Ingest one observation in O(1)."""
        self.count += 1
        self.total += x
        self.total_sq += x * x
        if self.minimum is None or x < self.minimum:
            self.minimum = x
        if self.maximum is None or x > self.maximum:
            self.maximum = x

    def add_many(self, values: Iterable[float]) -> None:
        """Ingest a stream of observations."""
        for x in values:
            self.add(x)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator into this one (exact)."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        mean = self.total / self.count
        variance = self.total_sq / self.count - mean * mean
        return variance if variance > 0.0 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if not self.count:
            return "StreamingMoments(empty)"
        return (
            f"StreamingMoments(n={self.count}, mean={self.mean:.4g}, "
            f"min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


class ReservoirSample:
    """A fixed-size uniform random sample of an unbounded stream.

    Algorithm R: the first ``capacity`` observations fill the
    reservoir; observation ``i`` (0-based) then replaces a random slot
    with probability ``capacity / (i + 1)``.  Every prefix of the
    stream is uniformly represented, so sample quantiles estimate
    stream quantiles without retaining the stream.

    Args:
        capacity: Reservoir size (trade accuracy for memory).
        rng: Random stream; defaults to a stream seeded
            deterministically from :data:`repro.core.rng.DEFAULT_SEED`
            so identically-fed reservoirs retain identical samples
            across processes and runs (pass your own seeded
            ``random.Random`` to decorrelate multiple reservoirs).
    """

    __slots__ = ("_capacity", "_rng", "_seen", "_sample")

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._rng = (
            rng
            if rng is not None
            else random.Random(derive_seed(DEFAULT_SEED, "metrics.reservoir"))
        )
        self._seen = 0
        self._sample: List[float] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        """Total observations ingested (retained or not)."""
        return self._seen

    def add(self, x: float) -> None:
        """Ingest one observation in O(1)."""
        self._seen += 1
        if len(self._sample) < self._capacity:
            self._sample.append(x)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self._capacity:
            self._sample[slot] = x

    def values(self) -> List[float]:
        """A copy of the current reservoir contents (unordered)."""
        return list(self._sample)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the retained sample.

        Nearest-rank on the sorted reservoir; raises if empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._sample:
            raise ValueError("no observations recorded")
        ordered = sorted(self._sample)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def __repr__(self) -> str:
        return (
            f"ReservoirSample(capacity={self._capacity}, "
            f"held={len(self._sample)}, seen={self._seen})"
        )


class StreamingBinCounter:
    """Per-bin event counts over ``[start, end)``, ingested in O(1).

    The incremental form of :func:`repro.analysis.timeseries.bin_count`:
    feeding every time through :meth:`add` and calling
    :meth:`to_series` yields a bin-for-bin identical
    :class:`~repro.analysis.timeseries.Series` without first
    materialising the times in a list.  Out-of-window times are counted
    in :attr:`dropped` rather than silently ignored.
    """

    __slots__ = ("start", "end", "bin_width", "_counts", "dropped", "total")

    def __init__(self, *, start: Seconds, end: Seconds, bin_width: Seconds) -> None:
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.start = start
        self.end = end
        self.bin_width = bin_width
        self._counts = [0.0] * int(math.ceil((end - start) / bin_width))
        self.dropped = 0
        self.total = 0

    def add(self, t: Seconds) -> None:
        """Count one event instant (O(1))."""
        if self.start <= t < self.end:
            self._counts[int((t - self.start) / self.bin_width)] += 1.0
            self.total += 1
        else:
            self.dropped += 1

    def add_many(self, times: Iterable[Seconds]) -> None:
        for t in times:
            self.add(t)

    @property
    def counts(self) -> List[float]:
        return list(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def to_series(self, *, label: str = "") -> "Series":
        """Snapshot as a :class:`~repro.analysis.timeseries.Series`."""
        from repro.analysis.timeseries import Series

        return Series(
            start=self.start,
            bin_width=self.bin_width,
            values=tuple(self._counts),
            label=label,
        )

    def __repr__(self) -> str:
        return (
            f"StreamingBinCounter([{self.start}, {self.end}), "
            f"bins={len(self._counts)}, total={self.total}, "
            f"dropped={self.dropped})"
        )
