"""Convenience bridge between simulation state and fidelity metrics.

After a run, an experiment holds a :class:`~repro.proxy.proxy.ProxyCache`
(with per-entry fetch logs) and the ground-truth traces.  The collector
extracts poll schedules from the fetch logs and invokes the metric
functions, producing the rows the paper's figures plot.

Result-row production for the config execution path lives here too:
:func:`append_object_rows` and :func:`append_group_rows` emit each
node's cells positionally — under :data:`OBJECT_ROW_COLUMNS` and
:data:`GROUP_ROW_COLUMNS` respectively — into a caller-supplied row
writer (in practice a
:meth:`repro.api.results.ColumnarBuilder.row_writer`; the writer is
duck-typed so metrics never imports the api layer above it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycle
    from repro.groups.registry import GroupRegistry

from repro.core.types import ObjectId, Seconds
from repro.metrics.fidelity import (
    FidelityReport,
    temporal_fidelity,
    temporal_fidelity_from_snapshots,
    value_fidelity,
)
from repro.metrics.mutual import (
    mutual_poll_synchrony_fidelity,
    mutual_temporal_fidelity,
    mutual_value_fidelity,
)
from repro.metrics.streaming import StreamingMoments
from repro.proxy.proxy import ProxyCache
from repro.traces.model import UpdateTrace


def poll_times_of(proxy: ProxyCache, object_id: ObjectId) -> List[Seconds]:
    """The times of all completed polls of an object."""
    entry = proxy.entry_for(object_id)
    return [record.time for record in entry.fetch_log]


def poll_interval_moments(
    proxy: ProxyCache, object_id: ObjectId
) -> StreamingMoments:
    """Streaming moments of an object's inter-poll intervals.

    One O(1)-per-sample pass over the fetch log — no intermediate
    interval list — yielding count/mean/variance/min/max of the gaps
    between consecutive completed polls (the poll-cost side of the
    paper's fidelity-vs-polls trade-off).
    """
    moments = StreamingMoments()
    previous: Optional[Seconds] = None
    for record in proxy.entry_for(object_id).fetch_log:
        if previous is not None:
            moments.add(record.time - previous)
        previous = record.time
    return moments


def temporal_fetches_of(
    proxy: ProxyCache, object_id: ObjectId
) -> List[Tuple[Seconds, Seconds]]:
    """(poll time, obtained Last-Modified) pairs for an object."""
    entry = proxy.entry_for(object_id)
    return [
        (record.time, record.snapshot.last_modified)
        for record in entry.fetch_log
    ]


def synchrony_fetches_of(
    proxy: ProxyCache, object_id: ObjectId
) -> List[Tuple[Seconds, bool]]:
    """(poll time, modified?) pairs for poll-synchrony evaluation."""
    entry = proxy.entry_for(object_id)
    return [(record.time, record.modified) for record in entry.fetch_log]


def value_fetches_of(
    proxy: ProxyCache, object_id: ObjectId
) -> List[Tuple[Seconds, float]]:
    """(poll time, obtained value) pairs for a valued object."""
    entry = proxy.entry_for(object_id)
    fetches: List[Tuple[Seconds, float]] = []
    for record in entry.fetch_log:
        if record.snapshot.value is not None:
            fetches.append((record.time, record.snapshot.value))
    return fetches


@dataclass(frozen=True)
class ObjectReport:
    """Per-object evaluation: poll count plus a fidelity report."""

    object_id: ObjectId
    report: FidelityReport

    @property
    def polls(self) -> int:
        return self.report.polls


def collect_temporal(
    proxy: ProxyCache,
    trace: UpdateTrace,
    delta: Seconds,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> ObjectReport:
    """Δt-consistency report for one object after a run."""
    polls = poll_times_of(proxy, trace.object_id)
    report = temporal_fidelity(trace, polls, delta, start=start, end=end)
    return ObjectReport(object_id=trace.object_id, report=report)


def collect_snapshot_fidelity(
    proxy: ProxyCache, trace: UpdateTrace, delta: Seconds
) -> ObjectReport:
    """Δt-consistency report scored from the snapshots actually held.

    Essential for nodes below another cache (hierarchy edges, deep
    topology-tree levels): their polls refresh to *upstream*-current
    state, which can itself be stale, so poll-time scoring
    (:func:`collect_temporal`) would overestimate freshness.
    """
    report = temporal_fidelity_from_snapshots(
        trace, proxy.entry_for(trace.object_id).fetch_log, delta
    )
    return ObjectReport(object_id=trace.object_id, report=report)


def collect_value(
    proxy: ProxyCache,
    trace: UpdateTrace,
    delta: float,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> ObjectReport:
    """Δv-consistency report for one valued object after a run."""
    fetches = value_fetches_of(proxy, trace.object_id)
    report = value_fidelity(trace, fetches, delta, start=start, end=end)
    return ObjectReport(object_id=trace.object_id, report=report)


@dataclass(frozen=True)
class EvictionImpact:
    """How a bounded cache's evictions interacted with consistency.

    Each eviction of an object opens an absence window (see
    :class:`~repro.proxy.cache.EvictionWindow`): until the refetch the
    proxy holds neither a copy nor poll history, so the consistency
    policy's Δ bound cannot hold by construction.  A window counts as an
    *effective staleness violation* when an origin update actually fell
    inside it and was still unserved more than Δ later — eviction did
    not merely suspend the bound, it voided it.

    Attributes:
        object_id: The object evaluated.
        evictions: Times the object was evicted from this cache.
        refetches_after_evict: Absence windows closed by a refetch.
        staleness_violations: Windows in which an origin update went
            unseen for longer than Δ (``0`` when ``delta`` is ``None``).
        absent_time: Total simulated time the object was missing from
            the cache (open windows clipped at the horizon).
    """

    object_id: ObjectId
    evictions: int
    refetches_after_evict: int
    staleness_violations: int
    absent_time: Seconds


def collect_eviction_impact(
    proxy: ProxyCache,
    trace: UpdateTrace,
    delta: Optional[Seconds],
    *,
    horizon: Optional[Seconds] = None,
) -> EvictionImpact:
    """Eviction × consistency report for one object after a run.

    ``horizon`` closes still-open absence windows (defaults to the
    trace end); ``delta`` is the Δ bound the policy promised — pass
    ``None`` to skip violation counting (unbounded runs report zeros
    across the board since no windows exist).
    """
    end = horizon if horizon is not None else trace.end_time
    evictions = 0
    refetches = 0
    violations = 0
    absent = 0.0
    for window in proxy.cache.eviction_windows:
        if window.object_id != trace.object_id:
            continue
        evictions += 1
        if window.closed:
            refetches += 1
        close = window.refetched_at if window.refetched_at is not None else end
        absent += window.duration(end)
        if delta is None:
            continue
        # The bound is voided iff some update inside the window was
        # still unserved more than Δ after it happened: the first
        # chance to serve it is the refetch (or never, for open
        # windows — scored at the horizon).
        for update in trace.updates_in(window.evicted_at, close):
            if close - update.time > delta:
                violations += 1
                break
    return EvictionImpact(
        object_id=trace.object_id,
        evictions=evictions,
        refetches_after_evict=refetches,
        staleness_violations=violations,
        absent_time=absent,
    )


@dataclass(frozen=True)
class PairReport:
    """Mutual-consistency evaluation for an object pair."""

    pair: Tuple[ObjectId, ObjectId]
    report: FidelityReport
    polls_a: int
    polls_b: int

    @property
    def total_polls(self) -> int:
        return self.polls_a + self.polls_b


def collect_mutual_temporal(
    proxy: ProxyCache,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    delta: Seconds,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> PairReport:
    """Mt report for a pair after a run."""
    fetches_a = temporal_fetches_of(proxy, trace_a.object_id)
    fetches_b = temporal_fetches_of(proxy, trace_b.object_id)
    report = mutual_temporal_fidelity(
        trace_a, trace_b, fetches_a, fetches_b, delta, start=start, end=end
    )
    return PairReport(
        pair=(trace_a.object_id, trace_b.object_id),
        report=report,
        polls_a=len(fetches_a),
        polls_b=len(fetches_b),
    )


def collect_mutual_synchrony(
    proxy: ProxyCache,
    object_a: ObjectId,
    object_b: ObjectId,
    delta: Seconds,
) -> PairReport:
    """Operational (poll-synchrony) Mt report for a pair after a run."""
    fetches_a = synchrony_fetches_of(proxy, object_a)
    fetches_b = synchrony_fetches_of(proxy, object_b)
    report = mutual_poll_synchrony_fidelity(fetches_a, fetches_b, delta)
    return PairReport(
        pair=(object_a, object_b),
        report=report,
        polls_a=len(fetches_a),
        polls_b=len(fetches_b),
    )


def collect_mutual_value(
    proxy: ProxyCache,
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    delta: float,
    *,
    f: Callable[[float, float], float] = lambda x, y: x - y,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> PairReport:
    """Mv report for a valued pair after a run."""
    fetches_a = value_fetches_of(proxy, trace_a.object_id)
    fetches_b = value_fetches_of(proxy, trace_b.object_id)
    report = mutual_value_fidelity(
        trace_a, trace_b, fetches_a, fetches_b, delta,
        f=f, start=start, end=end,
    )
    return PairReport(
        pair=(trace_a.object_id, trace_b.object_id),
        report=report,
        polls_a=len(fetches_a),
        polls_b=len(fetches_b),
    )


#: A positional row appender (duck-typed; see the module docstring).
RowAppender = Callable[..., None]

#: The per-(node, object) cells :func:`append_object_rows` emits, in
#: call order.  The api layer's result schema is assembled from this
#: plus :data:`GROUP_ROW_COLUMNS` (see
#: :data:`repro.api.builder.RESULT_COLUMNS`).
OBJECT_ROW_COLUMNS: Tuple[str, ...] = (
    "node",
    "object",
    "updates",
    "polls",
    "fidelity_by_violations",
    "fidelity_by_time",
    "evictions",
    "refetch_after_evict",
    "staleness_violations",
)

#: The per-(node, group) cells :func:`append_group_rows` emits, in
#: call order.
GROUP_ROW_COLUMNS: Tuple[str, ...] = (
    "node",
    "group",
    "group_polls",
    "group_violations",
    "group_fidelity_by_violations",
    "group_fidelity_by_time",
)


def append_object_rows(
    write: RowAppender,
    node: str,
    proxy: ProxyCache,
    traces: Sequence[UpdateTrace],
    delta: Optional[Seconds],
    *,
    horizon: Optional[Seconds] = None,
    snapshots: bool = False,
) -> None:
    """Emit one :data:`OBJECT_ROW_COLUMNS` row per trace on one node.

    ``snapshots`` selects snapshot-based fidelity scoring
    (:func:`collect_snapshot_fidelity`) for nodes below another cache;
    poll-time scoring (:func:`collect_temporal`) is the default.  With
    ``delta=None`` the fidelity cells are ``None``.
    """
    for trace in traces:
        # A bounded cache may have evicted the object without a later
        # refetch: there is then no entry (and no poll history) to
        # score — entry_or_none still raises for unregistered objects.
        entry = proxy.entry_or_none(trace.object_id)
        violations: Optional[float] = None
        by_time: Optional[float] = None
        polls = 0
        if entry is not None:
            if delta is not None:
                collect = (
                    collect_snapshot_fidelity if snapshots else collect_temporal
                )
                report = collect(proxy, trace, delta).report
                violations = report.fidelity_by_violations
                by_time = report.fidelity_by_time
            polls = entry.poll_count
        impact = collect_eviction_impact(proxy, trace, delta, horizon=horizon)
        write(
            node,
            str(trace.object_id),
            trace.update_count,
            polls,
            violations,
            by_time,
            impact.evictions,
            impact.refetches_after_evict,
            impact.staleness_violations,
        )


def append_group_rows(
    write: RowAppender,
    node: str,
    proxy: ProxyCache,
    registry: "GroupRegistry",
    traces_by_id: Dict[ObjectId, UpdateTrace],
    horizon: Seconds,
) -> None:
    """Emit one :data:`GROUP_ROW_COLUMNS` row per group on one node."""
    from repro.metrics.group import group_temporal_fidelity

    for spec in registry:
        fetches = {}
        for member in spec.members:
            # A bounded cache may have evicted a member; its fetch
            # history is gone, so it contributes no poll events (the
            # group metric then scores the remaining members' polls).
            entry = proxy.entry_or_none(member)
            fetches[member] = (
                [] if entry is None else temporal_fetches_of(proxy, member)
            )
        report = group_temporal_fidelity(
            {member: traces_by_id[member] for member in spec.members},
            fetches,
            spec.mutual_delta,
            end=horizon,
        )
        write(
            node,
            str(spec.group_id),
            report.polls,
            report.violations,
            report.fidelity_by_violations,
            report.fidelity_by_time,
        )
