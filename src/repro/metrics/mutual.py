"""Ground-truth fidelity metrics for *mutual* consistency.

Temporal (Eq. 4): the cached copies of a and b are Mt-consistent at
time t iff there exist server instants t₁, t₂ with ``S_a(t₁) = P_a(t)``,
``S_b(t₂) = P_b(t)`` and ``|t₁ − t₂| ≤ δ``.  The set of instants at
which the server held a's cached version is that version's *validity
interval* ``[lm, next-update)``; the condition therefore reduces to the
gap between the two validity intervals being at most δ.  For δ = 0 this
is exactly "the objects simultaneously existed on the server at some
point" — the paper's own intuition.

Value (Eq. 5): ``|f(S_a(t), S_b(t)) − f(P_a(t), P_b(t))| < δ`` at every
instant.  Both sides are step functions (the server side steps at
updates, the proxy side at polls), so the condition is evaluated
segment-by-segment over the merged event timeline.

Violation counting (Eq. 13 analogue): the condition is checked just
after every completed poll of either member; fidelity is
``1 − violations / polls``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.types import Seconds
from repro.metrics.fidelity import FidelityReport
from repro.traces.model import UpdateTrace

#: (poll_time, last_modified of the version obtained) — the minimal
#: per-poll record mutual-temporal evaluation needs.
TemporalFetch = Tuple[Seconds, Seconds]
#: (poll_time, value obtained).
ValueFetch = Tuple[Seconds, float]


# ----------------------------------------------------------------------
# Temporal domain (Mt)
# ----------------------------------------------------------------------
def validity_interval(
    trace: UpdateTrace, version_origin: Seconds
) -> Tuple[Seconds, Seconds]:
    """The server-side interval during which a version was current.

    Args:
        trace: The object's true update history.
        version_origin: The version's creation time (its Last-Modified).

    Returns:
        ``(start, end)`` with ``end = +inf`` when the version is still
        current at the end of the trace.
    """
    nxt = trace.next_after(version_origin)
    end = nxt.time if nxt is not None else math.inf
    return (version_origin, end)


def interval_gap(
    a: Tuple[Seconds, Seconds], b: Tuple[Seconds, Seconds]
) -> Seconds:
    """Distance between two half-open intervals (0 when they overlap)."""
    (start_a, end_a), (start_b, end_b) = a, b
    return max(0.0, max(start_a, start_b) - min(end_a, end_b))


def mutually_consistent_at(
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    origin_a: Seconds,
    origin_b: Seconds,
    delta: Seconds,
) -> bool:
    """Eq. 4 check for cached versions with the given origination times."""
    gap = interval_gap(
        validity_interval(trace_a, origin_a),
        validity_interval(trace_b, origin_b),
    )
    return gap <= delta


def mutual_temporal_fidelity(
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    fetches_a: Sequence[TemporalFetch],
    fetches_b: Sequence[TemporalFetch],
    delta: Seconds,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> FidelityReport:
    """Ground-truth Mt fidelity for a pair of objects.

    Args:
        trace_a, trace_b: True update histories.
        fetches_a, fetches_b: Each object's (poll time, obtained
            Last-Modified) pairs, ascending.
        delta: The mutual tolerance δ (seconds).  δ = 0 is allowed.
        start, end: Evaluation window; defaults to the union of the two
            trace windows.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    window_start = (
        start if start is not None else min(trace_a.start_time, trace_b.start_time)
    )
    window_end = (
        end if end is not None else max(trace_a.end_time, trace_b.end_time)
    )

    # Merge per-object fetch sequences into one event timeline.  Each
    # event switches one side's cached-version origin.  Events sharing
    # an exact timestamp (a detected update plus its synchronously
    # triggered partner poll) are applied together and judged once —
    # a violation "fixed" at the same instant it could first be observed
    # never existed.
    events: List[Tuple[Seconds, str, Seconds]] = []
    events.extend((t, "a", lm) for t, lm in fetches_a)
    events.extend((t, "b", lm) for t, lm in fetches_b)
    events.sort(key=lambda e: e[0])

    polls = len(events)
    violations = 0
    out_sync = 0.0
    origin_a: Optional[Seconds] = None
    origin_b: Optional[Seconds] = None

    index = 0
    total = len(events)
    while index < total:
        time = events[index][0]
        group_end = index
        while group_end < total and events[group_end][0] == time:
            _, side, last_modified = events[group_end]
            if side == "a":
                origin_a = last_modified
            else:
                origin_b = last_modified
            group_end += 1
        group_size = group_end - index
        segment_end = events[group_end][0] if group_end < total else window_end
        index = group_end
        if origin_a is None or origin_b is None:
            continue
        consistent = mutually_consistent_at(
            trace_a, trace_b, origin_a, origin_b, delta
        )
        if not consistent:
            violations += group_size
        # Within (time, segment_end) the cached versions are fixed, and
        # validity intervals depend only on the traces, so consistency
        # is constant over the segment.
        if not consistent and segment_end > time:
            lo = max(time, window_start)
            hi = min(segment_end, window_end)
            if hi > lo:
                out_sync += hi - lo

    return FidelityReport(
        polls=polls,
        violations=violations,
        out_sync_time=out_sync,
        duration=window_end - window_start,
    )


# ----------------------------------------------------------------------
# Operational (poll-synchrony) Mt fidelity
# ----------------------------------------------------------------------
#: (poll_time, modified?) — the record poll-synchrony evaluation needs.
SynchronyFetch = Tuple[Seconds, bool]


def mutual_poll_synchrony_fidelity(
    fetches_a: Sequence[SynchronyFetch],
    fetches_b: Sequence[SynchronyFetch],
    delta: Seconds,
) -> FidelityReport:
    """The paper's operational Mt fidelity measure (Section 6.2.2).

    Mutual consistency is enforced by keeping polls of related objects
    in phase when updates occur; correspondingly a *violation* is a poll
    that detects an update while the partner's nearest poll (previous or
    next) is more than δ away.  Under this measure the triggered-poll
    technique has fidelity 1 *by definition* — exactly the property the
    paper states for Figure 5(b) — because every detected update either
    triggers an immediate partner poll or finds one within δ.

    Poll synchrony within δ is *sufficient* for the Eq. 4 ground-truth
    condition at that instant (two versions simultaneously current
    within δ of each other), so this measure never reports a false
    "consistent" at detection points; the stricter ground-truth measure
    (:func:`mutual_temporal_fidelity`) additionally integrates staleness
    between polls.

    ``out_sync_time`` is reported as 0 here; use the ground-truth
    measure for Eq. 14-style accounting.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    times_a = [t for t, _ in fetches_a]
    times_b = [t for t, _ in fetches_b]
    violations = 0
    violations += _synchrony_violations(fetches_a, times_b, delta)
    violations += _synchrony_violations(fetches_b, times_a, delta)
    polls = len(fetches_a) + len(fetches_b)
    return FidelityReport(
        polls=polls, violations=violations, out_sync_time=0.0, duration=0.0
    )


def _synchrony_violations(
    detections: Sequence[SynchronyFetch],
    partner_times: Sequence[Seconds],
    delta: Seconds,
) -> int:
    import bisect

    count = 0
    for time, modified in detections:
        if not modified:
            continue
        index = bisect.bisect_left(partner_times, time - delta)
        # Is there any partner poll in [time - delta, time + delta]?
        if index < len(partner_times) and partner_times[index] <= time + delta:
            continue
        count += 1
    return count


# ----------------------------------------------------------------------
# Value domain (Mv)
# ----------------------------------------------------------------------
def mutual_value_fidelity(
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    fetches_a: Sequence[ValueFetch],
    fetches_b: Sequence[ValueFetch],
    delta: float,
    *,
    f: Callable[[float, float], float] = lambda x, y: x - y,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> FidelityReport:
    """Ground-truth Mv fidelity (Eq. 5) for a pair of valued objects.

    Polls are the union of both objects' fetches; a poll is a violation
    if the bound ``|f(S) − f(P)| < δ`` fails at any instant between it
    and the next poll (with the post-poll cached values).
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    window_start = (
        start if start is not None else min(trace_a.start_time, trace_b.start_time)
    )
    window_end = (
        end if end is not None else max(trace_a.end_time, trace_b.end_time)
    )

    # Proxy-side step events.
    events: List[Tuple[Seconds, str, float]] = []
    events.extend((t, "a", v) for t, v in fetches_a)
    events.extend((t, "b", v) for t, v in fetches_b)
    events.sort(key=lambda e: e[0])

    polls = len(events)
    violations = 0
    out_sync = 0.0
    cached_a: Optional[float] = None
    cached_b: Optional[float] = None

    for index, (time, side, value) in enumerate(events):
        if side == "a":
            cached_a = value
        else:
            cached_b = value
        segment_end = events[index + 1][0] if index + 1 < len(events) else window_end
        if cached_a is None or cached_b is None:
            continue
        f_proxy = f(cached_a, cached_b)
        violated, stale = _mv_segment_stats(
            trace_a, trace_b, time, segment_end, f_proxy, delta, f,
            window_start, window_end,
        )
        if violated:
            violations += 1
        out_sync += stale

    return FidelityReport(
        polls=polls,
        violations=violations,
        out_sync_time=out_sync,
        duration=window_end - window_start,
    )


def _mv_segment_stats(
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    segment_start: Seconds,
    segment_end: Seconds,
    f_proxy: float,
    delta: float,
    f: Callable[[float, float], float],
    window_start: Seconds,
    window_end: Seconds,
) -> Tuple[bool, Seconds]:
    """(bound broken?, stale seconds) over one inter-poll segment.

    The check at ``segment_start`` itself is included — a poll that
    lands while the server-side f is already δ away counts immediately.
    """
    # Server-side step knots within the segment.
    server_events: List[Seconds] = [segment_start]
    server_events.extend(
        u.time for u in trace_a.updates_in(segment_start, segment_end)
    )
    server_events.extend(
        u.time for u in trace_b.updates_in(segment_start, segment_end)
    )
    server_events = sorted(set(server_events))
    server_events.append(segment_end)

    violated = False
    stale = 0.0
    for knot, nxt in zip(server_events, server_events[1:]):
        if nxt <= knot:
            # Zero-length sub-interval: an update landing exactly at the
            # segment boundary is repaired by the poll at that same
            # instant and never observable.
            continue
        state_a = trace_a.latest_at(knot)
        state_b = trace_b.latest_at(knot)
        if state_a is None or state_b is None:
            continue
        if state_a.value is None or state_b.value is None:
            continue
        f_server = f(state_a.value, state_b.value)
        if abs(f_server - f_proxy) >= delta:
            violated = True
            lo = max(knot, window_start)
            hi = min(nxt, window_end)
            if hi > lo:
                stale += hi - lo
    return violated, stale
