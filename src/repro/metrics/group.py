"""Mutual-consistency metrics generalised to n-object groups.

The paper defines Mt/Mv for pairs "for simplicity, but all our
definitions can be generalized to n objects".  The natural
generalisation of Eq. 4: a group's cached copies are Mt-consistent at
time t iff there exist server instants t₁...tₙ, one per member's cached
version's validity interval, that all fit inside a window of width δ.
For intervals this reduces to::

    max_i(start_i) − min_i(end_i) ≤ δ

i.e. the *spread* between the latest validity start and the earliest
validity end is at most δ (pairs recover Eq. 4's interval gap).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.types import ObjectId, Seconds
from repro.metrics.fidelity import FidelityReport
from repro.metrics.mutual import TemporalFetch, validity_interval
from repro.traces.model import UpdateTrace


def group_interval_spread(
    intervals: Sequence[Tuple[Seconds, Seconds]],
) -> Seconds:
    """The group generalisation of the pairwise interval gap.

    Returns 0 when one instant can be picked inside every interval
    (common overlap); otherwise the minimal window width minus zero —
    concretely ``max(starts) − min(ends)`` clamped at 0.
    """
    if not intervals:
        raise ValueError("need at least one interval")
    latest_start = max(start for start, _ in intervals)
    earliest_end = min(end for _, end in intervals)
    return max(0.0, latest_start - earliest_end)


def group_mutually_consistent_at(
    traces: Dict[ObjectId, UpdateTrace],
    origins: Dict[ObjectId, Seconds],
    delta: Seconds,
) -> bool:
    """Eq. 4 generalised: do the cached versions' validity intervals fit
    within a window of width δ?"""
    intervals = [
        validity_interval(traces[object_id], origin)
        for object_id, origin in origins.items()
    ]
    return group_interval_spread(intervals) <= delta


def group_temporal_fidelity(
    traces: Dict[ObjectId, UpdateTrace],
    fetches: Dict[ObjectId, Sequence[TemporalFetch]],
    delta: Seconds,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> FidelityReport:
    """Ground-truth Mt fidelity for an n-object group.

    The group condition is evaluated after every poll of any member
    (same-instant polls grouped, as in the pairwise metric), and the
    out-of-sync time integrates the periods where the condition fails.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if set(traces) != set(fetches):
        raise ValueError("traces and fetches must cover the same objects")
    if len(traces) < 2:
        raise ValueError("a group needs at least two members")

    window_start = (
        start
        if start is not None
        else min(t.start_time for t in traces.values())
    )
    window_end = (
        end if end is not None else max(t.end_time for t in traces.values())
    )

    events: List[Tuple[Seconds, ObjectId, Seconds]] = []
    for object_id, object_fetches in fetches.items():
        events.extend((t, object_id, lm) for t, lm in object_fetches)
    events.sort(key=lambda e: e[0])

    polls = len(events)
    violations = 0
    out_sync = 0.0
    origins: Dict[ObjectId, Seconds] = {}

    index = 0
    total = len(events)
    while index < total:
        time = events[index][0]
        group_end = index
        while group_end < total and events[group_end][0] == time:
            _, object_id, last_modified = events[group_end]
            origins[object_id] = last_modified
            group_end += 1
        group_size = group_end - index
        segment_end = events[group_end][0] if group_end < total else window_end
        index = group_end
        if len(origins) < len(traces):
            continue  # some member never fetched yet
        consistent = group_mutually_consistent_at(traces, origins, delta)
        if not consistent:
            violations += group_size
            if segment_end > time:
                lo = max(time, window_start)
                hi = min(segment_end, window_end)
                if hi > lo:
                    out_sync += hi - lo

    return FidelityReport(
        polls=polls,
        violations=violations,
        out_sync_time=out_sync,
        duration=window_end - window_start,
    )
