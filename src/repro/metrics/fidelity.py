"""Ground-truth fidelity metrics for *individual* consistency.

The paper evaluates mechanisms by (i) number of polls and (ii) fidelity,
measured two ways::

    f = 1 − violations / polls                (Eq. 13)
    f = 1 − out-of-sync time / trace duration (Eq. 14)

These computations are **omniscient**: they use the full update trace
(ground truth), not what the proxy managed to observe — a mechanism must
not get credit for violations it failed to detect.

Temporal-domain semantics (Eq. 2, Figure 1): after a poll at ``p`` the
proxy's copy equals the server state at ``p``; the copy stays
Δt-consistent until Δ after the *first* subsequent server update.  A
poll at ``q`` therefore reveals a violation iff the first update in
``(p, q]`` is more than Δ old at ``q``.

Value-domain semantics (Eq. 3): the copy is consistent at time t iff
``|S(t) − cached value| < Δ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.types import Seconds
from repro.traces.model import UpdateTrace


@dataclass(frozen=True)
class FidelityReport:
    """Poll count, violation count, and both fidelity measures."""

    polls: int
    violations: int
    out_sync_time: Seconds
    duration: Seconds

    @property
    def fidelity_by_violations(self) -> float:
        """Eq. 13.  Defined as 1.0 when there were no polls."""
        if self.polls == 0:
            return 1.0
        return 1.0 - self.violations / self.polls

    @property
    def fidelity_by_time(self) -> float:
        """Eq. 14.  Defined as 1.0 for a zero-length window."""
        if self.duration <= 0:
            return 1.0
        return 1.0 - self.out_sync_time / self.duration


# ----------------------------------------------------------------------
# Temporal domain
# ----------------------------------------------------------------------
def temporal_fidelity(
    trace: UpdateTrace,
    poll_times: Sequence[Seconds],
    delta: Seconds,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> FidelityReport:
    """Evaluate Δt-consistency of a polling schedule against ground truth.

    Args:
        trace: The object's true update history.
        poll_times: When the proxy refreshed the object (ascending).
            The first entry is normally the initial fetch.
        delta: The Δ bound, in seconds.
        start, end: Evaluation window (defaults to the trace window).
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    window_start = start if start is not None else trace.start_time
    window_end = end if end is not None else trace.end_time
    polls = sorted(poll_times)
    _require_ascending(polls)

    violations = 0
    for prev, curr in zip(polls, polls[1:]):
        first = trace.next_after(prev)
        if first is not None and first.time <= curr:
            if curr - first.time > delta:
                violations += 1

    out_sync = _temporal_out_sync_time(
        trace, polls, delta, window_start, window_end
    )
    return FidelityReport(
        polls=len(polls),
        violations=violations,
        out_sync_time=out_sync,
        duration=window_end - window_start,
    )


def temporal_fidelity_from_snapshots(
    trace: UpdateTrace,
    fetch_log: Sequence,
    delta: Seconds,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> FidelityReport:
    """Evaluate Δt-consistency from the snapshots a cache actually held.

    :func:`temporal_fidelity` assumes every poll refreshes the copy to
    the origin-current version — true for a proxy polling the origin,
    but *not* for an edge proxy polling a parent cache, whose responses
    can themselves be stale.  This variant instead walks the cache's
    fetch log: between fetches the copy corresponds to the server state
    of its ``last_modified`` instant, and the Δ bound is violated from
    ``delta`` after the first origin update newer than that instant.

    Args:
        trace: The object's true (origin) update history.
        fetch_log: :class:`~repro.proxy.entry.FetchRecord` sequence from
            the cache entry under evaluation.
        delta: The Δ bound, in seconds.
        start, end: Evaluation window (defaults to the trace window).

    Returns:
        A report whose ``violations`` counts stale *segments* (fetch
        intervals that spent time out of sync) rather than Eq. 13 poll
        violations; the time-based fidelity (Eq. 14) is the headline
        measure for hierarchical setups.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    window_start = start if start is not None else trace.start_time
    window_end = end if end is not None else trace.end_time
    records = list(fetch_log)
    out_sync = 0.0
    stale_segments = 0
    for index, record in enumerate(records):
        segment_start = max(record.time, window_start)
        segment_end = (
            records[index + 1].time if index + 1 < len(records) else window_end
        )
        segment_end = min(segment_end, window_end)
        if segment_end <= segment_start:
            continue
        unseen = trace.next_after(record.snapshot.last_modified)
        if unseen is None:
            continue
        stale_from = max(segment_start, unseen.time + delta)
        if stale_from < segment_end:
            out_sync += segment_end - stale_from
            stale_segments += 1
    return FidelityReport(
        polls=len(records),
        violations=stale_segments,
        out_sync_time=out_sync,
        duration=window_end - window_start,
    )


def _temporal_out_sync_time(
    trace: UpdateTrace,
    polls: List[Seconds],
    delta: Seconds,
    window_start: Seconds,
    window_end: Seconds,
) -> Seconds:
    """Integrate the time during which the Δt bound does not hold."""
    if not polls:
        # Never fetched: out of sync from Δ after the first update.
        first = trace.next_after(window_start)
        if first is None:
            return 0.0
        return max(0.0, window_end - (first.time + delta))

    out_sync = 0.0
    # Before the first poll the proxy holds nothing; the paper's runs
    # start with an initial fetch, so we charge nothing before polls[0].
    boundaries = list(polls) + [window_end]
    for index in range(len(polls)):
        segment_start = boundaries[index]
        segment_end = boundaries[index + 1]
        if segment_end <= segment_start:
            continue
        first = trace.next_after(segment_start)
        if first is None:
            continue
        stale_from = first.time + delta
        lo = max(segment_start, stale_from, window_start)
        hi = min(segment_end, window_end)
        if hi > lo:
            out_sync += hi - lo
    return out_sync


# ----------------------------------------------------------------------
# Value domain
# ----------------------------------------------------------------------
def value_fidelity(
    trace: UpdateTrace,
    fetches: Sequence[Tuple[Seconds, float]],
    delta: float,
    *,
    start: Optional[Seconds] = None,
    end: Optional[Seconds] = None,
) -> FidelityReport:
    """Evaluate Δv-consistency of a fetch schedule against ground truth.

    Args:
        trace: The object's true tick history (valued records).
        fetches: (poll_time, value obtained) pairs, ascending in time.
        delta: The Δ value bound.
        start, end: Evaluation window (defaults to the trace window).

    A poll counts as a violation (Eq. 13) if the bound was broken at any
    instant since the previous poll.  Out-of-sync time (Eq. 14)
    integrates the periods with ``|S(t) − cached| ≥ Δ``.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if not trace.has_values:
        raise ValueError("value_fidelity requires a value-domain trace")
    window_start = start if start is not None else trace.start_time
    window_end = end if end is not None else trace.end_time
    times = [t for t, _ in fetches]
    _require_ascending(times)

    violations = 0
    out_sync = 0.0
    for index, (poll_time, cached_value) in enumerate(fetches):
        segment_end = (
            fetches[index + 1][0] if index + 1 < len(fetches) else window_end
        )
        if segment_end <= poll_time:
            continue
        violated, stale = _value_segment_stats(
            trace, poll_time, segment_end, cached_value, delta,
            window_start, window_end,
        )
        # Attribute the violation to the poll that *ended* the segment,
        # mirroring Eq. 13's "violations per poll" accounting.  The
        # final open segment has no closing poll; its staleness still
        # counts toward out-of-sync time.
        if violated and index + 1 < len(fetches):
            violations += 1
        out_sync += stale
    return FidelityReport(
        polls=len(fetches),
        violations=violations,
        out_sync_time=out_sync,
        duration=window_end - window_start,
    )


def _value_segment_stats(
    trace: UpdateTrace,
    segment_start: Seconds,
    segment_end: Seconds,
    cached_value: float,
    delta: float,
    window_start: Seconds,
    window_end: Seconds,
) -> Tuple[bool, Seconds]:
    """(was the bound broken, stale seconds) for one inter-poll segment."""
    violated = False
    stale = 0.0
    current = trace.latest_at(segment_start)
    current_value = current.value if current is not None else None
    t = segment_start
    updates = trace.updates_in(segment_start, segment_end)
    knots: List[Tuple[Seconds, Optional[float]]] = [
        (t, current_value)
    ] + [(u.time, u.value) for u in updates]
    knots.append((segment_end, None))  # terminator; value unused
    for (knot_time, knot_value), (next_time, _next_value) in zip(
        knots, knots[1:]
    ):
        if knot_value is not None:
            gap = abs(knot_value - cached_value)
            if gap >= delta:
                violated = True
                lo = max(knot_time, window_start)
                hi = min(next_time, window_end)
                if hi > lo:
                    stale += hi - lo
    return violated, stale


def _require_ascending(times: Sequence[Seconds]) -> None:
    for earlier, later in zip(times, times[1:]):
        if later < earlier:
            raise ValueError("poll times must be ascending")
