"""Time-series extraction for the paper's time-series figures.

* Figure 4(a): updates per 2-hour bin — :func:`update_frequency_series`.
* Figure 4(b): TTR over time — :func:`ttr_series`.
* Figure 6(a): ratio of two objects' update frequencies —
  :func:`update_ratio_series`.
* Figure 6(b): triggered ("extra") polls per bin —
  :func:`extra_polls_series`.
* Figure 8: f at proxy and server over time —
  :func:`f_value_series` / :func:`server_f_knots`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.timeseries import (
    Series,
    bin_count,
    ratio_series,
    sample_step_function,
)
from repro.consistency.mutual_temporal import TriggerDecision
from repro.core.events import PollEvent
from repro.core.types import ObjectId, Seconds
from repro.proxy.proxy import ProxyCache
from repro.traces.model import UpdateTrace


def update_frequency_series(
    trace: UpdateTrace,
    bin_width: Seconds,
    *,
    label: Optional[str] = None,
) -> Series:
    """Updates per bin over the trace window (Figure 4(a))."""
    return bin_count(
        (r.time for r in trace.records),
        start=trace.start_time,
        end=trace.end_time,
        bin_width=bin_width,
        label=label or f"updates({trace.metadata.name})",
    )


def ttr_series(
    ttr_knots: Sequence[Tuple[Seconds, Seconds]],
    *,
    start: Seconds,
    end: Seconds,
    bin_width: Seconds,
    initial: float = float("nan"),
    label: str = "ttr",
) -> Series:
    """Sample a TTR step function at bin centers (Figure 4(b)).

    ``ttr_knots`` are (time, new TTR) change points, e.g. harvested from
    :class:`~repro.core.events.PollEvent.ttr_after` in the event log.
    """
    return sample_step_function(
        list(ttr_knots),
        start=start,
        end=end,
        bin_width=bin_width,
        initial=initial,
        label=label,
    )


def ttr_knots_from_proxy_events(
    events: Sequence[PollEvent], object_id: ObjectId
) -> List[Tuple[Seconds, Seconds]]:
    """(time, TTR after poll) knots for one object from poll events."""
    knots: List[Tuple[Seconds, Seconds]] = []
    for event in events:
        if event.object_id != object_id or event.ttr_after is None:
            continue
        knots.append((event.time, event.ttr_after))
    return knots


def update_ratio_series(
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    bin_width: Seconds,
    *,
    label: str = "rate-ratio",
) -> Series:
    """Ratio of the two objects' update frequencies per bin (Fig. 6(a)).

    NaN where the denominator bin is empty.
    """
    start = min(trace_a.start_time, trace_b.start_time)
    end = max(trace_a.end_time, trace_b.end_time)
    series_a = bin_count(
        (r.time for r in trace_a.records),
        start=start, end=end, bin_width=bin_width, label="a",
    )
    series_b = bin_count(
        (r.time for r in trace_b.records),
        start=start, end=end, bin_width=bin_width, label="b",
    )
    return ratio_series(series_a, series_b, label=label)


def extra_polls_series(
    decisions: Sequence[TriggerDecision],
    *,
    start: Seconds,
    end: Seconds,
    bin_width: Seconds,
    label: str = "extra-polls",
) -> Series:
    """Triggered polls per bin (Figure 6(b))."""
    return bin_count(
        (d.time for d in decisions if d.triggered),
        start=start, end=end, bin_width=bin_width, label=label,
    )


def server_f_knots(
    trace_a: UpdateTrace,
    trace_b: UpdateTrace,
    f: Callable[[float, float], float],
) -> List[Tuple[Seconds, float]]:
    """(time, f at server) step knots — Figure 8's server series."""
    events: List[Seconds] = [r.time for r in trace_a.records]
    events.extend(r.time for r in trace_b.records)
    knots: List[Tuple[Seconds, float]] = []
    for time in sorted(set(events)):
        state_a = trace_a.latest_at(time)
        state_b = trace_b.latest_at(time)
        if state_a is None or state_b is None:
            continue
        if state_a.value is None or state_b.value is None:
            continue
        value = f(state_a.value, state_b.value)
        if not knots or knots[-1][1] != value:
            knots.append((time, value))
    return knots


def f_value_series(
    knots: Sequence[Tuple[Seconds, float]],
    *,
    start: Seconds,
    end: Seconds,
    bin_width: Seconds,
    label: str,
) -> Series:
    """Sample an f step function for plotting (Figure 8)."""
    return sample_step_function(
        list(knots), start=start, end=end, bin_width=bin_width, label=label
    )


def polls_per_bin(
    proxy: ProxyCache,
    object_id: ObjectId,
    *,
    start: Seconds,
    end: Seconds,
    bin_width: Seconds,
) -> Series:
    """Poll counts per bin for one object (diagnostics)."""
    entry = proxy.entry_for(object_id)
    return bin_count(
        (record.time for record in entry.fetch_log),
        start=start,
        end=end,
        bin_width=bin_width,
        label=f"polls({object_id})",
    )
