"""Evaluation metrics: fidelity (Eqs. 13–14), mutual consistency, series."""

from repro.metrics.collector import (
    ObjectReport,
    PairReport,
    collect_mutual_synchrony,
    collect_mutual_temporal,
    collect_mutual_value,
    collect_snapshot_fidelity,
    collect_temporal,
    collect_value,
    poll_times_of,
    synchrony_fetches_of,
    temporal_fetches_of,
    value_fetches_of,
)
from repro.metrics.fidelity import (
    FidelityReport,
    temporal_fidelity,
    temporal_fidelity_from_snapshots,
    value_fidelity,
)
from repro.metrics.group import (
    group_interval_spread,
    group_mutually_consistent_at,
    group_temporal_fidelity,
)
from repro.metrics.mutual import (
    interval_gap,
    mutual_poll_synchrony_fidelity,
    mutual_temporal_fidelity,
    mutual_value_fidelity,
    mutually_consistent_at,
    validity_interval,
)
from repro.metrics.streaming import (
    ReservoirSample,
    StreamingBinCounter,
    StreamingMoments,
)
from repro.metrics.collector import poll_interval_moments
from repro.metrics.series import (
    extra_polls_series,
    f_value_series,
    polls_per_bin,
    server_f_knots,
    ttr_knots_from_proxy_events,
    ttr_series,
    update_frequency_series,
    update_ratio_series,
)

__all__ = [
    "ObjectReport",
    "PairReport",
    "collect_mutual_synchrony",
    "collect_mutual_temporal",
    "collect_mutual_value",
    "collect_snapshot_fidelity",
    "collect_temporal",
    "collect_value",
    "poll_times_of",
    "synchrony_fetches_of",
    "temporal_fetches_of",
    "value_fetches_of",
    "FidelityReport",
    "temporal_fidelity",
    "temporal_fidelity_from_snapshots",
    "value_fidelity",
    "group_interval_spread",
    "group_mutually_consistent_at",
    "group_temporal_fidelity",
    "interval_gap",
    "mutual_poll_synchrony_fidelity",
    "mutual_temporal_fidelity",
    "mutual_value_fidelity",
    "mutually_consistent_at",
    "validity_interval",
    "ReservoirSample",
    "StreamingBinCounter",
    "StreamingMoments",
    "poll_interval_moments",
    "extra_polls_series",
    "f_value_series",
    "polls_per_bin",
    "server_f_knots",
    "ttr_knots_from_proxy_events",
    "ttr_series",
    "update_frequency_series",
    "update_ratio_series",
]
