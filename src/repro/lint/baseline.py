"""Committed baseline of grandfathered findings.

The baseline lets the lint gate turn on *strict for new code* without
first fixing every historical finding: known findings are recorded in
a committed JSON file and subtracted from each run.  Entries match on
``(path, code, message)`` — deliberately **not** on line numbers, so
unrelated edits above a grandfathered finding do not break the build.
Matching is multiset-style: two identical grandfathered findings need
two baseline entries, and fixing one surfaces the other.

Baseline entries that no longer match anything are *stale*; they are
reported (so the file can be pruned with ``--write-baseline``) but do
not fail the run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic

BASELINE_SCHEMA = "repro-lint-baseline/1"

#: Default baseline location, resolved relative to the working
#: directory (the repository root in CI).
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass(frozen=True)
class BaselineMatch:
    """Outcome of subtracting a baseline from a finding list."""

    new_findings: List[Diagnostic]
    baselined_count: int
    stale_entries: List[Dict[str, str]]


def _key(path: str, code: str, message: str) -> _Key:
    return (path, code, message)


def load_baseline(path: Path) -> "Counter[_Key]":
    """Read a baseline file into a matchable multiset of entries."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} must be an object with schema={BASELINE_SCHEMA!r}"
        )
    findings = data.get("findings")
    if not isinstance(findings, list):
        raise BaselineError(f"baseline {path} must have a 'findings' list")
    entries: "Counter[_Key]" = Counter()
    for index, entry in enumerate(findings):
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline entry {index} is not an object")
        try:
            path_value = entry["path"]
            code_value = entry["code"]
            message_value = entry["message"]
        except KeyError as exc:
            raise BaselineError(
                f"baseline entry {index} is missing key {exc.args[0]!r}"
            ) from None
        if not all(
            isinstance(value, str)
            for value in (path_value, code_value, message_value)
        ):
            raise BaselineError(
                f"baseline entry {index} fields must all be strings"
            )
        entries[_key(path_value, code_value, message_value)] += 1
    return entries


def apply_baseline(
    findings: Sequence[Diagnostic], baseline: "Counter[_Key]"
) -> BaselineMatch:
    """Subtract baselined findings; report what is new and what is stale."""
    remaining = Counter(baseline)
    new_findings: List[Diagnostic] = []
    for finding in findings:
        key = _key(finding.path, finding.code, finding.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new_findings.append(finding)
    stale = [
        {"path": path, "code": code, "message": message}
        for (path, code, message), count in sorted(remaining.items())
        for _ in range(count)
    ]
    baselined = sum(baseline.values()) - sum(remaining.values())
    return BaselineMatch(
        new_findings=new_findings,
        baselined_count=baselined,
        stale_entries=stale,
    )


def render_baseline(findings: Sequence[Diagnostic]) -> str:
    """The committed-file content pinning ``findings`` as grandfathered."""
    payload: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {
                "path": finding.path,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in sorted(findings)
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def write_baseline(path: Path, findings: Sequence[Diagnostic]) -> None:
    """Write (or truncate) the baseline file for ``findings``."""
    path.write_text(render_baseline(findings), encoding="utf-8")
