"""Static analysis for the reproduction: ``repro lint``.

An AST-visitor lint framework plus a rule pack enforcing the repo's
real invariants before code runs:

* **RL1xx determinism** — no wall-clock reads, global RNG state, or
  set-iteration order feeding results in the simulator packages;
* **RL2xx hot-path** — ``__slots__`` on kernel-adjacent classes, no
  attribute creation escaping slots, no exception-swallowing control
  flow;
* **RL3xx façade hygiene** — ``to_dict``/``from_dict`` pairing on
  config classes, scenario/smoke-config pairing, no imports from
  deprecated shims.

Programmatic use mirrors the CLI::

    from repro.lint import lint_paths
    run = lint_paths(["src"])
    for finding in run.findings:
        print(finding.render())

See ``docs/ARCHITECTURE.md`` ("Static analysis") for the rule
catalogue, the suppression / baseline policy, and how to add a rule.
"""

from __future__ import annotations

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    BaselineError,
    BaselineMatch,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.context import FileContext, build_context
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    LINT_RULES,
    PARSE_ERROR_CODE,
    LintRun,
    iter_python_files,
    lint_files,
    lint_paths,
    register_rule,
)
from repro.lint.report import REPORT_SCHEMA, render_json, render_text
from repro.lint.rules.base import LintRule
from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "BaselineError",
    "BaselineMatch",
    "Diagnostic",
    "FileContext",
    "LINT_RULES",
    "LintRule",
    "LintRun",
    "PARSE_ERROR_CODE",
    "REPORT_SCHEMA",
    "Suppressions",
    "apply_baseline",
    "build_context",
    "iter_python_files",
    "lint_files",
    "lint_paths",
    "load_baseline",
    "parse_suppressions",
    "register_rule",
    "render_baseline",
    "render_json",
    "render_text",
    "write_baseline",
]
