"""Built-in rule pack.

Rule modules register themselves with the engine on import;
:func:`load_all` performs those imports and is called lazily by the
:data:`~repro.lint.engine.LINT_RULES` registry loader (exactly as the
scenario registry loads its built-ins).  The imports cannot live at
module level here: ``repro.lint.engine`` imports
``repro.lint.rules.base`` (which initialises this package), and the
rule modules import the engine back for ``register_rule``.
"""

from __future__ import annotations

from repro.lint.rules.base import LintRule

__all__ = ["LintRule", "load_all"]


def load_all() -> None:
    """Import every built-in rule module for its registration side effect."""
    import repro.lint.rules.determinism  # noqa: F401
    import repro.lint.rules.facade  # noqa: F401
    import repro.lint.rules.hotpath  # noqa: F401
