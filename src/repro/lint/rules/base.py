"""Rule base class and shared AST helpers.

A rule is a class with a ``code`` (``RLxxx``), a human ``name``, a
``description`` for the catalogue, and an optional package ``scope``
(directory names; empty means repo-wide).  The engine instantiates a
fresh rule object per run, calls :meth:`LintRule.check` once per
in-scope file, and :meth:`LintRule.finalize` once at the end — rules
that need cross-file facts (the scenario/smoke pairing) accumulate
them on ``self`` during ``check`` and emit during ``finalize``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Iterator, List, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic


class LintRule:
    """Base class for all lint rules (subclass and register)."""

    code: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]
    #: Directory names this rule is confined to; empty = everywhere.
    scope: ClassVar[Tuple[str, ...]] = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether ``ctx`` falls inside this rule's package scope."""
        return not self.scope or ctx.in_packages(self.scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Per-file pass; yield diagnostics for ``ctx``."""
        return iter(())

    def finalize(self) -> Iterator[Diagnostic]:
        """Cross-file pass, after every file has been checked."""
        return iter(())

    def diagnostic(
        self, ctx_path: str, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic for ``node`` under this rule's code."""
        return Diagnostic(
            path=ctx_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted import path they resolve to.

    ``import time`` binds ``time`` → ``time``; ``import numpy as np``
    binds ``np`` → ``numpy``; ``from datetime import datetime as dt``
    binds ``dt`` → ``datetime.datetime``.  Relative imports resolve to
    a ``.``-prefixed path that never matches an absolute ban list.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases


def resolve_dotted(
    node: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve a Name/Attribute chain through the file's import aliases."""
    raw = dotted_name(node)
    if raw is None:
        return None
    head, _, rest = raw.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def base_name(node: ast.expr) -> Optional[str]:
    """Last segment of a base-class expression (``t.Protocol`` → ``Protocol``)."""
    if isinstance(node, ast.Subscript):  # Generic[T], Protocol[T]
        node = node.value
    raw = dotted_name(node)
    if raw is None:
        return None
    return raw.rsplit(".", 1)[-1]


def literal_slot_names(class_node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """The class's literal ``__slots__`` names, or ``None``.

    Returns ``None`` when the class has no ``__slots__`` assignment or
    when the value is not a literal str / tuple / list of str
    constants (dynamic slots are out of static reach).
    """
    for stmt in class_node.body:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            value = stmt.value
        if value is None:
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return (value.value,)
        if isinstance(value, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.append(element.value)
            return tuple(names)
        return None
    return None


def has_slots_declaration(class_node: ast.ClassDef) -> bool:
    """Whether the class body assigns ``__slots__`` (any value shape)."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    return False


def dataclass_slots(class_node: ast.ClassDef) -> bool:
    """Whether the class is decorated ``@dataclass(..., slots=True)``."""
    for decorator in class_node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if base_name(decorator.func) != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def is_dataclass_decorated(class_node: ast.ClassDef) -> bool:
    """Whether the class carries a ``@dataclass`` decorator (any form)."""
    for decorator in class_node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if base_name(target) == "dataclass":
            return True
    return False
