"""RL2xx — hot-path rules.

The event kernel dispatches millions of events per second; the classes
it touches per event (``sim/``, ``proxy/``) earn their throughput from
``__slots__`` (PR 2 measured 3.0x on bench_figure3).  These rules keep
that property from regressing:

* RL201 — every class in a hot-path package declares ``__slots__``
  (or ``@dataclass(slots=True)``); protocols, exceptions, enums and
  other structural/marker classes are exempt;
* RL202 — no attribute creation escaping ``__slots__`` on a fully
  slotted class (a non-slot assignment raises :class:`AttributeError`
  only on the rare path that executes it — this catches it statically);
* RL203 — no exception swallowing as control flow (an ``except:`` arm
  that is just ``pass`` / ``continue`` / ``break``) in kernel-adjacent
  code: ``run_batch``-dispatched callbacks must not hide errors or
  lean on exceptions for branching.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import register_rule
from repro.lint.rules.base import (
    LintRule,
    base_name,
    dataclass_slots,
    has_slots_declaration,
    is_dataclass_decorated,
    literal_slot_names,
)

HOT_PATH_SCOPE: Tuple[str, ...] = ("sim", "proxy")

#: Base-class names that make ``__slots__`` meaningless or impossible.
_EXEMPT_BASES = frozenset(
    {
        "ABC",
        "BaseException",
        "Enum",
        "Exception",
        "Flag",
        "IntEnum",
        "IntFlag",
        "NamedTuple",
        "Protocol",
        "StrEnum",
        "TypedDict",
    }
)


def _is_exempt_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base_name(base)
        if name is None:
            continue
        if name in _EXEMPT_BASES:
            return True
        if name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


@register_rule
class SlotsRequiredRule(LintRule):
    """RL201: hot-path classes must declare __slots__."""

    code = "RL201"
    name = "slots-required"
    description = (
        "Classes in the hot-path packages (sim/, proxy/) are "
        "kernel-adjacent and must declare __slots__ (or "
        "@dataclass(slots=True)); per-instance dicts cost the batch "
        "dispatch loop measurable throughput."
    )
    scope = HOT_PATH_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt_class(node):
                continue
            if has_slots_declaration(node) or dataclass_slots(node):
                continue
            if is_dataclass_decorated(node):
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"hot-path dataclass {node.name} lacks slots; "
                    "declare @dataclass(slots=True)",
                )
            else:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"hot-path class {node.name} lacks __slots__",
                )


class _LocalClassIndex:
    """Classes defined in one file, for local base resolution."""

    def __init__(self, tree: ast.Module) -> None:
        self.by_name: Dict[str, ast.ClassDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                # Last definition wins, matching runtime rebinding.
                self.by_name[node.name] = node

    def resolved_namespace(
        self, node: ast.ClassDef
    ) -> Optional[Set[str]]:
        """Slot + class-level names over the (local) MRO, or ``None``.

        ``None`` means the hierarchy is not fully statically resolvable
        as slotted — an imported base, dynamic ``__slots__``, a
        dataclass (fields become slots via the decorator), or
        ``__dict__`` in slots — in which case RL202 stays silent.
        """
        if is_dataclass_decorated(node):
            return None
        names: Set[str] = set()
        slots = literal_slot_names(node)
        if slots is None:
            return None
        if "__dict__" in slots:
            return None
        names.update(slots)
        names.update(self._class_level_names(node))
        for base in node.bases:
            name = base_name(base)
            if name is None:
                return None
            if name == "object" or name in ("Generic",):
                continue
            base_node = self.by_name.get(name)
            if base_node is None:
                return None
            base_names = self.resolved_namespace(base_node)
            if base_names is None:
                return None
            names.update(base_names)
        return names

    @staticmethod
    def _class_level_names(node: ast.ClassDef) -> Set[str]:
        names: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.value is not None:
                    names.add(stmt.target.id)
        return names


def _method_self_name(method: ast.FunctionDef) -> Optional[str]:
    """The instance-receiver parameter name, or ``None`` to skip."""
    for decorator in method.decorator_list:
        name = base_name(decorator)
        if name in ("staticmethod", "classmethod"):
            return None
    if not method.args.args and not method.args.posonlyargs:
        return None
    first = (method.args.posonlyargs + method.args.args)[0]
    return first.arg


@register_rule
class SlotsEscapeRule(LintRule):
    """RL202: no attribute creation escaping __slots__."""

    code = "RL202"
    name = "slots-escape"
    description = (
        "Assigning an attribute not declared in __slots__ on a fully "
        "slotted class raises AttributeError at runtime — but only on "
        "the path that executes it; declare the name in __slots__ (and "
        "initialise it in __init__) instead."
    )
    scope = HOT_PATH_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        index = _LocalClassIndex(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            namespace = index.resolved_namespace(node)
            if namespace is None:
                continue
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if isinstance(method, ast.AsyncFunctionDef):
                    continue
                self_name = _method_self_name(method)
                if self_name is None:
                    continue
                yield from self._check_method(
                    ctx, node.name, method, self_name, namespace
                )

    def _check_method(
        self,
        ctx: FileContext,
        class_name: str,
        method: ast.FunctionDef,
        self_name: str,
        namespace: Set[str],
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(method):
            attr: Optional[str] = None
            location: ast.AST = node
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and node.value.id == self_name
            ):
                attr = node.attr
            elif isinstance(node, ast.Call):
                attr = self._setattr_target(node, self_name)
            if attr is not None and attr not in namespace:
                yield self.diagnostic(
                    ctx.path,
                    location,
                    f"{class_name}.{method.name} assigns self.{attr}, "
                    f"which is not in {class_name}.__slots__",
                )

    @staticmethod
    def _setattr_target(node: ast.Call, self_name: str) -> Optional[str]:
        """Constant attr name for setattr(self, "x", ...) style calls."""
        func = node.func
        is_setattr = isinstance(func, ast.Name) and func.id == "setattr"
        is_object_setattr = (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        if not (is_setattr or is_object_setattr):
            return None
        if len(node.args) < 2:
            return None
        receiver, name_arg = node.args[0], node.args[1]
        if not (isinstance(receiver, ast.Name) and receiver.id == self_name):
            return None
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            return name_arg.value
        return None


@register_rule
class ExceptControlFlowRule(LintRule):
    """RL203: no exception swallowing as control flow on the hot path."""

    code = "RL203"
    name = "except-control-flow"
    description = (
        "An except arm that is just pass/continue/break swallows "
        "errors as branching; run_batch-dispatched callbacks must "
        "surface failures (or test the condition explicitly)."
    )
    scope = HOT_PATH_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(
                isinstance(stmt, (ast.Pass, ast.Continue, ast.Break))
                for stmt in node.body
            ):
                label = (
                    ast.unparse(node.type) if node.type is not None else "all"
                )
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"except {label} arm is pure control flow "
                    f"({type(node.body[0]).__name__.lower()}); handle or "
                    "propagate the error",
                )
