"""RL3xx — façade-hygiene rules.

The public surface (``repro.api``, the scenario catalogue, the
deprecation shims) has structural invariants that review keeps
re-checking by hand; these rules check them mechanically:

* RL301 — a ``*Config`` class that defines one of ``to_dict`` /
  ``from_dict`` must pair the other (directly or through a base class
  defined in the same file, like ``_ConfigBase``);
* RL302 — every ``@scenario(name=...)`` registration must name a tiny
  smoke configuration in ``TINY_CONFIGS`` (the golden suite and
  ``tools/update_goldens.py`` both key off it; a missing entry only
  explodes at test-collection time otherwise);
* RL303 — no imports from deprecated shim modules inside ``src/``:
  in-repo code must stay on the replacement APIs, the shims exist for
  downstream users only.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import register_rule
from repro.lint.rules.base import LintRule, base_name, dotted_name

_PAIRED_METHODS = ("to_dict", "from_dict")


@register_rule
class ConfigPairingRule(LintRule):
    """RL301: config classes must pair to_dict/from_dict."""

    code = "RL301"
    name = "config-dict-pairing"
    description = (
        "A *Config class defining to_dict without from_dict (or vice "
        "versa) cannot round-trip through JSON; pair them, inheriting "
        "from _ConfigBase where possible."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        classes: Dict[str, ast.ClassDef] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = node
        for node in classes.values():
            if not node.name.endswith("Config") or node.name.startswith("_"):
                continue
            methods = self._resolved_methods(node, classes, set())
            if methods is None:
                continue
            present = [name for name in _PAIRED_METHODS if name in methods]
            if len(present) == 1:
                missing = next(
                    name for name in _PAIRED_METHODS if name not in methods
                )
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"config class {node.name} defines {present[0]} but "
                    f"not {missing}; serialization must round-trip",
                )

    def _resolved_methods(
        self,
        node: ast.ClassDef,
        classes: Dict[str, ast.ClassDef],
        seen: Set[str],
    ) -> Optional[Set[str]]:
        """Method names over the locally resolvable MRO, or ``None``.

        An imported (unresolvable) base may define either method, so
        the rule stays silent rather than guessing.
        """
        if node.name in seen:  # cyclic local bases: malformed anyway
            return set()
        seen.add(node.name)
        names: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        for base in node.bases:
            name = base_name(base)
            if name in ("object", "Generic", "Protocol"):
                continue
            if name is None or name not in classes:
                return None
            inherited = self._resolved_methods(classes[name], classes, seen)
            if inherited is None:
                return None
            names.update(inherited)
        return names


@register_rule
class ScenarioSmokeRule(LintRule):
    """RL302: every @scenario registration must name a smoke config."""

    code = "RL302"
    name = "scenario-smoke-config"
    description = (
        "Every @scenario(name=...) registration must have a matching "
        "TINY_CONFIGS entry (repro.scenarios.smoke); the golden "
        "regression suite and tools/update_goldens.py both require it."
    )

    def __init__(self) -> None:
        #: (scenario name, path, line, col) per registration site.
        self._registrations: List[Tuple[str, str, int, int]] = []
        self._tiny_names: Set[str] = set()
        self._saw_tiny_configs = False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    self._note_registration(ctx, decorator)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "TINY_CONFIGS"
                    ):
                        self._note_tiny_configs(node.value)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == "TINY_CONFIGS"
                    and node.value is not None
                ):
                    self._note_tiny_configs(node.value)
        return iter(())

    def _note_registration(self, ctx: FileContext, decorator: ast.expr) -> None:
        if not isinstance(decorator, ast.Call):
            return
        name = base_name(decorator.func)
        if name != "scenario":
            return
        for keyword in decorator.keywords:
            if keyword.arg != "name":
                continue
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                if ctx.suppressions.is_suppressed(self.code, decorator.lineno):
                    return
                self._registrations.append(
                    (
                        value.value,
                        ctx.path,
                        decorator.lineno,
                        decorator.col_offset,
                    )
                )
            return

    def _note_tiny_configs(self, value: ast.expr) -> None:
        if not isinstance(value, ast.Dict):
            return
        self._saw_tiny_configs = True
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self._tiny_names.add(key.value)

    def finalize(self) -> Iterator[Diagnostic]:
        if not self._saw_tiny_configs:
            # The smoke module was outside the linted path set: there
            # is nothing sound to compare registrations against.
            return
        for name, path, line, col in sorted(self._registrations):
            if name not in self._tiny_names:
                yield Diagnostic(
                    path=path,
                    line=line,
                    col=col,
                    code=self.code,
                    message=(
                        f"scenario {name!r} has no TINY_CONFIGS smoke "
                        "entry; add one to repro.scenarios.smoke (and "
                        "regenerate goldens)"
                    ),
                )


#: Modules that exist only as deprecation shims; in-repo code imports
#: the replacement instead.  Keep in sync with docs/ARCHITECTURE.md.
DEPRECATED_MODULES: Dict[str, str] = {
    "repro.experiments.runner": "repro.api (runs moved to repro.api.runs)",
    "repro.api.registries": "repro.core.registry",
    "repro.proxy.hierarchy": "repro.topology (build a fan-out-1 tree)",
}

#: Deprecated names inside otherwise-live modules.
DEPRECATED_NAMES: Dict[str, Dict[str, str]] = {
    "repro.scenarios.registry": {
        "get_scenario": "SCENARIOS.get",
        "scenario_names": "SCENARIOS.names",
        "list_scenarios": "SCENARIOS.values",
    },
}


@register_rule
class DeprecatedImportRule(LintRule):
    """RL303: no imports from deprecated shim modules in src/."""

    code = "RL303"
    name = "deprecated-shim-import"
    description = (
        "In-repo code must not import deprecation shims "
        "(repro.experiments.runner, repro.api.registries, "
        "repro.proxy.hierarchy, or the deprecated scenario-registry "
        "lookups); use the replacement the shim's warning names."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module in DEPRECATED_MODULES:
            return  # the shim itself may reference its own machinery
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    replacement = self._module_replacement(alias.name)
                    if replacement is not None:
                        yield self.diagnostic(
                            ctx.path,
                            node,
                            f"import of deprecated shim {alias.name}; "
                            f"use {replacement}",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)

    @staticmethod
    def _module_replacement(module: str) -> Optional[str]:
        for shim, replacement in DEPRECATED_MODULES.items():
            if module == shim or module.startswith(shim + "."):
                return replacement
        return None

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        module = node.module or ""
        replacement = self._module_replacement(module)
        if replacement is not None:
            yield self.diagnostic(
                ctx.path,
                node,
                f"import from deprecated shim {module}; use {replacement}",
            )
            return
        for alias in node.names:
            joined = f"{module}.{alias.name}" if module else alias.name
            joined_replacement = self._module_replacement(joined)
            if joined_replacement is not None:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"import of deprecated shim {joined}; "
                    f"use {joined_replacement}",
                )
                continue
            deprecated_here = DEPRECATED_NAMES.get(module, {})
            if alias.name in deprecated_here:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"import of deprecated {module}.{alias.name}; "
                    f"use {deprecated_here[alias.name]}",
                )
