"""RL1xx — determinism rules.

Every result in this reproduction depends on simulations being
bit-identical across serial, ``--workers N``, sharded, and
fast-forward execution (the golden suite pins it dynamically).  These
rules reject the classic nondeterminism sources *statically*, before a
violation can scramble a golden:

* RL101 — wall-clock / OS-entropy reads (``time.time()``,
  ``datetime.now()``, ``os.urandom()``, ...);
* RL102 — module-level ``random.*`` state or an un-seeded
  ``random.Random()`` / ``random.SystemRandom``;
* RL103 — iteration over ``set`` / ``frozenset`` values feeding
  ordered output (result rows, joins, ``list()`` conversions) —
  ``sorted(...)`` is the sanctioned bridge out of a set;
* RL104 — ``hash()`` / ``id()`` in orderings (sort keys, comparison
  dunders): both vary per process under PYTHONHASHSEED / allocation.
* RL105 — ``heapq`` imports outside ``repro.sim``: event scheduling
  must go through the kernel's pluggable scheduler seam
  (:func:`repro.sim.kernel.make_scheduler`), not ad-hoc private heaps,
  so every queue dispatches in the pinned (time, sequence) order.

RL101–RL104 are scoped to the simulator's deterministic core; analysis
or tooling code outside those packages may legitimately read clocks.
RL105 is repo-wide, with ``repro.sim`` itself (the seam's home) exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import register_rule
from repro.lint.rules.base import LintRule, import_aliases, resolve_dotted

#: Packages whose code must stay bit-deterministic.  ``metrics`` and
#: ``traces`` join the issue's five because both feed result rows
#: (streaming estimators, synthetic trace generation).
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "sim",
    "proxy",
    "workload",
    "consistency",
    "scenarios",
    "metrics",
    "traces",
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: ``random.<fn>`` module-level functions that mutate/read the hidden
#: global Mersenne Twister (seeded from OS entropy at import).
_GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "getstate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_rule
class WallClockRule(LintRule):
    """RL101: no wall-clock or OS-entropy reads in deterministic code."""

    code = "RL101"
    name = "wall-clock-read"
    description = (
        "Wall-clock / OS-entropy calls (time.time, datetime.now, "
        "os.urandom, uuid.uuid4, secrets.*) are forbidden in the "
        "deterministic simulator packages; use the kernel clock and "
        "seeded RNG streams."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_dotted(node.func, aliases)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"nondeterministic call {resolved}(); use the "
                    "simulation clock / a seeded RNG stream instead",
                )


@register_rule
class GlobalRandomRule(LintRule):
    """RL102: no module-level random state or un-seeded Random()."""

    code = "RL102"
    name = "global-random"
    description = (
        "Module-level random.* calls share hidden global state and "
        "un-seeded random.Random() / random.SystemRandom draw from OS "
        "entropy; pass an explicitly seeded random.Random through "
        "repro.core.rng instead."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_dotted(node.func, aliases)
            if resolved is None or not resolved.startswith("random."):
                continue
            function = resolved[len("random.") :]
            if function in _GLOBAL_RANDOM_FUNCTIONS:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    f"module-level {resolved}() uses the hidden global "
                    "RNG; draw from an explicitly seeded random.Random",
                )
            elif function == "SystemRandom":
                yield self.diagnostic(
                    ctx.path,
                    node,
                    "random.SystemRandom draws from OS entropy and can "
                    "never be seeded; use random.Random(seed)",
                )
            elif function == "Random" and not node.args and not node.keywords:
                yield self.diagnostic(
                    ctx.path,
                    node,
                    "un-seeded random.Random() seeds itself from OS "
                    "entropy; pass an explicit seed",
                )


_SET_ANNOTATIONS = frozenset(
    {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}
)

_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})

_ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATIONS
    return isinstance(target, ast.Name) and target.id in _SET_ANNOTATIONS


@register_rule
class SetIterationRule(LintRule):
    """RL103: no set-ordered iteration feeding ordered output."""

    code = "RL103"
    name = "set-iteration-order"
    description = (
        "Iterating a set/frozenset into ordered output (for-loops, "
        "list()/tuple()/enumerate(), str.join, non-set comprehensions) "
        "leaks PYTHONHASHSEED-dependent order into results; wrap the "
        "set in sorted(...) first."
    )
    scope = DETERMINISM_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for scope_node in self._scopes(ctx.tree):
            tainted = self._tainted_names(scope_node)
            yield from self._check_scope(ctx, scope_node, tainted)

    def _scopes(self, tree: ast.Module) -> Iterator[_ScopeNode]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _is_set_expr(self, node: ast.expr, tainted: Set[str]) -> bool:
        """Whether ``node`` statically evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, tainted) or self._is_set_expr(
                node.right, tainted
            )
        return False

    def _own_statements(self, scope_node: _ScopeNode) -> Iterator[ast.stmt]:
        """Statements belonging to this scope (not nested functions).

        Class bodies are *not* separate scopes here: their statements
        execute in definition order inside the enclosing scope, so
        their set consumers are checked along with it.
        """
        stack: List[ast.stmt] = list(scope_node.body)
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)

    def _tainted_names(self, scope_node: _ScopeNode) -> Set[str]:
        """Names that are set-typed everywhere they are bound in scope.

        A name qualifies when at least one binding is a set expression
        or set annotation and *no* binding is anything else — a
        rebinding like ``items = sorted(items)`` launders the taint, so
        partial flows stay un-flagged (conservative by design).
        """
        set_bound: Set[str] = set()
        otherwise_bound: Set[str] = set()

        def note(name: str, is_set: bool) -> None:
            (set_bound if is_set else otherwise_bound).add(name)

        if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope_node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if _annotation_is_set(arg.annotation):
                    note(arg.arg, True)
        empty: Set[str] = set()
        for stmt in self._own_statements(scope_node):
            if isinstance(stmt, ast.Assign):
                is_set = self._is_set_expr(stmt.value, empty)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        note(target.id, is_set)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                is_set = _annotation_is_set(stmt.annotation) or (
                    stmt.value is not None
                    and self._is_set_expr(stmt.value, empty)
                )
                note(stmt.target.id, is_set)
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # ``s |= {...}`` keeps whatever type ``s`` already had.
                continue
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if isinstance(stmt.target, ast.Name):
                    note(stmt.target.id, False)
        return set_bound - otherwise_bound

    def _check_scope(
        self, ctx: FileContext, scope_node: _ScopeNode, tainted: Set[str]
    ) -> Iterator[Diagnostic]:
        for stmt in self._own_statements(scope_node):
            for node in ast.walk(stmt):
                yield from self._check_node(ctx, node, tainted)

    def _flag(
        self, ctx: FileContext, node: ast.AST, how: str
    ) -> Diagnostic:
        return self.diagnostic(
            ctx.path,
            node,
            f"set iteration order is PYTHONHASHSEED-dependent ({how}); "
            "wrap the set in sorted(...)",
        )

    def _check_node(
        self, ctx: FileContext, node: ast.AST, tainted: Set[str]
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(node.iter, tainted):
                yield self._flag(ctx, node.iter, "for-loop over a set")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if self._is_set_expr(generator.iter, tainted):
                    yield self._flag(
                        ctx, generator.iter, "comprehension over a set"
                    )
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ORDERED_CONSUMERS
                and node.args
                and self._is_set_expr(node.args[0], tainted)
            ):
                yield self._flag(
                    ctx, node.args[0], f"{node.func.id}() over a set"
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and self._is_set_expr(node.args[0], tainted)
            ):
                yield self._flag(ctx, node.args[0], "str.join over a set")


@register_rule
class HeapqOutsideKernelRule(LintRule):
    """RL105: no ``heapq`` imports outside the kernel seam's home."""

    code = "RL105"
    name = "heapq-outside-kernel"
    description = (
        "Importing heapq outside repro.sim bypasses the kernel's "
        "pluggable scheduler seam (Scheduler / make_scheduler); "
        "schedule through the seam so wheel and heap stay "
        "interchangeable and dispatch order stays pinned."
    )
    # Repo-wide: a private heap anywhere in the simulator or its
    # drivers re-implements scheduling outside the seam.
    scope = ()

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_packages(("sim",)):
            # The seam's own home: the reference HeapScheduler and the
            # wheel's far-future overflow spill legitimately use heapq.
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq" or alias.name.startswith(
                        "heapq."
                    ):
                        yield self.diagnostic(
                            ctx.path,
                            node,
                            "heapq import outside repro.sim; route "
                            "scheduling through the kernel's scheduler "
                            "seam (repro.sim.kernel.make_scheduler)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "heapq":
                yield self.diagnostic(
                    ctx.path,
                    node,
                    "heapq import outside repro.sim; route scheduling "
                    "through the kernel's scheduler seam "
                    "(repro.sim.kernel.make_scheduler)",
                )


_COMPARISON_DUNDERS = frozenset({"__lt__", "__le__", "__gt__", "__ge__"})


@register_rule
class HashIdOrderingRule(LintRule):
    """RL104: no hash()/id() feeding an ordering."""

    code = "RL104"
    name = "hash-id-ordering"
    description = (
        "hash() varies per process under PYTHONHASHSEED and id() is an "
        "allocation address; neither may feed sorted()/.sort()/min()/"
        "max() keys or comparison dunders."
    )
    scope = DETERMINISM_SCOPE

    def _hash_id_calls(self, root: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
            ):
                yield node

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                is_ordering_call = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("sorted", "min", "max")
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if not is_ordering_call:
                    continue
                for subtree in list(node.args) + [k.value for k in node.keywords]:
                    for call in self._hash_id_calls(subtree):
                        assert isinstance(call.func, ast.Name)
                        yield self.diagnostic(
                            ctx.path,
                            call,
                            f"{call.func.id}() inside an ordering "
                            "expression is process-dependent; order by "
                            "stable fields instead",
                        )
            elif (
                isinstance(node, ast.FunctionDef)
                and node.name in _COMPARISON_DUNDERS
            ):
                for call in self._hash_id_calls(ast.Module(node.body, [])):
                    assert isinstance(call.func, ast.Name)
                    yield self.diagnostic(
                        ctx.path,
                        call,
                        f"{call.func.id}() inside {node.name} makes "
                        "comparisons process-dependent; compare stable "
                        "fields instead",
                    )
