"""Inline suppression comments.

Two forms, both justified in prose after the codes (the prose is for
reviewers; the parser only reads the code list):

* line-level — append to the flagged line::

      t0 = time.time()  # repro-lint: disable=RL101 (wall time feeds a log label only)

* file-level — anywhere in the file, conventionally near the top::

      # repro-lint: disable-file=RL201 (deprecation shim; never on the hot path)

``disable=all`` suppresses every rule at that granularity.  Diagnostics
anchor to the *first* line of their statement, so for a multi-line call
the comment belongs on the opening line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<filewide>-file)?=(?P<codes>[A-Za-z0-9_,\s]+)"
)
_CODE_RE = re.compile(r"^(RL\d+|all)$")


@dataclass(frozen=True)
class Suppressions:
    """Parsed suppression directives for one source file."""

    by_line: Mapping[int, FrozenSet[str]] = field(default_factory=dict)
    file_wide: FrozenSet[str] = frozenset()

    def is_suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is disabled at ``line`` (or file-wide)."""
        active = self.file_wide | self.by_line.get(line, frozenset())
        return code in active or "all" in active


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``repro-lint: disable`` directive from ``source``.

    Unknown tokens inside the code list are ignored (they are assumed
    to be the start of a prose justification); a directive whose list
    contains no valid code suppresses nothing.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: FrozenSet[str] = frozenset()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            token
            for token in (raw.strip() for raw in match.group("codes").split(","))
            if _CODE_RE.match(token)
        )
        if not codes:
            continue
        if match.group("filewide"):
            file_wide |= codes
        else:
            by_line[lineno] = by_line.get(lineno, frozenset()) | codes
    return Suppressions(by_line=by_line, file_wide=file_wide)
