"""Text and JSON reporters.

The JSON schema (``repro-lint/1``) is stable, versioned, and pinned by
``tests/test_lint_report.py``: top-level key order, finding key order,
and sort order are all part of the contract so CI artifacts diff
cleanly run over run.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.baseline import BaselineMatch
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintRun

REPORT_SCHEMA = "repro-lint/1"


def _summary_line(
    new_count: int, run: LintRun, match: BaselineMatch
) -> str:
    parts = [
        f"{new_count} finding{'s' if new_count != 1 else ''}",
        f"{run.files_scanned} file{'s' if run.files_scanned != 1 else ''} scanned",
    ]
    if run.suppressed_count:
        parts.append(f"{run.suppressed_count} suppressed inline")
    if match.baselined_count:
        parts.append(f"{match.baselined_count} baselined")
    if match.stale_entries:
        parts.append(
            f"{len(match.stale_entries)} stale baseline "
            f"entr{'ies' if len(match.stale_entries) != 1 else 'y'} "
            "(prune with --write-baseline)"
        )
    return ", ".join(parts)


def render_text(run: LintRun, match: BaselineMatch) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = [finding.render() for finding in match.new_findings]
    lines.append(_summary_line(len(match.new_findings), run, match))
    return "\n".join(lines)


def render_json(run: LintRun, match: BaselineMatch) -> str:
    """Machine-readable report under the ``repro-lint/1`` schema."""
    payload: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "files_scanned": run.files_scanned,
        "findings": [finding.to_dict() for finding in match.new_findings],
        "suppressed": run.suppressed_count,
        "baselined": match.baselined_count,
        "stale_baseline_entries": list(match.stale_entries),
    }
    return json.dumps(payload, indent=2)


def render_rule_catalog(rules: Sequence[object]) -> str:
    """``--list-rules`` output: code, name, scope, and description."""
    lines: List[str] = ["Registered lint rules:"]
    for rule in rules:
        code = getattr(rule, "code", "?")
        name = getattr(rule, "name", "?")
        scope = getattr(rule, "scope", ())
        where = ", ".join(scope) if scope else "repo-wide"
        description = " ".join(str(getattr(rule, "description", "")).split())
        lines.append(f"  {code} {name} [{where}]")
        lines.append(f"      {description}")
    return "\n".join(lines)


def findings_only(findings: Sequence[Diagnostic]) -> List[str]:
    """Rendered finding lines (no summary), for composing callers."""
    return [finding.render() for finding in findings]
