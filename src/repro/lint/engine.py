"""Lint engine: rule registry, file discovery, and the run loop.

The engine walks the requested paths in sorted order, parses each
``.py`` file once, hands the :class:`~repro.lint.context.FileContext`
to every in-scope rule, runs each rule's cross-file ``finalize`` pass,
filters inline suppressions, and returns a deterministic, sorted
finding list.  Baseline subtraction is the caller's concern
(:mod:`repro.lint.cli`), so programmatic users always see the full
picture.

Rules register by class through :func:`register_rule`; the
:data:`LINT_RULES` registry lazy-loads the built-in pack exactly the
way the scenario registry loads its built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Type

from repro.core.registry import Registry
from repro.lint.context import build_context
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import LintRule

#: Code of the synthetic diagnostic emitted for unparseable files.
PARSE_ERROR_CODE = "RL001"


def _load_rule_pack() -> None:
    """Import the built-in rule modules for their registration side effect."""
    from repro.lint.rules import load_all

    load_all()


#: Rule code → rule class.  Fresh instances are created per run so
#: cross-file rules can accumulate state without leaking between runs.
LINT_RULES: Registry[Type[LintRule]] = Registry(
    "lint rule", loader=_load_rule_pack
)


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to :data:`LINT_RULES` under its code."""
    return LINT_RULES.register(rule_class.code, rule_class)


@dataclass(frozen=True)
class LintRun:
    """Outcome of one lint pass (before baseline subtraction)."""

    findings: Tuple[Diagnostic, ...]
    files_scanned: int
    suppressed_count: int


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Raises:
        FileNotFoundError: When a requested path does not exist.
    """
    seen: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            seen.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    unique: List[Path] = []
    for path in seen:
        if path not in unique:
            unique.append(path)
    return unique


def _build_rules(
    only: Optional[Iterable[str]] = None,
) -> List[LintRule]:
    """Instantiate the rule pack (optionally restricted to some codes)."""
    codes = list(only) if only is not None else LINT_RULES.names()
    return [LINT_RULES.get(code)() for code in sorted(codes)]


def lint_files(
    files: Sequence[Path], *, only: Optional[Iterable[str]] = None
) -> LintRun:
    """Lint ``files`` and return the sorted, suppression-filtered findings."""
    rules = _build_rules(only)
    raw_findings: List[Diagnostic] = []
    suppressed = 0
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        posix = file_path.as_posix()
        try:
            ctx = build_context(posix, source)
        except SyntaxError as exc:
            raw_findings.append(
                Diagnostic(
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for finding in rule.check(ctx):
                if ctx.suppressions.is_suppressed(finding.code, finding.line):
                    suppressed += 1
                else:
                    raw_findings.append(finding)
    for rule in rules:
        # Cross-file findings re-check suppressions against their own
        # file, which the rule recorded alongside the location.
        raw_findings.extend(rule.finalize())
    return LintRun(
        findings=tuple(sorted(raw_findings)),
        files_scanned=len(files),
        suppressed_count=suppressed,
    )


def lint_paths(
    paths: Sequence[str], *, only: Optional[Iterable[str]] = None
) -> LintRun:
    """Lint files and directories (directories recurse into ``*.py``)."""
    return lint_files(iter_python_files(paths), only=only)
