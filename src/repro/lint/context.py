"""Per-file and per-run context handed to lint rules.

A :class:`FileContext` bundles everything a rule needs to inspect one
file: the parsed AST, the raw source, the path (split into parts for
package scoping), a best-effort dotted module name, and the parsed
suppression directives.  Rules never re-read or re-parse files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Tuple

from repro.lint.suppress import Suppressions, parse_suppressions


@dataclass(frozen=True)
class FileContext:
    """One parsed source file, ready for rule checks."""

    path: str
    source: str
    tree: ast.Module
    parts: Tuple[str, ...]
    module: str
    suppressions: Suppressions

    def in_packages(self, names: Tuple[str, ...]) -> bool:
        """True when any *directory* component of the path is in ``names``.

        Package scoping is positional, not import-based, so fixture
        trees (``tests/lint_fixtures/rl101/sim/clock.py``) scope the
        same way the real tree does (``src/repro/sim/kernel.py``).
        """
        return any(part in names for part in self.parts[:-1])


def _guess_module(parts: Tuple[str, ...]) -> str:
    """Dotted module name, rooted at the segment after ``src`` if any."""
    segments = list(parts)
    if "src" in segments:
        segments = segments[segments.index("src") + 1 :]
    if not segments:
        return ""
    leaf = segments[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    segments[-1] = leaf
    if leaf == "__init__":
        segments.pop()
    return ".".join(segments)


def build_context(path: str, source: str) -> FileContext:
    """Parse ``source`` and assemble the rule-facing context.

    Raises:
        SyntaxError: When the file does not parse; the engine converts
            this into an ``RL001`` diagnostic.
    """
    posix = PurePosixPath(path.replace("\\", "/"))
    tree = ast.parse(source, filename=str(posix))
    parts = posix.parts
    return FileContext(
        path=str(posix),
        source=source,
        tree=tree,
        parts=parts,
        module=_guess_module(parts),
        suppressions=parse_suppressions(source),
    )
