"""Diagnostic records emitted by lint rules.

A :class:`Diagnostic` is one finding: a rule code anchored to a
file/line/column, with a human-readable message.  Ordering is total
(path, line, column, code, message) so reports and baselines are
byte-stable across runs and platforms — the linter holds itself to the
same determinism bar it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a source location.

    Attributes:
        path: File path as given to the linter (POSIX separators).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        code: Rule code (``RL101``, ...; ``RL001`` is a parse failure).
        message: Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-reporter encoding (key order is part of the schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
