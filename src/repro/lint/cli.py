"""``repro lint`` — the command-line entry point.

Usage::

    python -m repro lint                      # lint src/ (default)
    python -m repro lint src tools            # explicit paths
    python -m repro lint --format json        # machine-readable report
    python -m repro lint --list-rules         # rule catalogue
    python -m repro lint --write-baseline     # grandfather current findings

Exit status: 0 when every finding is suppressed or baselined, 1 when
new findings remain, 2 on usage errors (unknown paths, bad baseline).

The baseline defaults to ``.repro-lint-baseline.json`` in the working
directory when that file exists; ``--no-baseline`` ignores it and
``--baseline PATH`` points elsewhere.  ``tools/run_lint.py`` wraps
this entry point for CI.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    BaselineMatch,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LINT_RULES, LintRun, lint_paths
from repro.lint.report import render_json, render_rule_catalog, render_text


def build_lint_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism and hot-path invariant checker "
            "(rule catalogue: --list-rules; docs/ARCHITECTURE.md "
            "'Static analysis')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file "
            "(grandfathering them) instead of failing on them"
        ),
    )
    parser.add_argument(
        "--select",
        nargs="*",
        metavar="CODE",
        default=None,
        help="run only these rule codes (e.g. RL101 RL201)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.is_file() or args.write_baseline:
        return default
    return None


def _run(
    args: argparse.Namespace, baseline_path: Optional[Path]
) -> Tuple[LintRun, BaselineMatch]:
    run = lint_paths(args.paths, only=args.select)
    if baseline_path is not None and baseline_path.is_file():
        baseline = load_baseline(baseline_path)
    else:
        baseline = Counter()
    return run, apply_baseline(run.findings, baseline)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro lint`` (and ``tools/run_lint.py``)."""
    args = build_lint_parser().parse_args(
        list(argv) if argv is not None else None
    )
    if args.list_rules:
        rules = [rule_class() for rule_class in LINT_RULES.values()]
        print(render_rule_catalog(rules))
        return 0
    if args.select:
        unknown = sorted(set(args.select) - set(LINT_RULES.names()))
        if unknown:
            print(
                f"unknown rule code(s): {', '.join(unknown)}; "
                f"known: {', '.join(LINT_RULES.names())}",
                file=sys.stderr,
            )
            return 2
    baseline_path = _resolve_baseline_path(args)
    try:
        run, match = _run(args, baseline_path)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except BaselineError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.write_baseline:
        assert baseline_path is not None  # _resolve_baseline_path guarantees
        write_baseline(baseline_path, run.findings)
        print(
            f"wrote {len(run.findings)} finding(s) to {baseline_path}",
        )
        return 0
    if args.format == "json":
        print(render_json(run, match))
    else:
        print(render_text(run, match))
    return 1 if match.new_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tools/run_lint.py
    raise SystemExit(main())
