"""Rate estimation utilities shared by consistency policies.

Two estimators:

* :class:`UpdateRateEstimator` — estimates how often an object changes,
  from the ``Last-Modified`` timestamps successive polls reveal.  Used
  by the Section 3.2 mutual-consistency heuristic ("trigger polls for
  only those objects that change at a rate faster than the object that
  was modified") and by the inferred violation detector.
* :class:`ValueRateEstimator` — estimates how fast an object's *value*
  drifts (Section 4.1, Figure 2), optionally smoothed exponentially.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.types import Seconds, require_fraction, require_positive


class UpdateRateEstimator:
    """EWMA estimate of an object's update rate (updates per second).

    Fed with the modification times observed at polls.  Each new
    distinct ``Last-Modified`` contributes a gap sample; the estimator
    keeps an exponentially weighted mean gap and reports its inverse.

    The estimator also decays toward slower rates while no modification
    is observed: if the time since the last known modification exceeds
    the current mean gap, the *effective* gap used for the rate is that
    elapsed time (an object that has been silent for an hour is not
    still a once-a-minute object).
    """

    def __init__(self, *, smoothing: float = 0.3) -> None:
        self._smoothing = require_fraction("smoothing", smoothing)
        self._mean_gap: Optional[Seconds] = None
        self._last_modified: Optional[Seconds] = None
        self._samples = 0

    @property
    def sample_count(self) -> int:
        return self._samples

    @property
    def last_modified(self) -> Optional[Seconds]:
        return self._last_modified

    def observe_modification(self, last_modified: Seconds) -> None:
        """Record the ``Last-Modified`` value returned by a poll."""
        if self._last_modified is None:
            self._last_modified = last_modified
            return
        if last_modified <= self._last_modified:
            # Same version seen again (a 304, or a replayed header) —
            # no new information about gaps.
            return
        gap = last_modified - self._last_modified
        self._last_modified = last_modified
        self._observe_gap(gap)

    def observe_update_count(
        self, count: int, interval: Seconds, last_modified: Seconds
    ) -> None:
        """Record that ``count`` updates occurred over ``interval``.

        Available when the server supports the modification-history
        extension: a poll then reveals *how many* updates happened since
        the previous poll, giving a far better rate sample than the
        single Last-Modified gap (which misses every update but the
        newest).
        """
        if count <= 0 or interval <= 0:
            return
        if self._last_modified is None or last_modified > self._last_modified:
            self._last_modified = last_modified
        self._observe_gap(interval / count)

    def _observe_gap(self, gap: Seconds) -> None:
        self._samples += 1
        if self._mean_gap is None:
            self._mean_gap = gap
        else:
            s = self._smoothing
            self._mean_gap = s * gap + (1.0 - s) * self._mean_gap

    def mean_gap(self, now: Optional[Seconds] = None) -> Optional[Seconds]:
        """Estimated mean inter-update gap, silence-adjusted if ``now`` given."""
        if self._mean_gap is None:
            return None
        if now is not None and self._last_modified is not None:
            silence = now - self._last_modified
            if silence > self._mean_gap:
                return silence
        return self._mean_gap

    def rate(self, now: Optional[Seconds] = None) -> Optional[float]:
        """Estimated update rate in updates/second (None if unknown)."""
        gap = self.mean_gap(now)
        if gap is None or gap <= 0:
            return None
        return 1.0 / gap


class ValueRateEstimator:
    """Rate-of-change estimate for a numeric signal (Section 4.1).

    Computes ``r = |v_curr − v_prev| / (t_curr − t_prev)`` from the two
    most recent observations (Figure 2) and optionally smooths the rate
    exponentially across polls.
    """

    def __init__(self, *, smoothing: Optional[float] = None) -> None:
        if smoothing is not None:
            require_fraction("smoothing", smoothing)
        self._smoothing = smoothing
        self._prev_time: Optional[Seconds] = None
        self._prev_value: Optional[float] = None
        self._rate: Optional[float] = None

    @property
    def rate(self) -> Optional[float]:
        """The current rate estimate (value units per second)."""
        return self._rate

    @property
    def previous_value(self) -> Optional[float]:
        return self._prev_value

    @property
    def previous_time(self) -> Optional[Seconds]:
        return self._prev_time

    def observe(self, time: Seconds, value: float) -> Optional[float]:
        """Record an observation; returns the updated rate (or None).

        The first observation establishes the baseline and returns None.
        Repeated observations at the same instant are ignored (rate is
        undefined over a zero interval).
        """
        if not math.isfinite(value):
            raise ValueError(f"value must be finite, got {value}")
        if self._prev_time is None or self._prev_value is None:
            self._prev_time = time
            self._prev_value = value
            return None
        dt = time - self._prev_time
        if dt <= 0:
            return self._rate
        instantaneous = abs(value - self._prev_value) / dt
        if self._rate is None or self._smoothing is None:
            self._rate = instantaneous
        else:
            s = self._smoothing
            self._rate = s * instantaneous + (1.0 - s) * self._rate
        self._prev_time = time
        self._prev_value = value
        return self._rate


def ttr_for_value_bound(
    delta: float, rate: Optional[float], *, ttr_if_static: Seconds
) -> Seconds:
    """Section 4.1, Eq. 9: time for the value to drift by ``delta``.

    A zero/unknown rate means the object is (currently) static; the
    caller supplies the TTR to use in that case (typically TTR_max).
    """
    require_positive("delta", delta)
    if rate is None or rate <= 0:
        return ttr_if_static
    return delta / rate
