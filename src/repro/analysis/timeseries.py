"""Time-series utilities for experiment post-processing.

Figures 4, 6 and 8 of the paper are time-series plots; these helpers
turn event logs and sampled signals into evenly binned series suitable
for ASCII rendering or downstream plotting.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.types import Seconds


@dataclass(frozen=True)
class Series:
    """An evenly binned time series.

    Attributes:
        start: Time of the left edge of the first bin.
        bin_width: Width of each bin, in seconds.
        values: One value per bin.
        label: Name for rendering.
    """

    start: Seconds
    bin_width: Seconds
    values: Tuple[float, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {self.bin_width}")

    @property
    def end(self) -> Seconds:
        return self.start + self.bin_width * len(self.values)

    def bin_centers(self) -> List[Seconds]:
        return [
            self.start + (i + 0.5) * self.bin_width for i in range(len(self.values))
        ]

    def __len__(self) -> int:
        return len(self.values)


def bin_count(
    times: Iterable[Seconds],
    *,
    start: Seconds,
    end: Seconds,
    bin_width: Seconds,
    label: str = "",
) -> Series:
    """Count event instants per bin over [start, end).

    ``times`` may be any iterable (callers can stream event times from
    a log without materialising a list); each instant is binned in O(1)
    by :class:`repro.metrics.streaming.StreamingBinCounter`.
    """
    from repro.metrics.streaming import StreamingBinCounter

    counter = StreamingBinCounter(start=start, end=end, bin_width=bin_width)
    counter.add_many(times)
    return counter.to_series(label=label)


def sample_step_function(
    knots: Sequence[Tuple[Seconds, float]],
    *,
    start: Seconds,
    end: Seconds,
    bin_width: Seconds,
    initial: float = math.nan,
    label: str = "",
) -> Series:
    """Sample a piecewise-constant signal at bin centers.

    ``knots`` are (time, new_value) change points, ascending in time.
    Bins whose center precedes the first knot get ``initial``.
    """
    if end <= start:
        raise ValueError(f"end ({end}) must exceed start ({start})")
    times = [t for t, _ in knots]
    for earlier, later in zip(times, times[1:]):
        if later < earlier:
            raise ValueError("knots must be ascending in time")
    n = int(math.ceil((end - start) / bin_width))
    values: List[float] = []
    for i in range(n):
        center = start + (i + 0.5) * bin_width
        index = bisect.bisect_right(times, center) - 1
        values.append(knots[index][1] if index >= 0 else initial)
    return Series(start=start, bin_width=bin_width, values=tuple(values), label=label)


def ratio_series(numerator: Series, denominator: Series, *, label: str = "") -> Series:
    """Element-wise ratio of two aligned series (NaN where undefined)."""
    if (
        numerator.start != denominator.start
        or numerator.bin_width != denominator.bin_width
        or len(numerator) != len(denominator)
    ):
        raise ValueError("series are not aligned")
    values = tuple(
        (a / b) if b not in (0, 0.0) else math.nan
        for a, b in zip(numerator.values, denominator.values)
    )
    return Series(
        start=numerator.start,
        bin_width=numerator.bin_width,
        values=values,
        label=label or f"{numerator.label}/{denominator.label}",
    )


def moving_average(series: Series, window_bins: int, *, label: str = "") -> Series:
    """Centered moving average over ``window_bins`` bins (NaN-aware)."""
    if window_bins < 1:
        raise ValueError(f"window_bins must be >= 1, got {window_bins}")
    half = window_bins // 2
    smoothed: List[float] = []
    vals = series.values
    for i in range(len(vals)):
        lo = max(0, i - half)
        hi = min(len(vals), i + half + 1)
        window = [v for v in vals[lo:hi] if not math.isnan(v)]
        smoothed.append(sum(window) / len(window) if window else math.nan)
    return Series(
        start=series.start,
        bin_width=series.bin_width,
        values=tuple(smoothed),
        label=label or f"ma({series.label})",
    )
