"""Shared analysis utilities: rate estimation, time-series binning."""

from repro.analysis.rates import (
    UpdateRateEstimator,
    ValueRateEstimator,
    ttr_for_value_bound,
)
from repro.analysis.timeseries import (
    Series,
    bin_count,
    moving_average,
    ratio_series,
    sample_step_function,
)

__all__ = [
    "UpdateRateEstimator",
    "ValueRateEstimator",
    "ttr_for_value_bound",
    "Series",
    "bin_count",
    "moving_average",
    "ratio_series",
    "sample_step_function",
]
