"""Conditional-GET evaluation semantics.

Encodes how an origin server answers an ``If-Modified-Since`` request:
304 when the object is unchanged since the supplied timestamp, else 200
with fresh metadata.  Also builds the Section 5.1 modification-history
header when the request asks for it.

This logic is pulled out of the server class so it can be unit-tested
and property-tested in isolation.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from repro.core.types import Seconds
from repro.httpsim import headers as h
from repro.httpsim.messages import Headers, Request, Response, Status


class RequestTarget(Protocol):
    """Anything a proxy can poll: an origin server or an upstream proxy.

    Both :class:`repro.server.origin.OriginServer` and
    :class:`repro.proxy.proxy.ProxyCache` satisfy this protocol, which
    is what makes hierarchical proxy chains (child polls parent polls
    origin) possible without special-casing either side.
    """

    name: str

    def handle_request(self, request: Request, now: Seconds) -> Response:
        """Answer a simulated HTTP request at time ``now``."""
        ...

#: Cap on how many modification times the history header carries.  The
#: paper proposes "a modification history of arbitrary length"; a cap
#: keeps simulated message sizes bounded while still covering any
#: realistic poll interval.
MAX_HISTORY_LENGTH = 64


def evaluate_conditional_get(
    request: Request,
    *,
    now: Seconds,
    last_modified: Optional[Seconds],
    version: Optional[int],
    value: Optional[float],
    history_times: Sequence[Seconds],
) -> Response:
    """Answer a conditional GET given the object's server-side state.

    Args:
        request: The incoming request.
        now: Server time when the response is generated.
        last_modified: The object's latest modification time, or ``None``
            if the object has never been modified (unborn → 404).
        version: Current version number (paired with ``last_modified``).
        value: Current value for valued objects, else ``None``.
        history_times: All modification times up to ``now`` (ascending).
            Used to populate the history extension header.

    Returns:
        A 404, 304, or 200 response per HTTP/1.1 semantics.
    """
    if last_modified is None or version is None:
        return Response(
            status=Status.NOT_FOUND,
            object_id=request.object_id,
            headers=Headers({h.DATE: h.format_time(now)}),
            served_at=now,
        )

    ims = request.if_modified_since
    headers = Headers({h.DATE: h.format_time(now)})

    if ims is not None and last_modified <= ims:
        # Unchanged since the caller's timestamp → 304.  Per RFC 2616 a
        # 304 must not carry entity headers, but Last-Modified is
        # permitted and useful; we include it plus the version so the
        # proxy can re-validate bookkeeping.
        headers.set(h.LAST_MODIFIED, h.format_time(last_modified))
        headers.set(h.VERSION, str(version))
        if request.wants_history:
            headers.set(h.MODIFICATION_HISTORY, h.format_history([]))
        return Response(
            status=Status.NOT_MODIFIED,
            object_id=request.object_id,
            headers=headers,
            served_at=now,
        )

    headers.set(h.LAST_MODIFIED, h.format_time(last_modified))
    headers.set(h.VERSION, str(version))
    if value is not None:
        headers.set(h.VALUE, repr(value))
    if request.wants_history:
        unseen = _history_since(history_times, ims)
        headers.set(h.MODIFICATION_HISTORY, h.format_history(unseen))
    return Response(
        status=Status.OK,
        object_id=request.object_id,
        headers=headers,
        served_at=now,
    )


def _history_since(
    history_times: Sequence[Seconds], since: Optional[Seconds]
) -> List[Seconds]:
    """Modification times strictly after ``since`` (all times if None).

    Truncated to the most recent :data:`MAX_HISTORY_LENGTH` entries.
    """
    if since is None:
        unseen = list(history_times)
    else:
        unseen = [t for t in history_times if t > since]
    if len(unseen) > MAX_HISTORY_LENGTH:
        unseen = unseen[-MAX_HISTORY_LENGTH:]
    return unseen
