"""Conditional-GET evaluation semantics.

Encodes how an origin server answers an ``If-Modified-Since`` request:
304 when the object is unchanged since the supplied timestamp, else 200
with fresh metadata.  Also builds the Section 5.1 modification-history
header when the request asks for it.

This logic is pulled out of the server class so it can be unit-tested
and property-tested in isolation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Protocol, Sequence

from repro.core.types import Seconds
from repro.httpsim import headers as h
from repro.httpsim.messages import Headers, Request, Response, Status


class RequestTarget(Protocol):
    """Anything a proxy can poll: an origin server or an upstream proxy.

    Both :class:`repro.server.origin.OriginServer` and
    :class:`repro.proxy.proxy.ProxyCache` satisfy this protocol, which
    is what makes hierarchical proxy chains (child polls parent polls
    origin) possible without special-casing either side.
    """

    name: str

    def handle_request(self, request: Request, now: Seconds) -> Response:
        """Answer a simulated HTTP request at time ``now``."""
        ...

#: Cap on how many modification times the history header carries.  The
#: paper proposes "a modification history of arbitrary length"; a cap
#: keeps simulated message sizes bounded while still covering any
#: realistic poll interval.
MAX_HISTORY_LENGTH = 64


def evaluate_conditional_get(
    request: Request,
    *,
    now: Seconds,
    last_modified: Optional[Seconds],
    version: Optional[int],
    value: Optional[float],
    history_times: Sequence[Seconds],
    wants_history: Optional[bool] = None,
) -> Response:
    """Answer a conditional GET given the object's server-side state.

    Args:
        request: The incoming request.
        now: Server time when the response is generated.
        last_modified: The object's latest modification time, or ``None``
            if the object has never been modified (unborn → 404).
        version: Current version number (paired with ``last_modified``).
        value: Current value for valued objects, else ``None``.
        history_times: All modification times up to ``now`` (ascending).
            Used to populate the history extension header.
        wants_history: Pre-parsed ``request.wants_history``, when the
            caller has already computed it (avoids re-parsing the header
            on the per-poll hot path); ``None`` reads it from the
            request.

    Returns:
        A 404, 304, or 200 response per HTTP/1.1 semantics.
    """
    if last_modified is None or version is None:
        response = Response(
            status=Status.NOT_FOUND,
            object_id=request.object_id,
            headers=Headers._presanitized({h.DATE: h.format_time(now)}),
            served_at=now,
        )
        response._last_modified = None
        response._version = None
        response._value = None
        response._history = None
        return response

    if wants_history is None:
        wants_history = request.wants_history
    ims = request.if_modified_since
    entries = {h.DATE: h.format_time(now)}

    if ims is not None and last_modified <= ims:
        # Unchanged since the caller's timestamp → 304.  Per RFC 2616 a
        # 304 must not carry entity headers, but Last-Modified is
        # permitted and useful; we include it plus the version so the
        # proxy can re-validate bookkeeping.
        entries[h.LAST_MODIFIED] = h.format_time(last_modified)
        entries[h.VERSION] = str(version)
        if wants_history:
            entries[h.MODIFICATION_HISTORY] = ""
        response = Response(
            status=Status.NOT_MODIFIED,
            object_id=request.object_id,
            headers=Headers._presanitized(entries),
            served_at=now,
        )
        # Pre-fill the typed accessors with the values just serialised
        # (the header round-trip is exact — repr/float and str/int).
        response._last_modified = last_modified
        response._version = version
        response._value = None
        response._history = [] if wants_history else None
        return response

    entries[h.LAST_MODIFIED] = h.format_time(last_modified)
    entries[h.VERSION] = str(version)
    if value is not None:
        entries[h.VALUE] = repr(value)
    unseen: Optional[List[Seconds]] = None
    if wants_history:
        unseen = _history_since(history_times, ims)
        entries[h.MODIFICATION_HISTORY] = h.format_history(unseen)
    response = Response(
        status=Status.OK,
        object_id=request.object_id,
        headers=Headers._presanitized(entries),
        served_at=now,
    )
    response._last_modified = last_modified
    response._version = version
    response._value = value
    response._history = unseen
    return response


def _history_since(
    history_times: Sequence[Seconds], since: Optional[Seconds]
) -> List[Seconds]:
    """Modification times strictly after ``since`` (all times if None).

    ``history_times`` is ascending, so the cut point is found by
    bisection rather than a full scan.  Truncated to the most recent
    :data:`MAX_HISTORY_LENGTH` entries.
    """
    if since is None:
        start = 0
    else:
        start = bisect_right(history_times, since)
    if len(history_times) - start > MAX_HISTORY_LENGTH:
        start = len(history_times) - MAX_HISTORY_LENGTH
    return list(history_times[start:])
