"""HTTP header names, including the paper's Section 5.1 extensions.

The paper proposes two HTTP/1.1 extensions:

1. a **modification-history** response header carrying the times of the
   most recent updates (plain HTTP exposes only ``Last-Modified``, which
   makes Figure 1(b)-style violations undetectable); and
2. **cache-control consistency directives** by which a client/proxy
   declares the per-object tolerance Δ and the per-group tolerance δ.

We model both with ``x-``-prefixed user-defined headers, exactly as the
paper suggests ("using the user-defined header features of HTTP").
"""

from __future__ import annotations

from typing import List, Sequence

# Standard HTTP/1.1 headers the simulation models.
LAST_MODIFIED = "last-modified"
IF_MODIFIED_SINCE = "if-modified-since"
CACHE_CONTROL = "cache-control"
DATE = "date"
CONTENT_LENGTH = "content-length"

# Section 5.1 extension headers.
#: Response header: comma-separated recent modification times (newest
#: last), covering at least the interval since the request's IMS time.
MODIFICATION_HISTORY = "x-modification-history"
#: Request header: ask the server to include the modification history.
WANT_HISTORY = "x-want-modification-history"
#: Request cache-control-style directive: individual tolerance Δ.
CONSISTENCY_DELTA = "x-consistency-delta"
#: Request cache-control-style directive: mutual tolerance δ.
MUTUAL_CONSISTENCY_DELTA = "x-mutual-consistency-delta"
#: Response header: the object's current version number (simulation aid;
#: real deployments would rely on ETag).
VERSION = "x-version"
#: Response header: the object's current value, for valued objects.
VALUE = "x-value"


def format_time(t: float) -> str:
    """Serialise a simulation timestamp for a header value.

    Real HTTP uses RFC 1123 dates; the simulation's clock is a float, so
    we serialise with full precision via ``repr``.
    """
    return repr(float(t))


def parse_time(raw: str) -> float:
    """Parse a header timestamp produced by :func:`format_time`."""
    return float(raw)


def format_history(times: Sequence[float]) -> str:
    """Serialise a modification-history list (oldest first)."""
    return ",".join(format_time(t) for t in times)


def parse_history(raw: str) -> List[float]:
    """Parse a modification-history header value."""
    raw = raw.strip()
    if not raw:
        return []
    return [parse_time(piece) for piece in raw.split(",")]
