"""Simulated HTTP request/response messages.

The simulation exchanges message objects rather than bytes, but the
message model mirrors HTTP/1.1 where the paper depends on it: methods,
status codes (200/304/404), case-insensitive headers, ``Last-Modified``
and ``If-Modified-Since`` semantics, and the Section 5.1 extension
headers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.errors import ProtocolError
from repro.core.types import ObjectId, Seconds
from repro.httpsim import headers as h


class Method(enum.Enum):
    """HTTP request methods modelled by the simulation."""

    GET = "GET"
    HEAD = "HEAD"


class Status(enum.IntEnum):
    """HTTP status codes modelled by the simulation."""

    OK = 200
    NOT_MODIFIED = 304
    NOT_FOUND = 404


class Headers:
    """A case-insensitive header multimap (single-valued per name).

    HTTP header names are case-insensitive; we store them lower-cased
    and preserve insertion order for deterministic serialisation.
    """

    def __init__(self, initial: Optional[Mapping[str, str]] = None) -> None:
        self._entries: Dict[str, str] = {}
        if initial:
            for name, value in initial.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        if not name:
            raise ValueError("header name must be non-empty")
        self._entries[name.lower()] = value

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self._entries.get(name.lower(), default)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def copy(self) -> "Headers":
        return Headers(dict(self._entries))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"Headers({self._entries})"


@dataclass
class Request:
    """A simulated HTTP request from proxy (or client) to a server."""

    method: Method
    object_id: ObjectId
    headers: Headers = field(default_factory=Headers)
    issued_at: Seconds = 0.0

    @property
    def if_modified_since(self) -> Optional[Seconds]:
        """Parsed ``If-Modified-Since`` timestamp, if present."""
        raw = self.headers.get(h.IF_MODIFIED_SINCE)
        return h.parse_time(raw) if raw is not None else None

    @property
    def wants_history(self) -> bool:
        """True if the request asks for the modification-history extension."""
        return self.headers.get(h.WANT_HISTORY, "").lower() in ("1", "true", "yes")

    @property
    def consistency_delta(self) -> Optional[float]:
        """The Δ tolerance declared by the requester (Section 5.1)."""
        raw = self.headers.get(h.CONSISTENCY_DELTA)
        return float(raw) if raw is not None else None

    @property
    def mutual_consistency_delta(self) -> Optional[float]:
        """The δ tolerance declared by the requester (Section 5.1)."""
        raw = self.headers.get(h.MUTUAL_CONSISTENCY_DELTA)
        return float(raw) if raw is not None else None


@dataclass
class Response:
    """A simulated HTTP response."""

    status: Status
    object_id: ObjectId
    headers: Headers = field(default_factory=Headers)
    served_at: Seconds = 0.0

    @property
    def last_modified(self) -> Optional[Seconds]:
        raw = self.headers.get(h.LAST_MODIFIED)
        return h.parse_time(raw) if raw is not None else None

    @property
    def version(self) -> Optional[int]:
        raw = self.headers.get(h.VERSION)
        return int(raw) if raw is not None else None

    @property
    def value(self) -> Optional[float]:
        raw = self.headers.get(h.VALUE)
        return float(raw) if raw is not None else None

    @property
    def modification_history(self) -> Optional[List[Seconds]]:
        """Parsed history extension header, or None if absent."""
        raw = self.headers.get(h.MODIFICATION_HISTORY)
        if raw is None:
            return None
        return h.parse_history(raw)

    def require_ok_or_not_modified(self) -> "Response":
        """Assert the response is 200 or 304 (the poll-path statuses)."""
        if self.status not in (Status.OK, Status.NOT_MODIFIED):
            raise ProtocolError(
                f"poll of {self.object_id!r} returned unexpected status "
                f"{int(self.status)}"
            )
        return self


def conditional_get(
    object_id: ObjectId,
    *,
    if_modified_since: Optional[Seconds] = None,
    want_history: bool = False,
    consistency_delta: Optional[float] = None,
    mutual_consistency_delta: Optional[float] = None,
    issued_at: Seconds = 0.0,
) -> Request:
    """Build an ``If-Modified-Since`` GET as a proxy poll would issue."""
    hdrs = Headers()
    if if_modified_since is not None:
        hdrs.set(h.IF_MODIFIED_SINCE, h.format_time(if_modified_since))
    if want_history:
        hdrs.set(h.WANT_HISTORY, "1")
    if consistency_delta is not None:
        hdrs.set(h.CONSISTENCY_DELTA, repr(consistency_delta))
    if mutual_consistency_delta is not None:
        hdrs.set(h.MUTUAL_CONSISTENCY_DELTA, repr(mutual_consistency_delta))
    return Request(
        method=Method.GET,
        object_id=object_id,
        headers=hdrs,
        issued_at=issued_at,
    )
