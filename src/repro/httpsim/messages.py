"""Simulated HTTP request/response messages.

The simulation exchanges message objects rather than bytes, but the
message model mirrors HTTP/1.1 where the paper depends on it: methods,
status codes (200/304/404), case-insensitive headers, ``Last-Modified``
and ``If-Modified-Since`` semantics, and the Section 5.1 extension
headers.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.errors import ProtocolError
from repro.core.types import ObjectId, Seconds
from repro.httpsim import headers as h


class Method(enum.Enum):
    """HTTP request methods modelled by the simulation."""

    GET = "GET"
    HEAD = "HEAD"


class Status(enum.IntEnum):
    """HTTP status codes modelled by the simulation."""

    OK = 200
    NOT_MODIFIED = 304
    NOT_FOUND = 404


class Headers:
    """A case-insensitive header multimap (single-valued per name).

    HTTP header names are case-insensitive; we store them lower-cased
    and preserve insertion order for deterministic serialisation.
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[Mapping[str, str]] = None) -> None:
        self._entries: Dict[str, str] = {}
        if initial:
            for name, value in initial.items():
                self.set(name, value)

    @classmethod
    def _presanitized(cls, entries: Dict[str, str]) -> "Headers":
        """Wrap a dict whose keys are already lower-case, without copying.

        Internal fast path for the per-poll message factories
        (:func:`conditional_get`,
        :func:`repro.httpsim.semantics.evaluate_conditional_get`), which
        only use the module's lower-case header-name constants.  The
        caller must hand over ownership of ``entries``.
        """
        headers = cls.__new__(cls)
        headers._entries = entries
        return headers

    def set(self, name: str, value: str) -> None:
        if not name:
            raise ValueError("header name must be non-empty")
        self._entries[name.lower()] = value

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self._entries.get(name.lower(), default)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def copy(self) -> "Headers":
        return Headers(dict(self._entries))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"Headers({self._entries})"


#: Sentinel marking a typed accessor as not-yet-parsed.
_UNSET = object()


class Request:
    """A simulated HTTP request from proxy (or client) to a server.

    The headers are authoritative — a request hand-built from strings
    behaves identically to one built by :func:`conditional_get` — but
    the typed accessors memoize their parse (and the message factories
    pre-fill them), so the per-poll hot path never re-parses a header
    it already has in typed form.  Consequently ``headers`` must be
    treated as immutable once a typed accessor has been read — and on
    factory-built messages (:func:`conditional_get`,
    :func:`repro.httpsim.semantics.evaluate_conditional_get`) from
    construction, since the factory pre-fills the accessors.  To vary a
    message, build a new one (see
    ``repro.server.origin._without_history_request``).
    """

    __slots__ = ("method", "object_id", "headers", "issued_at", "_ims", "_wants_history")

    def __init__(
        self,
        method: Method,
        object_id: ObjectId,
        headers: Optional[Headers] = None,
        issued_at: Seconds = 0.0,
    ) -> None:
        self.method = method
        self.object_id = object_id
        self.headers = headers if headers is not None else Headers()
        self.issued_at = issued_at
        self._ims = _UNSET
        self._wants_history = _UNSET

    @property
    def if_modified_since(self) -> Optional[Seconds]:
        """Parsed ``If-Modified-Since`` timestamp, if present."""
        ims = self._ims
        if ims is _UNSET:
            raw = self.headers.get(h.IF_MODIFIED_SINCE)
            ims = h.parse_time(raw) if raw is not None else None
            self._ims = ims
        return ims

    @property
    def wants_history(self) -> bool:
        """True if the request asks for the modification-history extension."""
        wants = self._wants_history
        if wants is _UNSET:
            raw = self.headers.get(h.WANT_HISTORY, "")
            wants = raw.lower() in ("1", "true", "yes")
            self._wants_history = wants
        return wants

    @property
    def consistency_delta(self) -> Optional[float]:
        """The Δ tolerance declared by the requester (Section 5.1)."""
        raw = self.headers.get(h.CONSISTENCY_DELTA)
        return float(raw) if raw is not None else None

    @property
    def mutual_consistency_delta(self) -> Optional[float]:
        """The δ tolerance declared by the requester (Section 5.1)."""
        raw = self.headers.get(h.MUTUAL_CONSISTENCY_DELTA)
        return float(raw) if raw is not None else None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Request):
            return NotImplemented
        return (
            self.method == other.method
            and self.object_id == other.object_id
            and self.headers == other.headers
            and self.issued_at == other.issued_at
        )

    def __repr__(self) -> str:
        return (
            f"Request(method={self.method!r}, object_id={self.object_id!r}, "
            f"headers={self.headers!r}, issued_at={self.issued_at!r})"
        )


class Response:
    """A simulated HTTP response.

    As with :class:`Request`, the headers are authoritative and the
    typed accessors (``last_modified``, ``version``, ...) memoize their
    parse.  :func:`repro.httpsim.semantics.evaluate_conditional_get`
    pre-fills them with the server-side values it serialised, so the
    proxy's poll-completion path reads plain attributes instead of
    re-parsing header strings.  The same immutability rule applies: do
    not mutate ``headers`` on a factory-built response (or after a
    typed accessor read on a hand-built one); build a new message
    instead.
    """

    __slots__ = (
        "status",
        "object_id",
        "headers",
        "served_at",
        "_last_modified",
        "_version",
        "_value",
        "_history",
    )

    def __init__(
        self,
        status: Status,
        object_id: ObjectId,
        headers: Optional[Headers] = None,
        served_at: Seconds = 0.0,
    ) -> None:
        self.status = status
        self.object_id = object_id
        self.headers = headers if headers is not None else Headers()
        self.served_at = served_at
        self._last_modified = _UNSET
        self._version = _UNSET
        self._value = _UNSET
        self._history = _UNSET

    @property
    def last_modified(self) -> Optional[Seconds]:
        parsed = self._last_modified
        if parsed is _UNSET:
            raw = self.headers.get(h.LAST_MODIFIED)
            parsed = h.parse_time(raw) if raw is not None else None
            self._last_modified = parsed
        return parsed

    @property
    def version(self) -> Optional[int]:
        parsed = self._version
        if parsed is _UNSET:
            raw = self.headers.get(h.VERSION)
            parsed = int(raw) if raw is not None else None
            self._version = parsed
        return parsed

    @property
    def value(self) -> Optional[float]:
        parsed = self._value
        if parsed is _UNSET:
            raw = self.headers.get(h.VALUE)
            parsed = float(raw) if raw is not None else None
            self._value = parsed
        return parsed

    @property
    def modification_history(self) -> Optional[List[Seconds]]:
        """Parsed history extension header, or None if absent."""
        parsed = self._history
        if parsed is _UNSET:
            raw = self.headers.get(h.MODIFICATION_HISTORY)
            parsed = h.parse_history(raw) if raw is not None else None
            self._history = parsed
        return parsed

    def require_ok_or_not_modified(self) -> "Response":
        """Assert the response is 200 or 304 (the poll-path statuses)."""
        if self.status not in (Status.OK, Status.NOT_MODIFIED):
            raise ProtocolError(
                f"poll of {self.object_id!r} returned unexpected status "
                f"{int(self.status)}"
            )
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Response):
            return NotImplemented
        return (
            self.status == other.status
            and self.object_id == other.object_id
            and self.headers == other.headers
            and self.served_at == other.served_at
        )

    def __repr__(self) -> str:
        return (
            f"Response(status={self.status!r}, object_id={self.object_id!r}, "
            f"headers={self.headers!r}, served_at={self.served_at!r})"
        )


def conditional_get(
    object_id: ObjectId,
    *,
    if_modified_since: Optional[Seconds] = None,
    want_history: bool = False,
    consistency_delta: Optional[float] = None,
    mutual_consistency_delta: Optional[float] = None,
    issued_at: Seconds = 0.0,
) -> Request:
    """Build an ``If-Modified-Since`` GET as a proxy poll would issue."""
    entries: Dict[str, str] = {}
    if if_modified_since is not None:
        entries[h.IF_MODIFIED_SINCE] = h.format_time(if_modified_since)
    if want_history:
        entries[h.WANT_HISTORY] = "1"
    if consistency_delta is not None:
        entries[h.CONSISTENCY_DELTA] = repr(consistency_delta)
    if mutual_consistency_delta is not None:
        entries[h.MUTUAL_CONSISTENCY_DELTA] = repr(mutual_consistency_delta)
    hdrs = Headers._presanitized(entries)
    request = Request(
        method=Method.GET,
        object_id=object_id,
        headers=hdrs,
        issued_at=issued_at,
    )
    # Pre-fill the typed accessors with the values just serialised (the
    # header round-trip is exact, so this is purely a parse saved).
    request._ims = if_modified_since
    request._wants_history = bool(want_history)
    return request
