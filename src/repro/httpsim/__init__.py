"""Simulated HTTP: messages, conditional-GET semantics, network model."""

from repro.httpsim.messages import (
    Headers,
    Method,
    Request,
    Response,
    Status,
    conditional_get,
)
from repro.httpsim.network import LatencyModel, Network
from repro.httpsim.semantics import MAX_HISTORY_LENGTH, evaluate_conditional_get

__all__ = [
    "Headers",
    "Method",
    "Request",
    "Response",
    "Status",
    "conditional_get",
    "LatencyModel",
    "Network",
    "MAX_HISTORY_LENGTH",
    "evaluate_conditional_get",
]
