"""Network model between the proxy and origin servers.

The paper's simulation "assumes ... that the network latency in polling
and fetching objects from the server is fixed" (Section 6.1.1), because
the study targets consistency mechanisms, not network dynamics.  We
model exactly that: a fixed one-way latency per link, applied
symmetrically, with an optional synchronous (zero-latency) fast path
that the experiment harness uses by default.

A small jitter hook exists for robustness experiments but defaults off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.types import Seconds
from repro.httpsim.messages import Request, Response
from repro.sim.kernel import Kernel

#: A server-side handler: takes (request, arrival_time) → response.
ServerHandler = Callable[[Request, Seconds], Response]
#: A proxy-side continuation invoked when the response arrives.
ResponseCallback = Callable[[Response], None]


@dataclass(frozen=True)
class LatencyModel:
    """Fixed one-way latency with optional uniform jitter.

    Attributes:
        one_way: Base one-way latency in seconds (0 = synchronous).
        jitter: Half-width of uniform jitter added per direction.
    """

    one_way: Seconds = 0.0
    jitter: Seconds = 0.0

    def __post_init__(self) -> None:
        if self.one_way < 0:
            raise ValueError(f"one_way latency must be >= 0, got {self.one_way}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.jitter > self.one_way:
            raise ValueError(
                f"jitter ({self.jitter}) cannot exceed one_way ({self.one_way}); "
                "latency would go negative"
            )

    def sample_one_way(self, rng: Optional[random.Random]) -> Seconds:
        """Draw one direction's latency."""
        if self.jitter == 0 or rng is None:
            return self.one_way
        return self.one_way + rng.uniform(-self.jitter, self.jitter)

    @property
    def is_synchronous(self) -> bool:
        """True when exchanges complete instantaneously."""
        return self.one_way == 0 and self.jitter == 0


class Network:
    """Delivers requests to a server handler and responses back.

    With a synchronous latency model, :meth:`exchange` runs the whole
    round trip inline and invokes the callback before returning — the
    mode all paper experiments use.  With nonzero latency, delivery is
    scheduled on the kernel.
    """

    def __init__(
        self,
        kernel: Kernel,
        latency: LatencyModel = LatencyModel(),
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._kernel = kernel
        self._latency = latency
        self._rng = rng
        self._requests_sent = 0
        #: Cached latency-model check so per-poll callers can branch on a
        #: plain attribute (the LatencyModel is immutable).
        self.synchronous: bool = latency.is_synchronous

    @property
    def latency(self) -> LatencyModel:
        return self._latency

    @property
    def requests_sent(self) -> int:
        return self._requests_sent

    def record_synthetic_exchanges(self, count: int) -> None:
        """Account for round trips completed analytically.

        The fast-forward engine (:mod:`repro.sim.fastforward`) collapses
        runs of idle 304 polls into closed-form bookkeeping; those polls
        never pass through :meth:`exchange_sync`, so their request count
        is applied here to keep ``requests_sent`` identical to a
        step-by-step run.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._requests_sent += count

    def exchange_sync(self, request: Request, handler: ServerHandler) -> Response:
        """Run a zero-latency round trip inline and return the response.

        Hot-path variant of :meth:`exchange` for synchronous networks:
        the caller consumes the response directly instead of paying for
        a per-poll continuation closure.  Only valid when
        :attr:`synchronous` is true.
        """
        self._requests_sent += 1
        return handler(request, self._kernel.now())

    def exchange(
        self,
        request: Request,
        handler: ServerHandler,
        callback: ResponseCallback,
    ) -> None:
        """Send ``request`` to ``handler``; deliver the response to
        ``callback`` after the modelled round trip."""
        if self.synchronous:
            callback(self.exchange_sync(request, handler))
            return
        self._requests_sent += 1

        forward = self._latency.sample_one_way(self._rng)

        def deliver_request(kernel: Kernel) -> None:
            response = handler(request, kernel.now())
            backward = self._latency.sample_one_way(self._rng)
            kernel.schedule_after(
                backward,
                lambda _k: callback(response),
                label=f"net.response.{request.object_id}",
            )

        self._kernel.schedule_after(
            forward, deliver_request, label=f"net.request.{request.object_id}"
        )
