"""repro — a reproduction of *Maintaining Mutual Consistency for Cached
Web Objects* (Urgaonkar, Ninan, Raunak, Shenoy, Ramamritham; ICDCS 2001).

The library implements the paper's full stack in pure Python:

* a discrete-event simulation kernel (:mod:`repro.sim`);
* a simulated HTTP layer with conditional GETs and the paper's proposed
  protocol extensions (:mod:`repro.httpsim`);
* origin servers driven by update traces (:mod:`repro.server`,
  :mod:`repro.traces`);
* a proxy cache with pluggable consistency policies (:mod:`repro.proxy`);
* the paper's algorithms — LIMD, adaptive value TTR, triggered/heuristic
  mutual temporal consistency, adaptive-f and partitioned-δ mutual value
  consistency (:mod:`repro.consistency`);
* ground-truth fidelity metrics (:mod:`repro.metrics`);
* per-table/figure experiment harnesses (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        MINUTE, limd_policy_factory, news_trace, run_individual,
        collect_temporal,
    )

    trace = news_trace("cnn_fn")
    delta = 10 * MINUTE
    result = run_individual([trace], limd_policy_factory(delta))
    report = collect_temporal(result.proxy, trace, delta).report
    print(report.polls, report.fidelity_by_violations)
"""

from repro.consistency import (
    AdaptiveFCoordinator,
    AdaptiveFParameters,
    AdaptiveValueParameters,
    AdaptiveValueTTRPolicy,
    FixedTTRPolicy,
    GroupBudget,
    LimdParameters,
    LimdPolicy,
    MutualTemporalCoordinator,
    MutualTemporalMode,
    PartitionedGroupMvCoordinator,
    PartitionedMvCoordinator,
    PartitionParameters,
    PassivePolicy,
    RefreshPolicy,
    adaptive_value_policy_factory,
    fixed_policy_factory,
    group_f_history,
    limd_policy_factory,
    total_minus_parts,
)
from repro.core import (
    DAY,
    HOUR,
    MINUTE,
    ConsistencyBounds,
    GroupSpec,
    ManualClock,
    ObjectId,
    ObjectSnapshot,
    PollOutcome,
    ReproError,
    RngRegistry,
    Seconds,
    TTRBounds,
    UpdateRecord,
)
from repro.experiments import (
    DEFAULT_SEED,
    RunResult,
    news_trace,
    news_traces,
    run_individual,
    run_mutual_temporal,
    run_mutual_value_adaptive,
    run_mutual_value_group,
    run_mutual_value_partitioned,
    stock_trace,
    stock_traces,
)
from repro.groups import DependencyGraph, GroupRegistry, relate_document
from repro.httpsim import LatencyModel, Network
from repro.metrics import (
    FidelityReport,
    collect_mutual_temporal,
    collect_mutual_value,
    collect_temporal,
    collect_value,
    mutual_temporal_fidelity,
    mutual_value_fidelity,
    temporal_fidelity,
    value_fidelity,
)
from repro.metrics import temporal_fidelity_from_snapshots
from repro.proxy import Client, ObjectCache, ProxyCache, ProxyChain
from repro.server import OriginServer, UpdateFeeder, feed_traces
from repro.sim import EventLog, Kernel
from repro.topology import TopologyNode, TopologyTree, TreeLevel, uniform_levels
from repro.traces import (
    NewsTraceSpec,
    SportsMatchSpec,
    StockTraceSpec,
    UpdateTrace,
    generate_match,
    trace_from_ticks,
    trace_from_times,
)

__version__ = "1.0.0"

__all__ = [
    # consistency
    "AdaptiveFCoordinator",
    "AdaptiveFParameters",
    "AdaptiveValueParameters",
    "AdaptiveValueTTRPolicy",
    "FixedTTRPolicy",
    "GroupBudget",
    "LimdParameters",
    "LimdPolicy",
    "MutualTemporalCoordinator",
    "MutualTemporalMode",
    "PartitionedGroupMvCoordinator",
    "PartitionedMvCoordinator",
    "PartitionParameters",
    "PassivePolicy",
    "RefreshPolicy",
    "adaptive_value_policy_factory",
    "fixed_policy_factory",
    "group_f_history",
    "limd_policy_factory",
    "total_minus_parts",
    # core
    "DAY",
    "HOUR",
    "MINUTE",
    "ConsistencyBounds",
    "GroupSpec",
    "ManualClock",
    "ObjectId",
    "ObjectSnapshot",
    "PollOutcome",
    "ReproError",
    "RngRegistry",
    "Seconds",
    "TTRBounds",
    "UpdateRecord",
    # experiments
    "DEFAULT_SEED",
    "RunResult",
    "news_trace",
    "news_traces",
    "run_individual",
    "run_mutual_temporal",
    "run_mutual_value_adaptive",
    "run_mutual_value_group",
    "run_mutual_value_partitioned",
    "stock_trace",
    "stock_traces",
    # groups
    "DependencyGraph",
    "GroupRegistry",
    "relate_document",
    # httpsim
    "LatencyModel",
    "Network",
    # metrics
    "FidelityReport",
    "collect_mutual_temporal",
    "collect_mutual_value",
    "collect_temporal",
    "collect_value",
    "mutual_temporal_fidelity",
    "mutual_value_fidelity",
    "temporal_fidelity",
    "temporal_fidelity_from_snapshots",
    "value_fidelity",
    # proxy / server / sim
    "Client",
    "ObjectCache",
    "ProxyCache",
    "ProxyChain",
    "OriginServer",
    "UpdateFeeder",
    "feed_traces",
    "EventLog",
    "Kernel",
    # topology
    "TopologyNode",
    "TopologyTree",
    "TreeLevel",
    "uniform_levels",
    # traces
    "NewsTraceSpec",
    "SportsMatchSpec",
    "StockTraceSpec",
    "UpdateTrace",
    "generate_match",
    "trace_from_ticks",
    "trace_from_times",
    "__version__",
]
