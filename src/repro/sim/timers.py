"""Timer helpers built on the kernel.

The proxy refreshers are driven by *rescheduleable* one-shot timers: a
TTR expires, the policy computes the next TTR, and the timer is re-armed.
``RestartableTimer`` encapsulates that pattern; ``PeriodicTimer`` covers
fixed-interval polling (the paper's baseline approach).

Both timers ride the kernel's allocation-free scheduling path
(:meth:`~repro.sim.kernel.Kernel.schedule_raw`): instead of taking an
:class:`~repro.sim.kernel.EventHandle` per arm, a timer holds the bare
pooled event record plus the generation it was issued under, and
cancels by flagging the record directly.  A generation mismatch means
the record was recycled for someone else's event — i.e. this timer's
firing already happened — so the reference is simply dropped.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import SimulationError
from repro.core.types import Seconds
from repro.sim.kernel import Kernel, _Event

#: Callback invoked when a timer fires.  Receives the fire time.
TimerCallback = Callable[[Seconds], None]


class RestartableTimer:
    """A one-shot timer that can be re-armed or rescheduled.

    Used by the refresh scheduler: each poll computes a new TTR and the
    timer is re-armed for ``now + ttr``.  Mutual-consistency triggered
    polls may also *pull in* the timer to an earlier instant.
    """

    __slots__ = ("_kernel", "_callback", "_label", "_event", "_generation")

    def __init__(self, kernel: Kernel, callback: TimerCallback, *, label: str = "") -> None:
        self._kernel = kernel
        self._callback = callback
        self._label = label
        self._event: Optional[_Event] = None
        self._generation = 0

    @property
    def armed(self) -> bool:
        """True if the timer is currently waiting to fire."""
        event = self._event
        return (
            event is not None
            and event.generation == self._generation
            and not event.fired
            and not event.cancelled
        )

    @property
    def next_fire_time(self) -> Optional[Seconds]:
        """The absolute time of the next firing, or None if unarmed."""
        event = self._event
        if (
            event is not None
            and event.generation == self._generation
            and not event.fired
            and not event.cancelled
        ):
            return event.time
        return None

    def arm_at(self, when: Seconds) -> None:
        """Arm (or re-arm) the timer to fire at absolute time ``when``."""
        event = self._event
        if (
            event is not None
            and event.generation == self._generation
            and not event.fired
            and not event.cancelled
        ):
            event.cancelled = True
        event = self._kernel.schedule_raw(when, self._fire, self._label)
        self._event = event
        self._generation = event.generation

    def arm_after(self, delay: Seconds) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.arm_at(self._kernel.now() + delay)

    def pull_in_to(self, when: Seconds) -> bool:
        """Move the firing earlier, to ``when``, if it is currently later.

        Returns True if the timer was moved.  A timer that is unarmed is
        simply armed at ``when``.  Never pushes a timer later.
        """
        current = self.next_fire_time
        if current is not None and current <= when:
            return False
        self.arm_at(when)
        return True

    def disarm(self) -> None:
        """Cancel any pending firing.  Safe to call when unarmed."""
        event = self._event
        if event is not None:
            if (
                event.generation == self._generation
                and not event.fired
                and not event.cancelled
            ):
                event.cancelled = True
            self._event = None

    def _fire(self, kernel: Kernel) -> None:
        self._event = None
        self._callback(kernel.now())

    def __repr__(self) -> str:
        return (
            f"RestartableTimer(label={self._label!r}, armed={self.armed}, "
            f"next={self.next_fire_time})"
        )


class PeriodicTimer:
    """A fixed-interval repeating timer (the paper's baseline poller).

    Fires first at ``start + period`` (or at ``start`` when
    ``fire_immediately`` is set), then every ``period`` seconds until
    stopped or until ``stop_after`` is reached.
    """

    __slots__ = (
        "_kernel",
        "_period",
        "_callback",
        "_stop_after",
        "_label",
        "_event",
        "_generation",
        "_fire_count",
        "_stopped",
    )

    def __init__(
        self,
        kernel: Kernel,
        period: Seconds,
        callback: TimerCallback,
        *,
        fire_immediately: bool = False,
        stop_after: Optional[Seconds] = None,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if stop_after is not None and stop_after < kernel.now():
            raise SimulationError(
                f"stop_after={stop_after} precedes current time {kernel.now()}"
            )
        self._kernel = kernel
        self._period = period
        self._callback = callback
        self._stop_after = stop_after
        self._label = label
        self._event: Optional[_Event] = None
        self._generation = 0
        self._fire_count = 0
        self._stopped = False
        first = kernel.now() if fire_immediately else kernel.now() + period
        self._schedule(first)

    @property
    def period(self) -> Seconds:
        return self._period

    @property
    def fire_count(self) -> int:
        return self._fire_count

    @property
    def running(self) -> bool:
        return not self._stopped and self._event is not None

    def stop(self) -> None:
        """Stop the timer permanently."""
        self._stopped = True
        event = self._event
        if event is not None:
            if (
                event.generation == self._generation
                and not event.fired
                and not event.cancelled
            ):
                event.cancelled = True
            self._event = None

    def _schedule(self, when: Seconds) -> None:
        if self._stop_after is not None and when > self._stop_after:
            self._event = None
            return
        event = self._kernel.schedule_raw(when, self._fire, self._label)
        self._event = event
        self._generation = event.generation

    def _fire(self, kernel: Kernel) -> None:
        self._event = None
        if self._stopped:
            return
        self._fire_count += 1
        self._callback(kernel.now())
        if not self._stopped:
            self._schedule(kernel.now() + self._period)

    def __repr__(self) -> str:
        return (
            f"PeriodicTimer(period={self._period}, fired={self._fire_count}, "
            f"running={self.running})"
        )
