"""Timer helpers built on the kernel.

The proxy refreshers are driven by *rescheduleable* one-shot timers: a
TTR expires, the policy computes the next TTR, and the timer is re-armed.
``RestartableTimer`` encapsulates that pattern; ``PeriodicTimer`` covers
fixed-interval polling (the paper's baseline approach).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import SimulationError
from repro.core.types import Seconds
from repro.sim.kernel import EventHandle, Kernel

#: Callback invoked when a timer fires.  Receives the fire time.
TimerCallback = Callable[[Seconds], None]


class RestartableTimer:
    """A one-shot timer that can be re-armed or rescheduled.

    Used by the refresh scheduler: each poll computes a new TTR and the
    timer is re-armed for ``now + ttr``.  Mutual-consistency triggered
    polls may also *pull in* the timer to an earlier instant.
    """

    __slots__ = ("_kernel", "_callback", "_label", "_handle")

    def __init__(self, kernel: Kernel, callback: TimerCallback, *, label: str = "") -> None:
        self._kernel = kernel
        self._callback = callback
        self._label = label
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True if the timer is currently waiting to fire."""
        return self._handle is not None and self._handle.pending

    @property
    def next_fire_time(self) -> Optional[Seconds]:
        """The absolute time of the next firing, or None if unarmed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def arm_at(self, when: Seconds) -> None:
        """Arm (or re-arm) the timer to fire at absolute time ``when``."""
        self.disarm()
        self._handle = self._kernel.schedule_at(when, self._fire, label=self._label)

    def arm_after(self, delay: Seconds) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.arm_at(self._kernel.now() + delay)

    def pull_in_to(self, when: Seconds) -> bool:
        """Move the firing earlier, to ``when``, if it is currently later.

        Returns True if the timer was moved.  A timer that is unarmed is
        simply armed at ``when``.  Never pushes a timer later.
        """
        current = self.next_fire_time
        if current is not None and current <= when:
            return False
        self.arm_at(when)
        return True

    def disarm(self) -> None:
        """Cancel any pending firing.  Safe to call when unarmed."""
        if self._handle is not None:
            self._handle.cancel_if_pending()
            self._handle = None

    def _fire(self, kernel: Kernel) -> None:
        self._handle = None
        self._callback(kernel.now())

    def __repr__(self) -> str:
        return (
            f"RestartableTimer(label={self._label!r}, armed={self.armed}, "
            f"next={self.next_fire_time})"
        )


class PeriodicTimer:
    """A fixed-interval repeating timer (the paper's baseline poller).

    Fires first at ``start + period`` (or at ``start`` when
    ``fire_immediately`` is set), then every ``period`` seconds until
    stopped or until ``stop_after`` is reached.
    """

    __slots__ = (
        "_kernel",
        "_period",
        "_callback",
        "_stop_after",
        "_label",
        "_handle",
        "_fire_count",
        "_stopped",
    )

    def __init__(
        self,
        kernel: Kernel,
        period: Seconds,
        callback: TimerCallback,
        *,
        fire_immediately: bool = False,
        stop_after: Optional[Seconds] = None,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if stop_after is not None and stop_after < kernel.now():
            raise SimulationError(
                f"stop_after={stop_after} precedes current time {kernel.now()}"
            )
        self._kernel = kernel
        self._period = period
        self._callback = callback
        self._stop_after = stop_after
        self._label = label
        self._handle: Optional[EventHandle] = None
        self._fire_count = 0
        self._stopped = False
        first = kernel.now() if fire_immediately else kernel.now() + period
        self._schedule(first)

    @property
    def period(self) -> Seconds:
        return self._period

    @property
    def fire_count(self) -> int:
        return self._fire_count

    @property
    def running(self) -> bool:
        return not self._stopped and self._handle is not None

    def stop(self) -> None:
        """Stop the timer permanently."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel_if_pending()
            self._handle = None

    def _schedule(self, when: Seconds) -> None:
        if self._stop_after is not None and when > self._stop_after:
            self._handle = None
            return
        self._handle = self._kernel.schedule_at(when, self._fire, label=self._label)

    def _fire(self, kernel: Kernel) -> None:
        self._handle = None
        if self._stopped:
            return
        self._fire_count += 1
        self._callback(kernel.now())
        if not self._stopped:
            self._schedule(kernel.now() + self._period)

    def __repr__(self) -> str:
        return (
            f"PeriodicTimer(period={self._period}, fired={self._fire_count}, "
            f"running={self.running})"
        )
