"""Analytic fast-forward through event-free intervals.

Between externally scheduled events (trace updates, client arrivals,
push notifications, failure injections) the only thing a simulation
does is fire poll timers — and a poll timer's schedule is closed-form:
the refresher's next instant is known exactly, so there is nothing to
*discover* by dispatching kernel events one at a time.  The
:class:`FastForwardEngine` exploits that:

* Every registered object's :class:`~repro.proxy.refresher.Refresher`
  is detached from its kernel timer
  (:meth:`~repro.proxy.refresher.Refresher.detach_timer`); re-arms
  become arithmetic updates queued on the engine's own scheduler —
  built through the same :func:`~repro.sim.kernel.make_scheduler` seam
  as the kernel's, and of the same kind — instead of kernel events.
  Queued polls ride pooled ``_PollEntry`` carriers: a re-arm or disarm
  eagerly cancels the carrier through the reschedule hook, and the
  scheduler's reclaim hook recycles skipped carriers into a free list.
* The main loop compares the earliest queued poll instant with the
  kernel's earliest pending event (:meth:`~repro.sim.kernel.Kernel.
  peek_next_time`).  Runs of external events dispatch through the
  batch-dispatch seam (:meth:`~repro.sim.kernel.Kernel.run_batch`) in
  one call; isolated polls advance the clock analytically
  (:meth:`~repro.sim.kernel.Kernel.advance_clock`) and issue through
  the proxy's ordinary poll path — the same code a timer callback runs.
* When an idle run is provably closed-form — a constant-TTR policy
  (``policy.idle_fixed_ttr()``), origin-attached, origin unchanged
  since the cached snapshot, no observers, no event log, and no other
  poll or event due inside the window — the whole run of 304 polls
  collapses into bulk bookkeeping: ``n`` cache fetch records, counter
  adds, and one re-arm, skipping request/response construction
  entirely.

Observable histories are identical to the step-by-step kernel: per-poll
fetch logs (times, versions, reasons), proxy/origin/network counters,
policy state, and coordinator-visible next/previous poll instants all
match byte for byte — pinned by the equivalence suite in
``tests/test_fastforward.py``.  Two deliberate exceptions: kernel
``events_processed`` counts only *dispatched* events (fast-forwarded
polls never become events), and at exactly coincident timestamps
external events dispatch before fast-forwarded polls, whereas the step
kernel orders them by scheduling sequence.  Coincidences have measure
zero for the continuous-time workloads this engine targets.

The engine requires synchronous (zero-latency, zero-jitter) links:
polls must complete inline for an analytic advance to preserve event
order around in-flight responses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.errors import SimulationError, UnknownObjectError
from repro.core.events import PollReason
from repro.core.types import Seconds
from repro.proxy.proxy import ProxyCache
from repro.proxy.refresher import Refresher
from repro.server.origin import OriginServer
from repro.sim.kernel import Kernel, Scheduler, make_scheduler


class _PollEntry:
    """Scheduler carrier for one queued poll instant.

    The engine's analogue of the kernel's pooled ``_Event`` record:
    entries are keyed ``(time, sequence)`` on the scheduler (sequence
    mirrors FIFO arm order, so equal-time polls fire in the order the
    step-by-step kernel would fire them), cancelled eagerly when the
    refresher re-arms or disarms, and recycled through a free list once
    consumed or reclaimed.
    """

    __slots__ = ("refresher", "cancelled")

    def __init__(self, refresher: Refresher) -> None:
        self.refresher = refresher
        self.cancelled = False

#: Counter name for TTR-expiry polls (mirrors the proxy's per-reason
#: poll counters without reaching into its private name table).
_TTR_COUNTER = f"polls_{PollReason.TTR_EXPIRED.value}"
_304_COUNTER = "responses_304"


class FastForwardEngine:
    """Runs a simulation to its horizon without dispatching idle timers.

    Args:
        kernel: The simulation kernel (shared with every proxy).
        proxies: The proxies whose refreshers the engine takes over —
            typically every registered node of a topology tree.  Each
            must poll over a synchronous link.

    Use as a drop-in replacement for ``kernel.run(until=horizon)``::

        engine = FastForwardEngine(kernel, proxies)
        try:
            engine.run(horizon)
        finally:
            engine.close()

    :meth:`close` reattaches every refresher to its kernel timer, so
    post-run introspection (and any further stepping) behaves exactly
    as after a plain run.
    """

    __slots__ = (
        "_kernel",
        "_scheduler",
        "_current",
        "_free",
        "_sequence",
        "_refreshers",
        "_proxy_of",
        "_closed",
        "bulk_polls",
    )

    def __init__(self, kernel: Kernel, proxies: Sequence[ProxyCache]) -> None:
        self._kernel = kernel
        self._free: List[_PollEntry] = []
        self._scheduler: Scheduler[_PollEntry] = make_scheduler(
            kernel.scheduler_kind, on_reclaim=self._free.append
        )
        #: The live carrier per armed refresher, for eager cancellation.
        self._current: Dict[Refresher, _PollEntry] = {}
        self._sequence = 0
        self._refreshers: List[Refresher] = []
        self._proxy_of: Dict[Refresher, ProxyCache] = {}
        self._closed = False
        #: Idle polls collapsed by the closed-form tier (introspection).
        self.bulk_polls = 0
        for proxy in proxies:
            if not proxy.network.synchronous:
                raise SimulationError(
                    f"fast-forward requires synchronous links; proxy "
                    f"{proxy.name!r} polls over latency "
                    f"{proxy.network.latency.one_way}"
                )
            for object_id in proxy.registered_objects():
                refresher = proxy.refresher_for(object_id)
                when = refresher.detach_timer(self._on_reschedule)
                self._refreshers.append(refresher)
                self._proxy_of[refresher] = proxy
                if when is not None:
                    self._push(when, refresher)

    # ------------------------------------------------------------------
    # Schedule bookkeeping
    # ------------------------------------------------------------------
    def _push(self, when: Seconds, refresher: Refresher) -> None:
        free = self._free
        if free:
            entry = free.pop()
            entry.refresher = refresher
            entry.cancelled = False
        else:
            entry = _PollEntry(refresher)
        self._current[refresher] = entry
        self._scheduler.push(when, self._sequence, entry)
        self._sequence += 1

    def _on_reschedule(self, refresher: Refresher, when: Optional[Seconds]) -> None:
        """Mirror a detached re-arm (or, with ``when=None``, a disarm).

        The superseded carrier is cancelled eagerly and reclaimed by the
        scheduler when it would have surfaced, exactly as a
        ``RestartableTimer.arm_at`` flags its old kernel event.
        """
        stale = self._current.pop(refresher, None)
        if stale is not None:
            stale.cancelled = True
        if when is not None:
            self._push(when, refresher)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Seconds) -> None:
        """Advance the simulation to ``until``.

        Equivalent to ``kernel.run(until=until)`` up to the documented
        event-count / tie-order exceptions; the clock finishes exactly
        at ``until``.
        """
        if self._closed:
            raise SimulationError("fast-forward engine is closed")
        kernel = self._kernel
        if until < kernel.now():
            raise SimulationError(
                f"cannot fast-forward to t={until}, already at t={kernel.now()}"
            )
        scheduler = self._scheduler
        while True:
            head = scheduler.peek()
            t_poll = head[0] if head is not None else None
            bound = until if (t_poll is None or t_poll > until) else t_poll
            t_ext = kernel.peek_next_time()
            if t_ext is not None and t_ext <= bound:
                # External events first (they were scheduled before any
                # timer re-arm at the same instant); one batch call
                # drains the whole run up to the next poll, including
                # events its own callbacks schedule inside the window.
                kernel.run_batch(bound)
                continue
            if t_poll is None or t_poll > until:
                break
            entry = scheduler.pop()
            assert entry is not None
            time, _sequence, carrier = entry
            refresher = carrier.refresher
            # A surfaced carrier is never cancelled, so it is exactly
            # the refresher's current one; consume and recycle it
            # before the poll re-arms (the re-arm reuses the carrier).
            del self._current[refresher]
            self._free.append(carrier)
            head = scheduler.peek()
            # Bulk may cover polls up to the horizon inclusively, but
            # must stop strictly BEFORE the next external event or the
            # next queued poll: a poll exactly at the external event's
            # instant fires after it in the step kernel (pre-scheduled
            # events carry lower sequence numbers) and may observe the
            # update it delivers.
            before = t_ext
            if head is not None and (before is None or head[0] < before):
                before = head[0]
            if not self._try_bulk(refresher, time, until, before):
                kernel.advance_clock(time)
                refresher.fire_expired()
        if kernel.now() < until:
            kernel.advance_clock(until)

    def _try_bulk(
        self,
        refresher: Refresher,
        time: Seconds,
        until: Seconds,
        before: Optional[Seconds],
    ) -> bool:
        """Collapse a run of idle polls in ``[time, until]``.

        ``before`` is an *exclusive* cap — the next external event or
        queued poll; a poll exactly at that instant must go through the
        ordinary path so it observes whatever fires there first.
        Returns True when the run was applied analytically.  Legal only
        when every poll in the window is provably an unchanged-origin
        304 with a constant re-arm: the effects then commute with any
        other node's polls inside the window, so order need not be
        preserved poll by poll.
        """
        if refresher.stopped:
            return False

        def fits(when: Seconds) -> bool:
            return when <= until and (before is None or when < before)

        ttr = refresher.policy.idle_fixed_ttr()
        # At least two polls must fit for bulk to beat the plain path.
        if ttr is None or not fits(time + ttr):
            return False
        proxy = self._proxy_of[refresher]
        if proxy.observer_count or proxy.event_logging:
            return False
        if proxy.cache.capacity is not None:
            # Bounded caches touch eviction bookkeeping on every poll's
            # lookup; collapsing polls would change victim selection.
            return False
        object_id = refresher.object_id
        server = proxy.server_for(object_id)
        if not isinstance(server, OriginServer):
            # A parent proxy's cache can change from its own polls
            # inside the window; only origin state is pinned by t_ext.
            return False
        entry = proxy.entry_or_none(object_id)
        snapshot = entry.snapshot if entry is not None else None
        if entry is None or snapshot is None:
            return False
        try:
            obj = server.get_object(object_id)
        except UnknownObjectError:
            return False
        if obj.current_version != snapshot.version:
            # The next poll would fetch (200) — run it step by step.
            return False
        # Every poll in the window is a 304 of `snapshot`.  Times
        # iterate as t += ttr (not time + k*ttr): the step-by-step
        # kernel re-arms at now + ttr each poll, and float addition must
        # accumulate identically for byte-identical fetch logs.
        polls = 0
        t = time
        while True:
            entry.record_fetch(
                t, snapshot, modified=False, reason=PollReason.TTR_EXPIRED
            )
            polls += 1
            nxt = t + ttr
            if not fits(nxt):
                break
            t = nxt
        self._kernel.advance_clock(t)
        proxy.counters.increment("polls", polls)
        proxy.counters.increment(_TTR_COUNTER, polls)
        proxy.network.record_synthetic_exchanges(polls)
        server.counters.increment("requests", polls)
        server.counters.increment(_304_COUNTER, polls)
        refresher.apply_idle_polls(t, t + ttr)
        self.bulk_polls += polls
        return True

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Reattach every refresher to its kernel timer. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for refresher in self._refreshers:
            refresher.reattach_timer()

    def __repr__(self) -> str:
        return (
            f"FastForwardEngine(refreshers={len(self._refreshers)}, "
            f"queued={self._scheduler.pending_count()}, "
            f"bulk_polls={self.bulk_polls})"
        )
