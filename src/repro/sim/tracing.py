"""Structured event log.

Components append typed event records (from :mod:`repro.core.events`)
to an :class:`EventLog`.  Experiments then query the log to build the
time series behind Figures 4, 6 and 8 and to cross-check the metric
collectors.  The log can be disabled (``enabled=False``) for large
benchmark sweeps where only aggregate counters are needed.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Type, TypeVar, Union

from repro.core.events import (
    GenericEvent,
    PollEvent,
    TTRChangeEvent,
    UpdateAppliedEvent,
    ViolationEvent,
)
from repro.core.types import ObjectId, Seconds

Event = Union[PollEvent, ViolationEvent, TTRChangeEvent, UpdateAppliedEvent, GenericEvent]
E = TypeVar("E", PollEvent, ViolationEvent, TTRChangeEvent, UpdateAppliedEvent, GenericEvent)


class EventLog:
    """An append-only, time-ordered log of simulation events."""

    __slots__ = ("_events", "_enabled")

    def __init__(self, *, enabled: bool = True) -> None:
        self._events: List[Event] = []
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    def record(self, event: Event) -> None:
        """Append an event.  No-op when the log is disabled."""
        if not self._enabled:
            return
        if self._events and event.time < self._events[-1].time:
            # Events must arrive in simulation order; a violation here is
            # a component bug worth failing loudly on.
            raise ValueError(
                f"event at t={event.time} recorded after t={self._events[-1].time}"
            )
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_type(self, event_type: Type[E]) -> List[E]:
        """Return all events of the given type, in time order."""
        return [e for e in self._events if isinstance(e, event_type)]

    def for_object(self, object_id: ObjectId) -> List[Event]:
        """Return all events that carry the given object id."""
        return [
            e
            for e in self._events
            if getattr(e, "object_id", None) == object_id
        ]

    def between(self, start: Seconds, end: Seconds) -> List[Event]:
        """Return events with start <= time < end."""
        return [e for e in self._events if start <= e.time < end]

    def where(self, predicate: Callable[[Event], bool]) -> List[Event]:
        """Return events matching an arbitrary predicate."""
        return [e for e in self._events if predicate(e)]

    def last(self, event_type: Optional[Type[E]] = None) -> Optional[Event]:
        """Return the most recent event (optionally of a given type)."""
        if event_type is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if isinstance(event, event_type):
                return event
        return None

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def __repr__(self) -> str:
        return f"EventLog(n={len(self._events)}, enabled={self._enabled})"
