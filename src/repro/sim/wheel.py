"""Calendar-queue timer wheel: the kernel's default scheduler.

A single-level timer wheel with a sorted spill for far-future events.
Time is divided into fixed-width slots (``slot = int(time * scale)``
with the width a power of two, so the scaling multiply is exact and the
slot map is monotone); each slot hashes onto one of ``nbuckets``
unsorted buckets.  Scheduling an event appends to its bucket — O(1) —
and cancellation is a flag write, reclaimed lazily.  Dispatch drains
one slot at a time into a sorted *ready list* and consumes it with a
moving index, so within-slot order is exact ``(time, sequence)`` —
bit-identical to the reference binary heap, same-tick tie-breaks
included.

Three-tier layout, by distance from the cursor (the slot currently
being consumed):

* ``slot <= cursor`` — straight into the ready list by bisection (rare:
  an event scheduled into the slot being drained);
* ``cursor < slot < cursor + nbuckets`` — bucket append (the common
  case: every TTR re-arm within the wheel's horizon);
* beyond the horizon — a ``heapq`` spill, merged slot-by-slot as the
  cursor reaches it, so far-future events degrade gracefully to the
  heap's O(log n) instead of aliasing around the wheel.

The wheel adapts its slot width to the workload, deterministically —
resizes are pure functions of the push/pop sequence, never of wall
time, so replays stay bit-identical.  A drained slot holding more than
``_NARROW_LIMIT`` entries narrows the width (splitting clustered
events across slots); scans that cross many empty slots per dispatched
event accumulate *scan debt* and widen it (coalescing a sparse
horizon).  Either rebuild is O(pending) and amortizes away.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from heapq import heappush
from typing import Callable, Generic, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.core.types import Seconds
from repro.sim.kernel import Cancellable, _ItemT

#: Buckets on the wheel (power of two; the slot→bucket map is a mask).
_NBUCKETS = 1024

#: Initial slot width in seconds (a power of two).  Deliberately huge:
#: until a slot crowds past ``_NARROW_LIMIT`` live entries the wheel is
#: effectively a single sorted ready vector — C-speed ``insort`` at the
#: tail, index pop at the front — which beats bucket hopping for the
#: small pending sets typical of one proxy tree.  Crowding narrows it
#: into a real calendar queue.
_INITIAL_WIDTH = 4096.0

#: Live (unconsumed) ready entries beyond which the slot width narrows.
_NARROW_LIMIT = 2048

#: Consumed prefix length that triggers ready-list compaction.
_COMPACT_LIMIT = 4096

#: Accumulated empty-slot scan debt that triggers widening.
_WIDEN_DEBT = 2048

#: Empty slots a drain may cross "for free" before accruing debt.
_FREE_SCAN = 4

#: Target entries per slot after a narrowing rebuild.
_NARROW_TARGET = 256


class TimerWheelScheduler(Generic[_ItemT]):
    """Amortized O(1) schedule/cancel calendar queue.

    Drop-in :class:`repro.sim.kernel.Scheduler` implementation; see the
    module docstring for the layout and the equivalence guarantee.
    """

    __slots__ = (
        "_ready",
        "_pos",
        "_buckets",
        "_bucket_count",
        "_overflow",
        "_cursor",
        "_scale",
        "_floor",
        "_scan_debt",
        "_narrow_limit",
        "_reclaim",
    )

    def __init__(
        self, on_reclaim: Optional[Callable[[_ItemT], None]] = None
    ) -> None:
        #: Entries of the slot at ``_cursor`` (plus late pushes behind
        #: it), ascending; ``_pos`` is the consumption index.
        self._ready: List[Tuple[Seconds, int, _ItemT]] = []
        self._pos = 0
        self._buckets: List[List[Tuple[Seconds, int, _ItemT]]] = [
            [] for _ in range(_NBUCKETS)
        ]
        self._bucket_count = 0
        self._overflow: List[Tuple[Seconds, int, _ItemT]] = []
        self._cursor = -1
        #: 1 / slot width; a power of two, so ``time * scale`` is exact.
        self._scale = 1.0 / _INITIAL_WIDTH
        #: Lower bound on every queued time (last pop / advance target);
        #: rebuilds place the new cursor just below its slot.
        self._floor: Seconds = 0.0
        self._scan_debt = 0
        self._narrow_limit = _NARROW_LIMIT
        self._reclaim = on_reclaim

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def push(self, when: Seconds, sequence: int, item: _ItemT) -> None:
        entry = (when, sequence, item)
        slot = int(when * self._scale)
        cursor = self._cursor
        if slot <= cursor:
            # Push into the slot being consumed (the common case while
            # the width is wide): keep the ready list sorted so it
            # still pops in exact order.  ``lo=pos`` skips the
            # consumed prefix, and tail inserts cost one bisect.
            pos = self._pos
            ready = self._ready
            insort(ready, entry, pos)
            if len(ready) - pos > self._narrow_limit:
                # Crowding may be an illusion: cancel churn (timer
                # re-arms) leaves flagged entries ahead of the
                # consumption index.  Purge before deciding to narrow,
                # or churn narrows the wheel into overflow thrash.
                self._purge_ready()
                if len(ready) > self._narrow_limit:
                    self._narrow(ready)
        elif slot - cursor < _NBUCKETS:
            self._buckets[slot & (_NBUCKETS - 1)].append(entry)
            self._bucket_count += 1
        else:
            heappush(self._overflow, entry)

    def peek(self) -> Optional[Tuple[Seconds, int, _ItemT]]:
        reclaim = self._reclaim
        while True:
            ready = self._ready
            pos = self._pos
            n = len(ready)
            while pos < n:
                entry = ready[pos]
                if entry[2].cancelled:
                    pos += 1
                    if reclaim is not None:
                        reclaim(entry[2])
                    continue
                self._pos = pos
                return entry
            self._pos = pos
            if not self._refill():
                return None

    def pop(
        self, until: Optional[Seconds] = None
    ) -> Optional[Tuple[Seconds, int, _ItemT]]:
        # Self-contained (not peek + consume): this is the kernel's
        # per-event path, so it spends its call budget on at most one
        # _refill, not a method-call chain.
        reclaim = self._reclaim
        ready = self._ready
        pos = self._pos
        while True:
            n = len(ready)
            while pos < n:
                entry = ready[pos]
                item = entry[2]
                if item.cancelled:
                    pos += 1
                    if reclaim is not None:
                        reclaim(item)
                    continue
                if until is not None and entry[0] > until:
                    self._pos = pos
                    return None
                pos += 1
                if pos >= _COMPACT_LIMIT:
                    # Shed the consumed prefix so a long-lived slot
                    # (huge width, steady churn) stays bounded.
                    del ready[:pos]
                    pos = 0
                self._pos = pos
                self._floor = entry[0]
                return entry
            self._pos = pos
            if not self._refill():
                return None
            ready = self._ready
            pos = self._pos

    def advance(self, to: Seconds) -> None:
        """Jump the cursor to ``to``'s slot without scanning up to it.

        The fast-forward seam: the kernel has already verified nothing
        pending precedes ``to``, so every slot in between holds only
        cancelled leftovers (reclaimed here) — the wheel skips the
        empty-slot walk entirely.
        """
        self._floor = to
        slot = int(to * self._scale)
        if slot <= self._cursor:
            return
        ready = self._ready
        reclaim = self._reclaim
        for index in range(self._pos, len(ready)):
            item = ready[index][2]
            if not item.cancelled:
                raise SimulationError(
                    f"cannot advance wheel to t={to}: entry pending at "
                    f"t={ready[index][0]}"
                )
            if reclaim is not None:
                reclaim(item)
        ready.clear()
        self._pos = 0
        # Land just *before* the slot so the next drain scans it: an
        # entry exactly at ``to`` may still be pending in its bucket.
        self._cursor = slot - 1

    def pending_count(self) -> int:
        count = sum(
            1 for entry in self._ready[self._pos :] if not entry[2].cancelled
        )
        for bucket in self._buckets:
            count += sum(1 for entry in bucket if not entry[2].cancelled)
        count += sum(1 for entry in self._overflow if not entry[2].cancelled)
        return count

    # ------------------------------------------------------------------
    # Slot draining
    # ------------------------------------------------------------------
    def _refill(self) -> bool:
        """Advance the cursor to the next populated slot; fill ready.

        Returns False when the wheel is empty.  Merges overflow entries
        whose slot has come within reach, so heap-spilled events fire
        in exactly the order the reference heap would fire them.
        """
        overflow = self._overflow
        scale = self._scale
        if self._bucket_count == 0:
            if not overflow:
                return False
            # Jump straight to the spill's head slot: every bucket is
            # empty, so no scan is needed.  (Never retreat: a stale
            # cancelled entry behind the cursor drains at the cursor.)
            slot = int(overflow[0][0] * scale)
            ready = self._ready
            ready.clear()
            self._pos = 0
            heappop = heapq.heappop
            while overflow and int(overflow[0][0] * scale) <= slot:
                ready.append(heappop(overflow))
            if slot > self._cursor:
                self._cursor = slot
            if len(ready) > self._narrow_limit:
                self._purge_ready()
                if len(ready) > self._narrow_limit:
                    self._narrow(ready)
            return True
        buckets = self._buckets
        mask = _NBUCKETS - 1
        overflow_slot = int(overflow[0][0] * scale) if overflow else -1
        slot = self._cursor
        stepped = 0
        while True:
            slot += 1
            if 0 <= overflow_slot <= slot:
                # The spill's head comes due at (or before) this slot:
                # merge it with whatever the slot's bucket holds.  The
                # scan position never retreats — spill entries behind it
                # are cancelled leftovers and drain here harmlessly.
                bucket = buckets[slot & mask]
                drained = []
                heappop = heapq.heappop
                while overflow and int(overflow[0][0] * scale) <= slot:
                    drained.append(heappop(overflow))
                if bucket:
                    self._bucket_count -= len(bucket)
                    drained.extend(bucket)
                    drained.sort()
                    bucket.clear()
                old = self._ready
                old.clear()
                self._ready = drained
                break
            bucket = buckets[slot & mask]
            if bucket:
                self._bucket_count -= len(bucket)
                bucket.sort()
                # Swap: the drained bucket becomes the ready list and
                # the exhausted ready list is recycled as the bucket.
                old = self._ready
                old.clear()
                buckets[slot & mask] = old
                self._ready = bucket
                break
            stepped += 1
        self._pos = 0
        self._cursor = slot
        if stepped:
            self._note_scan(stepped)
        if len(self._ready) > self._narrow_limit:
            self._purge_ready()
            if len(self._ready) > self._narrow_limit:
                self._narrow(self._ready)
        return True

    def _purge_ready(self) -> None:
        """Shed the consumed prefix and cancelled entries from ready.

        In place (``ready[:] = live``) so aliases held by ``pop`` stay
        valid; resets the consumption index to the front.
        """
        ready = self._ready
        reclaim = self._reclaim
        live = []
        for index in range(self._pos, len(ready)):
            entry = ready[index]
            if entry[2].cancelled:
                if reclaim is not None:
                    reclaim(entry[2])
            else:
                live.append(entry)
        ready[:] = live
        self._pos = 0

    # ------------------------------------------------------------------
    # Deterministic adaptation
    # ------------------------------------------------------------------
    def _note_scan(self, stepped: int) -> None:
        """Accumulate empty-slot scan debt; widen when it piles up."""
        debt = self._scan_debt + stepped - _FREE_SCAN
        if debt < 0:
            debt = 0
        self._scan_debt = debt
        if debt > _WIDEN_DEBT:
            # Slots are mostly empty: widen ×8 to shorten the scans.
            self._rebuild(self._scale * 0.125)

    def _narrow(self, ready: List[Tuple[Seconds, int, _ItemT]]) -> None:
        """Split an overcrowded slot by shrinking the slot width."""
        pos = self._pos
        count = len(ready) - pos
        first = ready[pos][0]
        last = ready[-1][0]
        span = last - first
        if span <= 0.0:
            # A coincident-timestamp cluster no width can split; back
            # off so each retry costs geometrically less often.
            self._narrow_limit *= 2
            return
        wanted = count / (_NARROW_TARGET * span)
        doublings = max(1, math.ceil(math.log2(wanted / self._scale)))
        new_scale = self._scale * (2.0**doublings)
        if int(first * new_scale) == int(last * new_scale):
            self._narrow_limit *= 2
            return
        self._narrow_limit = _NARROW_LIMIT
        self._rebuild(new_scale)

    def _rebuild(self, scale: float) -> None:
        """Re-place every queued entry under a new slot width."""
        entries = self._ready[self._pos :]
        for bucket in self._buckets:
            entries.extend(bucket)
            bucket.clear()
        entries.extend(self._overflow)
        self._overflow.clear()
        self._ready.clear()
        self._pos = 0
        self._bucket_count = 0
        self._scan_debt = 0
        self._scale = scale
        # Just below the floor's slot: entries at the floor itself may
        # still be pending, so their slot must remain scannable.
        self._cursor = int(self._floor * scale) - 1
        reclaim = self._reclaim
        for entry in entries:
            item = entry[2]
            if item.cancelled:
                if reclaim is not None:
                    reclaim(item)
                continue
            self.push(entry[0], entry[1], item)

    def __repr__(self) -> str:
        return (
            f"TimerWheelScheduler(pending={self.pending_count()}, "
            f"width={1.0 / self._scale}, cursor={self._cursor})"
        )


__all__ = ["TimerWheelScheduler", "Cancellable"]
