"""Discrete-event simulation kernel.

A classic priority-queue DES: events are ``(time, sequence, record)``
entries on a pluggable :class:`Scheduler`; the kernel pops the earliest
event, advances the clock to its timestamp, and invokes the callback.
Ties are broken by the monotonically increasing sequence number (FIFO
insertion order), which makes runs deterministic for a given seed and
schedule.

Hot-path design (every simulated poll passes through here several
times):

* Scheduler entries are plain tuples, so ordering is resolved by
  C-level tuple comparison on ``(time, sequence)`` — no rich-comparison
  methods on event objects ever run, and the sequence tiebreaker
  guarantees the payload in slot 2 is never compared.
* The mutable per-event state lives in a ``__slots__`` record
  (:class:`_Event`) shared between the scheduler and the
  :class:`EventHandle` returned to the caller, so cancellation needs no
  side-table lookup.
* Fired events are recycled through a free list instead of allocated
  per schedule: :meth:`Kernel.schedule_raw` reuses the record and bumps
  its ``generation`` so stale handles can tell a recycled event from
  their own.  Cancelled events are reclaimed lazily when the scheduler
  skips them.
* :meth:`Kernel._drain` binds hot attributes to locals; cancelled
  events are skipped lazily when popped.

The scheduler seam has two implementations: :class:`HeapScheduler`
(the reference ``heapq`` priority queue, kept for differential testing)
and the default :class:`repro.sim.wheel.TimerWheelScheduler` (an
amortized O(1) calendar queue).  Both dispatch in bit-identical
``(time, sequence)`` order — pinned by the hypothesis equivalence suite
in ``tests/test_scheduler_equivalence.py``.

The kernel is deliberately small — no coroutines, no channels — because
the paper's simulation only needs timers (TTR expirations and trace
updates).  The :mod:`repro.sim.process` module layers a lightweight
process abstraction on top for components that prefer that style.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Generic,
    List,
    Optional,
    Protocol,
    Tuple,
    TypeVar,
)

from repro.core.errors import SchedulingInPastError, SimulationError
from repro.core.types import Seconds

#: An event callback.  It receives the kernel so it can schedule
#: follow-up events; the current time is ``kernel.now()``.
EventCallback = Callable[["Kernel"], None]


class Cancellable(Protocol):
    """An item a :class:`Scheduler` can lazily skip once flagged."""

    cancelled: bool


_ItemT = TypeVar("_ItemT", bound=Cancellable)

#: A scheduler entry: (time, sequence, item).  Comparison never reaches
#: the item because sequence numbers are unique.
SchedulerEntry = Tuple[Seconds, int, _ItemT]


class Scheduler(Protocol[_ItemT]):
    """The pluggable priority-queue seam under the kernel.

    Implementations must dispatch in exact ``(time, sequence)`` order —
    including same-tick sequence tie-breaks — so the choice of scheduler
    is unobservable to the simulation.  Cancellation is lazy: items
    flagged ``cancelled`` are skipped (and reported to the reclaim hook)
    when they would otherwise surface.
    """

    def push(self, when: Seconds, sequence: int, item: _ItemT) -> None:
        """Insert ``item`` keyed by ``(when, sequence)``."""
        ...

    def peek(self) -> Optional[Tuple[Seconds, int, _ItemT]]:
        """The earliest pending entry, or None; drops cancelled heads."""
        ...

    def pop(
        self, until: Optional[Seconds] = None
    ) -> Optional[Tuple[Seconds, int, _ItemT]]:
        """Remove and return the earliest pending entry.

        With ``until`` given, an entry later than ``until`` is left in
        place and None is returned (entries exactly at ``until`` pop).
        """
        ...

    def advance(self, to: Seconds) -> None:
        """Note an analytic clock jump through an event-free interval."""
        ...

    def pending_count(self) -> int:
        """Number of queued non-cancelled entries."""
        ...


class HeapScheduler(Generic[_ItemT]):
    """The reference scheduler: a binary heap of entry tuples.

    O(log n) push/pop via :mod:`heapq`.  Kept as the behavioral oracle
    for the timer wheel (``Kernel(scheduler="heap")``) and for
    differential tests; the wheel must match it byte for byte.
    """

    __slots__ = ("_heap", "_reclaim")

    def __init__(
        self, on_reclaim: Optional[Callable[[_ItemT], None]] = None
    ) -> None:
        self._heap: List[Tuple[Seconds, int, _ItemT]] = []
        self._reclaim = on_reclaim

    def push(self, when: Seconds, sequence: int, item: _ItemT) -> None:
        heapq.heappush(self._heap, (when, sequence, item))

    def peek(self) -> Optional[Tuple[Seconds, int, _ItemT]]:
        heap = self._heap
        reclaim = self._reclaim
        pop = heapq.heappop
        while heap:
            head = heap[0]
            if head[2].cancelled:
                pop(heap)
                if reclaim is not None:
                    reclaim(head[2])
                continue
            return head
        return None

    def pop(
        self, until: Optional[Seconds] = None
    ) -> Optional[Tuple[Seconds, int, _ItemT]]:
        head = self.peek()
        if head is None or (until is not None and head[0] > until):
            return None
        heapq.heappop(self._heap)
        return head

    def advance(self, to: Seconds) -> None:
        """Clock jumps need no bookkeeping in a heap."""

    def pending_count(self) -> int:
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    def __repr__(self) -> str:
        return f"HeapScheduler(queued={len(self._heap)})"


def make_scheduler(
    kind: str, on_reclaim: Optional[Callable[[_ItemT], None]] = None
) -> "Scheduler[_ItemT]":
    """Build a scheduler by kind (``"wheel"`` or ``"heap"``)."""
    if kind == "wheel":
        from repro.sim.wheel import TimerWheelScheduler

        return TimerWheelScheduler(on_reclaim=on_reclaim)
    if kind == "heap":
        return HeapScheduler(on_reclaim=on_reclaim)
    raise ValueError(f"unknown scheduler kind {kind!r} (use 'wheel' or 'heap')")


class _Event:
    """Mutable per-event state shared by the scheduler and its handle.

    Ordering lives in the enclosing ``(time, sequence, event)`` entry
    tuple, never here — this record only carries the callback and the
    cancelled/fired flags consulted at pop time.  Records are pooled:
    ``generation`` increments each time the kernel recycles one, so a
    handle can detect that its event is long gone.
    """

    __slots__ = ("time", "callback", "label", "cancelled", "fired", "generation")

    def __init__(self, time: Seconds, callback: EventCallback, label: str) -> None:
        self.time = time
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False
        self.generation = 0


class EventHandle:
    """A handle to a scheduled event, usable to cancel it.

    Cancellation is lazy: the scheduler entry is flagged and skipped
    when it reaches the head of the queue.  Cancelling an already-fired
    or already-cancelled event is an error (it usually indicates a
    bookkeeping bug in the caller), surfaced as ``SimulationError``.

    The handle snapshots the event's time/label and generation at
    creation: once the underlying record is recycled for a later event
    (its generation moved on), the handle keeps reporting its own
    event's fate instead of the stranger's.
    """

    __slots__ = ("_event", "_generation", "_time", "_label", "_cancelled")

    def __init__(self, event: _Event) -> None:
        self._event = event
        self._generation = event.generation
        self._time = event.time
        self._label = event.label
        self._cancelled = False

    @property
    def time(self) -> Seconds:
        """The time the event is (or was) scheduled to fire."""
        return self._time

    @property
    def label(self) -> str:
        return self._label

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        if self._cancelled:
            return False
        event = self._event
        return event.generation != self._generation or event.fired

    @property
    def pending(self) -> bool:
        """True if the event is still waiting to fire."""
        if self._cancelled:
            return False
        event = self._event
        return event.generation == self._generation and not event.fired

    def cancel(self) -> None:
        """Cancel the event.  Raises ``SimulationError`` if not pending."""
        if self.fired:
            raise SimulationError(
                f"cannot cancel event {self._label!r}: already fired"
            )
        if self._cancelled:
            raise SimulationError(
                f"cannot cancel event {self._label!r}: already cancelled"
            )
        self._cancelled = True
        self._event.cancelled = True

    def cancel_if_pending(self) -> bool:
        """Cancel the event if pending; return whether it was cancelled."""
        if self.pending:
            self._cancelled = True
            self._event.cancelled = True
            return True
        return False

    def __repr__(self) -> str:
        state = (
            "cancelled" if self._cancelled else ("fired" if self.fired else "pending")
        )
        return f"EventHandle(t={self._time}, label={self._label!r}, {state})"


class Kernel:
    """The discrete-event simulation engine.

    Args:
        start_time: Initial clock value.
        scheduler: ``"wheel"`` (default — the O(1) calendar queue in
            :mod:`repro.sim.wheel`) or ``"heap"`` (the reference binary
            heap).  Dispatch order is identical; the knob exists for
            differential testing and benchmarking.

    Example:
        >>> k = Kernel()
        >>> fired = []
        >>> _ = k.schedule_at(5.0, lambda kern: fired.append(kern.now()))
        >>> k.run()
        >>> fired
        [5.0]
    """

    __slots__ = (
        "_now",
        "_scheduler",
        "_scheduler_kind",
        "_push",
        "_sequence",
        "_running",
        "_events_processed",
        "_free",
    )

    def __init__(
        self, start_time: Seconds = 0.0, *, scheduler: str = "wheel"
    ) -> None:
        if start_time < 0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        self._now: Seconds = start_time
        self._free: List[_Event] = []
        self._scheduler: Scheduler[_Event] = make_scheduler(
            scheduler, on_reclaim=self._free.append
        )
        self._scheduler_kind = scheduler
        self._push = self._scheduler.push
        self._sequence = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    def now(self) -> Seconds:
        """Current simulation time (satisfies the ``Clock`` protocol)."""
        return self._now

    @property
    def scheduler_kind(self) -> str:
        """Which scheduler implementation backs this kernel."""
        return self._scheduler_kind

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_raw(
        self, when: Seconds, callback: EventCallback, label: str = ""
    ) -> _Event:
        """Schedule ``callback`` at ``when``; return the bare event record.

        The allocation-free inner path behind :meth:`schedule_at` and
        the timer helpers in :mod:`repro.sim.timers`: the record comes
        from the kernel's free list when one is available, and no
        :class:`EventHandle` is built.  Callers that hold the record may
        cancel it by setting ``cancelled`` while its ``generation`` is
        unchanged; anything longer-lived should take a handle instead.

        Raises:
            SchedulingInPastError: if ``when`` precedes the current time.
        """
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        free = self._free
        if free:
            event = free.pop()
            event.generation += 1
            event.time = when
            event.callback = callback
            event.label = label
            event.cancelled = False
            event.fired = False
        else:
            event = _Event(when, callback, label)
        sequence = self._sequence
        self._sequence = sequence + 1
        self._push(when, sequence, event)
        return event

    def schedule_at(
        self, when: Seconds, callback: EventCallback, *, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``when``.

        Raises:
            SchedulingInPastError: if ``when`` precedes the current time.
        """
        # Mirrors schedule_raw rather than calling it: this is the
        # public per-event entry point, and the extra frame is
        # measurable under client-arrival workloads.
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        free = self._free
        if free:
            event = free.pop()
            event.generation += 1
            event.time = when
            event.callback = callback
            event.label = label
            event.cancelled = False
            event.fired = False
        else:
            event = _Event(when, callback, label)
        sequence = self._sequence
        self._sequence = sequence + 1
        self._push(when, sequence, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: Seconds, callback: EventCallback, *, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns:
            True if an event was processed, False if the queue is empty.
        """
        return self._drain(None, 1) == 1

    def _drain(self, until: Optional[Seconds], max_events: Optional[int]) -> int:
        """Dispatch pending events in (time, sequence) order.

        The single lazy-cancel pop loop behind :meth:`step`,
        :meth:`run`, and :meth:`run_batch`: the scheduler skips
        cancelled entries, the loop stops at the first event past
        ``until`` (events exactly at ``until`` are dispatched), and the
        clock is left at the last dispatched event.  Fired records are
        released to the free list *before* their callback runs, so the
        fire→re-arm pattern reuses the same record without growing the
        pool.  Callers own the ``_running`` guard and the end-of-run
        clock policy.
        """
        processed = 0
        pop = self._scheduler.pop
        free = self._free
        try:
            while processed != max_events:
                entry = pop(until)
                if entry is None:
                    break
                event = entry[2]
                self._now = entry[0]
                event.fired = True
                callback = event.callback
                free.append(event)
                callback(self)
                processed += 1
        finally:
            # Folded in once per drain, not per event; the finally
            # keeps the count honest when a callback raises.
            self._events_processed += processed
        return processed

    def run(
        self,
        *,
        until: Optional[Seconds] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue is empty, ``until`` is reached, or
        ``max_events`` events have been processed.

        Events scheduled exactly at ``until`` are processed; the clock is
        advanced to ``until`` at the end even when the queue empties
        earlier, so time-weighted statistics cover the full horizon.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self._now}"
            )
        self._running = True
        before = self._events_processed
        processed = 0
        try:
            processed = self._drain(until, max_events)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += self._events_processed - before
        return processed

    def run_batch(
        self,
        until: Seconds,
        *,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain every pending event with time <= ``until`` in one call.

        The batch-dispatch seam behind the analytic fast-forward engine
        (:mod:`repro.sim.fastforward`): event ordering and bookkeeping
        are identical to :meth:`run`, but the clock is left at the last
        dispatched event — never finalized to ``until`` — so a caller
        can interleave dispatch batches with :meth:`advance_clock`
        jumps through intervals it has proven event-free.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError(
                "kernel is already running (re-entrant run_batch())"
            )
        if until < self._now:
            raise SimulationError(
                f"cannot run batch until t={until}, already at t={self._now}"
            )
        self._running = True
        before = self._events_processed
        processed = 0
        try:
            processed = self._drain(until, max_events)
        finally:
            self._running = False
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += self._events_processed - before
        return processed

    def peek_next_time(self) -> Optional[Seconds]:
        """Earliest pending event time, or ``None`` when the queue is empty.

        Cancelled heads are dropped as a side effect, so the returned
        time always belongs to an event that will actually fire.
        """
        entry = self._scheduler.peek()
        return entry[0] if entry is not None else None

    def advance_clock(self, to: Seconds) -> None:
        """Move the clock forward through an event-free interval.

        The analytic fast-forward seam: the caller asserts nothing
        observable happens in ``(now, to)``.  Refuses to run backwards
        or to jump past a pending event (events exactly at ``to`` may
        stay pending — they are the next thing dispatched).
        """
        if to < self._now:
            raise SimulationError(
                f"cannot advance clock to t={to}, already at t={self._now}"
            )
        pending = self.peek_next_time()
        if pending is not None and pending < to:
            raise SimulationError(
                f"cannot advance clock to t={to}: event pending at t={pending}"
            )
        self._now = to
        self._scheduler.advance(to)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._scheduler.pending_count()

    @property
    def events_processed(self) -> int:
        """Total events processed over the kernel's lifetime."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"Kernel(now={self._now}, pending={self.pending_count}, "
            f"processed={self._events_processed})"
        )


#: Process-local running total of events processed by every Kernel.run()
#: call, used by the benchmark harness to derive events/sec without
#: threading a kernel reference through each experiment's return value.
#: (Sweep points executed in worker processes accumulate into their own
#: process's total; the harness reports the main-process delta.)
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Events processed by all ``Kernel.run()`` calls in this process."""
    return _TOTAL_EVENTS
