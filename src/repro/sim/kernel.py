"""Discrete-event simulation kernel.

A classic priority-queue DES: events are ``(time, sequence, record)``
tuples on a :mod:`heapq`; the kernel pops the earliest event, advances
the clock to its timestamp, and invokes the callback.  Ties are broken
by the monotonically increasing sequence number (FIFO insertion order),
which makes runs deterministic for a given seed and schedule.

Hot-path design (every simulated poll passes through here several
times):

* Heap entries are plain tuples, so ordering is resolved by C-level
  tuple comparison on ``(time, sequence)`` — no rich-comparison methods
  on event objects ever run, and the sequence tiebreaker guarantees the
  payload in slot 2 is never compared.
* The mutable per-event state lives in a ``__slots__`` record
  (:class:`_Event`) shared between the heap and the
  :class:`EventHandle` returned to the caller, so cancellation needs no
  side-table lookup.
* :meth:`Kernel.step` and :meth:`Kernel.run` bind hot attributes to
  locals; cancelled events are skipped lazily when popped.

The kernel is deliberately small — no coroutines, no channels — because
the paper's simulation only needs timers (TTR expirations and trace
updates).  The :mod:`repro.sim.process` module layers a lightweight
process abstraction on top for components that prefer that style.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.errors import SchedulingInPastError, SimulationError
from repro.core.types import Seconds

#: An event callback.  It receives the kernel so it can schedule
#: follow-up events; the current time is ``kernel.now()``.
EventCallback = Callable[["Kernel"], None]


class _Event:
    """Mutable per-event state shared by the heap entry and its handle.

    Ordering lives in the enclosing ``(time, sequence, event)`` heap
    tuple, never here — this record only carries the callback and the
    cancelled/fired flags consulted at pop time.
    """

    __slots__ = ("time", "callback", "label", "cancelled", "fired")

    def __init__(self, time: Seconds, callback: EventCallback, label: str) -> None:
        self.time = time
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False


#: A heap entry: (time, sequence, event record).
_HeapEntry = Tuple[Seconds, int, _Event]


class EventHandle:
    """A handle to a scheduled event, usable to cancel it.

    Cancellation is lazy: the heap entry is flagged and skipped when it
    reaches the head of the queue.  Cancelling an already-fired or
    already-cancelled event is an error (it usually indicates a
    bookkeeping bug in the caller), surfaced as ``SimulationError``.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> Seconds:
        """The time the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        return self._event.fired

    @property
    def pending(self) -> bool:
        """True if the event is still waiting to fire."""
        event = self._event
        return not event.fired and not event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Raises ``SimulationError`` if not pending."""
        event = self._event
        if event.fired:
            raise SimulationError(
                f"cannot cancel event {event.label!r}: already fired"
            )
        if event.cancelled:
            raise SimulationError(
                f"cannot cancel event {event.label!r}: already cancelled"
            )
        event.cancelled = True

    def cancel_if_pending(self) -> bool:
        """Cancel the event if pending; return whether it was cancelled."""
        event = self._event
        if not event.fired and not event.cancelled:
            event.cancelled = True
            return True
        return False

    def _mark_fired(self) -> None:
        self._event.fired = True

    def __repr__(self) -> str:
        event = self._event
        state = (
            "cancelled"
            if event.cancelled
            else ("fired" if event.fired else "pending")
        )
        return f"EventHandle(t={event.time}, label={event.label!r}, {state})"


class Kernel:
    """The discrete-event simulation engine.

    Example:
        >>> k = Kernel()
        >>> fired = []
        >>> _ = k.schedule_at(5.0, lambda kern: fired.append(kern.now()))
        >>> k.run()
        >>> fired
        [5.0]
    """

    __slots__ = ("_now", "_heap", "_sequence", "_running", "_events_processed")

    def __init__(self, start_time: Seconds = 0.0) -> None:
        if start_time < 0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        self._now: Seconds = start_time
        self._heap: List[_HeapEntry] = []
        self._sequence = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    def now(self) -> Seconds:
        """Current simulation time (satisfies the ``Clock`` protocol)."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, when: Seconds, callback: EventCallback, *, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``when``.

        Raises:
            SchedulingInPastError: if ``when`` precedes the current time.
        """
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        event = _Event(when, callback, label)
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._heap, (when, sequence, event))
        return EventHandle(event)

    def schedule_after(
        self, delay: Seconds, callback: EventCallback, *, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns:
            True if an event was processed, False if the queue is empty.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _sequence, event = pop(heap)
            if event.cancelled:
                continue
            self._now = time
            event.fired = True
            self._events_processed += 1
            event.callback(self)
            return True
        return False

    def _drain(self, until: Optional[Seconds], max_events: Optional[int]) -> int:
        """Dispatch pending events in (time, sequence) order.

        The shared inner loop behind :meth:`run` and :meth:`run_batch`:
        drains cancelled heads lazily, stops at the first event past
        ``until`` (events exactly at ``until`` are dispatched), and
        leaves the clock at the last dispatched event.  Callers own the
        ``_running`` guard and the end-of-run clock policy.
        """
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if max_events is not None and processed >= max_events:
                break
            # Drop cancelled heads, then peek the next pending time.
            while heap and heap[0][2].cancelled:
                pop(heap)
            if not heap:
                break
            time, _sequence, event = heap[0]
            if until is not None and time > until:
                break
            pop(heap)
            self._now = time
            event.fired = True
            self._events_processed += 1
            event.callback(self)
            processed += 1
        return processed

    def run(
        self,
        *,
        until: Optional[Seconds] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue is empty, ``until`` is reached, or
        ``max_events`` events have been processed.

        Events scheduled exactly at ``until`` are processed; the clock is
        advanced to ``until`` at the end even when the queue empties
        earlier, so time-weighted statistics cover the full horizon.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self._now}"
            )
        self._running = True
        before = self._events_processed
        processed = 0
        try:
            processed = self._drain(until, max_events)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += self._events_processed - before
        return processed

    def run_batch(
        self,
        until: Seconds,
        *,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain every pending event with time <= ``until`` in one call.

        The batch-dispatch seam behind the analytic fast-forward engine
        (:mod:`repro.sim.fastforward`): event ordering and bookkeeping
        are identical to :meth:`run`, but the clock is left at the last
        dispatched event — never finalized to ``until`` — so a caller
        can interleave dispatch batches with :meth:`advance_clock`
        jumps through intervals it has proven event-free.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError(
                "kernel is already running (re-entrant run_batch())"
            )
        if until < self._now:
            raise SimulationError(
                f"cannot run batch until t={until}, already at t={self._now}"
            )
        self._running = True
        before = self._events_processed
        processed = 0
        try:
            processed = self._drain(until, max_events)
        finally:
            self._running = False
            global _TOTAL_EVENTS
            _TOTAL_EVENTS += self._events_processed - before
        return processed

    def peek_next_time(self) -> Optional[Seconds]:
        """Earliest pending event time, or ``None`` when the queue is empty.

        Cancelled heads are dropped as a side effect, so the returned
        time always belongs to an event that will actually fire.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][2].cancelled:
            pop(heap)
        return heap[0][0] if heap else None

    def advance_clock(self, to: Seconds) -> None:
        """Move the clock forward through an event-free interval.

        The analytic fast-forward seam: the caller asserts nothing
        observable happens in ``(now, to)``.  Refuses to run backwards
        or to jump past a pending event (events exactly at ``to`` may
        stay pending — they are the next thing dispatched).
        """
        if to < self._now:
            raise SimulationError(
                f"cannot advance clock to t={to}, already at t={self._now}"
            )
        pending = self.peek_next_time()
        if pending is not None and pending < to:
            raise SimulationError(
                f"cannot advance clock to t={to}: event pending at t={pending}"
            )
        self._now = to

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    @property
    def events_processed(self) -> int:
        """Total events processed over the kernel's lifetime."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"Kernel(now={self._now}, pending={self.pending_count}, "
            f"processed={self._events_processed})"
        )


#: Process-local running total of events processed by every Kernel.run()
#: call, used by the benchmark harness to derive events/sec without
#: threading a kernel reference through each experiment's return value.
#: (Sweep points executed in worker processes accumulate into their own
#: process's total; the harness reports the main-process delta.)
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Events processed by all ``Kernel.run()`` calls in this process."""
    return _TOTAL_EVENTS
