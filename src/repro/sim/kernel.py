"""Discrete-event simulation kernel.

A classic priority-queue DES: events are ``(time, sequence, callback)``
entries; the kernel pops the earliest event, advances the clock to its
timestamp, and invokes the callback.  Ties are broken by insertion order
(FIFO), which makes runs deterministic for a given seed and schedule.

The kernel is deliberately small — no coroutines, no channels — because
the paper's simulation only needs timers (TTR expirations and trace
updates).  The :mod:`repro.sim.process` module layers a lightweight
process abstraction on top for components that prefer that style.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.errors import SchedulingInPastError, SimulationError
from repro.core.types import Seconds

#: An event callback.  It receives the kernel so it can schedule
#: follow-up events; the current time is ``kernel.now()``.
EventCallback = Callable[["Kernel"], None]


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry. Ordered by (time, sequence)."""

    time: Seconds
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """A handle to a scheduled event, usable to cancel it.

    Cancellation is lazy: the heap entry is flagged and skipped when it
    reaches the head of the queue.  Cancelling an already-fired or
    already-cancelled event is an error (it usually indicates a
    bookkeeping bug in the caller), surfaced as ``SimulationError``.
    """

    __slots__ = ("_event", "_fired")

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event
        self._fired = False

    @property
    def time(self) -> Seconds:
        """The time the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True if the event is still waiting to fire."""
        return not self._fired and not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Raises ``SimulationError`` if not pending."""
        if self._fired:
            raise SimulationError(
                f"cannot cancel event {self._event.label!r}: already fired"
            )
        if self._event.cancelled:
            raise SimulationError(
                f"cannot cancel event {self._event.label!r}: already cancelled"
            )
        self._event.cancelled = True

    def cancel_if_pending(self) -> bool:
        """Cancel the event if pending; return whether it was cancelled."""
        if self.pending:
            self._event.cancelled = True
            return True
        return False

    def _mark_fired(self) -> None:
        self._fired = True

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._event.cancelled
            else ("fired" if self._fired else "pending")
        )
        return f"EventHandle(t={self._event.time}, label={self._event.label!r}, {state})"


class Kernel:
    """The discrete-event simulation engine.

    Example:
        >>> k = Kernel()
        >>> fired = []
        >>> _ = k.schedule_at(5.0, lambda kern: fired.append(kern.now()))
        >>> k.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: Seconds = 0.0) -> None:
        if start_time < 0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        self._now: Seconds = start_time
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self._handles: dict[int, EventHandle] = {}

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    def now(self) -> Seconds:
        """Current simulation time (satisfies the ``Clock`` protocol)."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, when: Seconds, callback: EventCallback, *, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``when``.

        Raises:
            SchedulingInPastError: if ``when`` precedes the current time.
        """
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        event = _ScheduledEvent(
            time=when, sequence=next(self._sequence), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        handle = EventHandle(event)
        self._handles[event.sequence] = handle
        return handle

    def schedule_after(
        self, delay: Seconds, callback: EventCallback, *, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns:
            True if an event was processed, False if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            handle = self._handles.pop(event.sequence, None)
            if event.cancelled:
                continue
            self._now = event.time
            if handle is not None:
                handle._mark_fired()
            self._events_processed += 1
            event.callback(self)
            return True
        return False

    def run(
        self,
        *,
        until: Optional[Seconds] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue is empty, ``until`` is reached, or
        ``max_events`` events have been processed.

        Events scheduled exactly at ``until`` are processed; the clock is
        advanced to ``until`` at the end even when the queue empties
        earlier, so time-weighted statistics cover the full horizon.

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self._now}"
            )
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                head = self._next_pending_time()
                if head is None:
                    break
                if until is not None and head > until:
                    break
                if self.step():
                    processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return processed

    def _next_pending_time(self) -> Optional[Seconds]:
        """Peek the timestamp of the next non-cancelled event."""
        while self._heap and self._heap[0].cancelled:
            dropped = heapq.heappop(self._heap)
            self._handles.pop(dropped.sequence, None)
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events processed over the kernel's lifetime."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"Kernel(now={self._now}, pending={self.pending_count}, "
            f"processed={self._events_processed})"
        )
