"""Discrete-event simulation kernel and supporting utilities."""

from repro.sim.kernel import EventHandle, Kernel
from repro.sim.process import Process, spawn
from repro.sim.stats import (
    Counter,
    Histogram,
    SummarySnapshot,
    SummaryStats,
    TimeWeightedValue,
)
from repro.sim.timers import PeriodicTimer, RestartableTimer
from repro.sim.tracing import EventLog

__all__ = [
    "EventHandle",
    "Kernel",
    "Process",
    "spawn",
    "Counter",
    "Histogram",
    "SummarySnapshot",
    "SummaryStats",
    "TimeWeightedValue",
    "PeriodicTimer",
    "RestartableTimer",
    "EventLog",
]
