"""Statistics primitives for simulation components.

Three workhorses:

* :class:`Counter` — monotone named counters (polls, violations, hits).
* :class:`TimeWeightedValue` — integrates a piecewise-constant signal
  over time; used for Eq. 14 fidelity (total out-of-sync time is the
  integral of an indicator signal).
* :class:`SummaryStats` — streaming min/max/mean/variance via Welford's
  algorithm, for TTR distributions and poll-interval summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.core.types import Seconds


class Counter:
    """A set of named monotone counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, by: int = 1) -> int:
        """Increase counter ``name`` by ``by`` (must be >= 0)."""
        if by < 0:
            raise ValueError(f"cannot increment by negative amount {by}")
        new = self._counts.get(name, 0) + by
        self._counts[name] = new
        return new

    def get(self, name: str) -> int:
        """Return the current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Return a copy of all counters."""
        return dict(self._counts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"Counter({self._counts})"


class TimeWeightedValue:
    """Integrates a piecewise-constant signal over simulation time.

    The signal starts at ``initial`` at time ``start``.  Each call to
    :meth:`set` records the area under the old value and switches to the
    new one.  :meth:`integral` and :meth:`mean` close the current segment
    at the query time without mutating state.
    """

    __slots__ = ("_segment_start", "_value", "_area", "_origin")

    def __init__(self, start: Seconds = 0.0, initial: float = 0.0) -> None:
        self._segment_start: Seconds = start
        self._value: float = initial
        self._area: float = 0.0
        self._origin: Seconds = start

    @property
    def value(self) -> float:
        """The current signal value."""
        return self._value

    def set(self, now: Seconds, value: float) -> None:
        """Switch the signal to ``value`` at time ``now``."""
        if now < self._segment_start:
            raise ValueError(
                f"time went backwards: {now} < {self._segment_start}"
            )
        self._area += self._value * (now - self._segment_start)
        self._segment_start = now
        self._value = value

    def integral(self, now: Seconds) -> float:
        """Area under the signal from the origin to ``now``."""
        if now < self._segment_start:
            raise ValueError(
                f"query time {now} precedes segment start {self._segment_start}"
            )
        return self._area + self._value * (now - self._segment_start)

    def mean(self, now: Seconds) -> float:
        """Time-weighted mean of the signal from the origin to ``now``."""
        duration = now - self._origin
        if duration <= 0:
            return self._value
        return self.integral(now) / duration

    def __repr__(self) -> str:
        return (
            f"TimeWeightedValue(value={self._value}, "
            f"since={self._segment_start}, area={self._area})"
        )


@dataclass(slots=True)
class SummarySnapshot:
    """An immutable snapshot of a :class:`SummaryStats`."""

    count: int
    mean: float
    variance: float
    minimum: float
    maximum: float

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance) if self.variance > 0 else 0.0


class SummaryStats:
    """Streaming summary statistics (Welford's online algorithm)."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, x: float) -> None:
        """Record one observation."""
        if not math.isfinite(x):
            raise ValueError(f"observation must be finite, got {x}")
        self._count += 1
        delta = x - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (x - self._mean)
        self._min = x if self._min is None else min(self._min, x)
        self._max = x if self._max is None else max(self._max, x)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance (0.0 when fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / self._count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise ValueError("no observations recorded")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise ValueError("no observations recorded")
        return self._max

    def snapshot(self) -> SummarySnapshot:
        """Return an immutable copy of the current statistics."""
        if self._count == 0:
            return SummarySnapshot(0, 0.0, 0.0, math.nan, math.nan)
        return SummarySnapshot(
            count=self._count,
            mean=self._mean,
            variance=self.variance,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def __repr__(self) -> str:
        if self._count == 0:
            return "SummaryStats(empty)"
        return (
            f"SummaryStats(n={self._count}, mean={self._mean:.4g}, "
            f"min={self._min:.4g}, max={self._max:.4g})"
        )


class Histogram:
    """A fixed-bin histogram over [low, high).

    Out-of-range observations are clamped into the first/last bin and
    counted separately so callers can detect poorly chosen ranges.
    """

    __slots__ = (
        "_low",
        "_high",
        "_bins",
        "_width",
        "_counts",
        "_underflow",
        "_overflow",
        "_total",
    )

    def __init__(self, low: float, high: float, bins: int) -> None:
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        if high <= low:
            raise ValueError(f"high ({high}) must exceed low ({low})")
        self._low = low
        self._high = high
        self._bins = bins
        self._width = (high - low) / bins
        self._counts = [0] * bins
        self._underflow = 0
        self._overflow = 0
        self._total = 0

    def observe(self, x: float) -> None:
        """Record one observation, clamping out-of-range values."""
        self._total += 1
        if x < self._low:
            self._underflow += 1
            self._counts[0] += 1
            return
        if x >= self._high:
            self._overflow += 1
            self._counts[-1] += 1
            return
        index = int((x - self._low) / self._width)
        index = min(index, self._bins - 1)
        self._counts[index] += 1

    @property
    def counts(self) -> list[int]:
        return list(self._counts)

    @property
    def total(self) -> int:
        return self._total

    @property
    def underflow(self) -> int:
        return self._underflow

    @property
    def overflow(self) -> int:
        return self._overflow

    def bin_edges(self) -> list[float]:
        """Return the bins' left edges plus the final right edge."""
        return [self._low + i * self._width for i in range(self._bins + 1)]

    def __repr__(self) -> str:
        return (
            f"Histogram([{self._low}, {self._high}), bins={self._bins}, "
            f"total={self._total})"
        )
