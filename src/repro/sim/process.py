"""Generator-based process abstraction over the kernel.

Some workload components (client request streams, update feeders) read
more naturally as sequential processes than as callback chains.  A
process is a Python generator that yields the *delay* until its next
step; the runner schedules each resumption on the kernel.

Example:
    >>> from repro.sim.kernel import Kernel
    >>> k = Kernel()
    >>> seen = []
    >>> def proc():
    ...     seen.append(("start", 0.0))
    ...     yield 2.0
    ...     seen.append(("tick", 2.0))
    ...     yield 3.0
    ...     seen.append(("done", 5.0))
    >>> _ = spawn(k, proc())
    >>> _ = k.run()
    >>> [name for name, _ in seen]
    ['start', 'tick', 'done']
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.types import Seconds
from repro.sim.kernel import EventHandle, Kernel

#: A process body: yields delays (seconds) between steps.
ProcessBody = Generator[Seconds, None, None]


class Process:
    """A running process.  Created via :func:`spawn`."""

    __slots__ = ("_kernel", "_body", "_label", "_finished", "_handle")

    def __init__(self, kernel: Kernel, body: ProcessBody, *, label: str = "") -> None:
        self._kernel = kernel
        self._body = body
        self._label = label
        self._finished = False
        self._handle: Optional[EventHandle] = None

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def label(self) -> str:
        return self._label

    def stop(self) -> None:
        """Terminate the process before its next step."""
        if self._handle is not None:
            self._handle.cancel_if_pending()
            self._handle = None
        if not self._finished:
            self._body.close()
            self._finished = True

    def _start(self) -> None:
        # The first step runs immediately (at the current time) so that a
        # process can perform setup at spawn time.
        self._handle = self._kernel.schedule_after(0.0, self._step, label=self._label)

    def _step(self, kernel: Kernel) -> None:
        self._handle = None
        if self._finished:
            return
        try:
            delay = next(self._body)
        except StopIteration:
            self._finished = True
            return
        if delay < 0:
            self._finished = True
            self._body.close()
            raise ValueError(
                f"process {self._label!r} yielded negative delay {delay}"
            )
        self._handle = kernel.schedule_after(delay, self._step, label=self._label)

    def __repr__(self) -> str:
        return f"Process(label={self._label!r}, finished={self._finished})"


def spawn(kernel: Kernel, body: ProcessBody, *, label: str = "") -> Process:
    """Start a process on the kernel and return its handle."""
    process = Process(kernel, body, label=label)
    process._start()
    return process
