"""Trace serialisation.

Two formats:

* **CSV** — one record per line (``time,version,value``), human-editable,
  suitable for importing real poll-collected traces like the paper's.
* **JSON** — self-describing, carries metadata and the observation
  window, suitable for archiving generated workloads alongside results.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.core.errors import TraceFormatError
from repro.core.types import ObjectId, UpdateRecord
from repro.traces.model import TraceMetadata, UpdateTrace

_CSV_FIELDS = ("time", "version", "value")
_JSON_FORMAT_VERSION = 1

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def write_csv(trace: UpdateTrace, destination: Union[PathLike, TextIO]) -> None:
    """Write a trace's records as CSV with a header row."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write_csv_stream(trace, handle)
    else:
        _write_csv_stream(trace, destination)


def _write_csv_stream(trace: UpdateTrace, stream: TextIO) -> None:
    writer = csv.writer(stream)
    writer.writerow(_CSV_FIELDS)
    for record in trace.records:
        value = "" if record.value is None else repr(record.value)
        writer.writerow([repr(record.time), record.version, value])


def read_csv(
    source: Union[PathLike, TextIO],
    object_id: str,
    *,
    start_time: Optional[float] = None,
    end_time: Optional[float] = None,
    metadata: Optional[TraceMetadata] = None,
) -> UpdateTrace:
    """Read a trace from CSV produced by :func:`write_csv` (or hand-made)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="", encoding="utf-8") as handle:
            records = _read_csv_stream(handle)
    else:
        records = _read_csv_stream(source)
    # The observation window opens at the first recorded update unless
    # the caller says otherwise: defaulting to 0.0 would silently
    # inflate `duration` for traces that start late (e.g. t=3600).
    first_time = records[0].time if records else 0.0
    return UpdateTrace(
        ObjectId(object_id),
        records,
        start_time=start_time if start_time is not None else first_time,
        end_time=end_time,
        metadata=metadata,
    )


def _read_csv_stream(stream: TextIO) -> List[UpdateRecord]:
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        return []
    if [h.strip().lower() for h in header] != list(_CSV_FIELDS):
        raise TraceFormatError(
            f"unexpected CSV header {header!r}; expected {list(_CSV_FIELDS)}"
        )
    records: List[UpdateRecord] = []
    for line_no, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != 3:
            raise TraceFormatError(
                f"line {line_no}: expected 3 fields, got {len(row)}"
            )
        try:
            time = float(row[0])
            version = int(row[1])
            value = float(row[2]) if row[2].strip() else None
        except ValueError as exc:
            raise TraceFormatError(f"line {line_no}: {exc}") from exc
        records.append(UpdateRecord(time, version, value))
    return records


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def to_json_dict(trace: UpdateTrace) -> Dict[str, object]:
    """Return a JSON-serialisable dict describing the trace."""
    return {
        "format_version": _JSON_FORMAT_VERSION,
        "object_id": str(trace.object_id),
        "start_time": trace.start_time,
        "end_time": trace.end_time,
        "metadata": {
            "name": trace.metadata.name,
            "description": trace.metadata.description,
            "source": trace.metadata.source,
            "value_unit": trace.metadata.value_unit,
        },
        "records": [
            {"time": r.time, "version": r.version, "value": r.value}
            for r in trace.records
        ],
    }


def _record_from_json(index: int, raw: object) -> UpdateRecord:
    """Validate one JSON record; errors name the offending index.

    Without this, a non-numeric ``time`` or ``version`` would slide
    straight into :class:`UpdateRecord` and only crash much later,
    deep inside the kernel's event comparisons.
    """
    if not isinstance(raw, dict):
        raise TraceFormatError(
            f"record {index}: expected an object, got {type(raw).__name__}"
        )
    time = raw.get("time")
    if isinstance(time, bool) or not isinstance(time, (int, float)):
        raise TraceFormatError(
            f"record {index}: 'time' must be a number, got {time!r}"
        )
    version = raw.get("version")
    if isinstance(version, bool) or not isinstance(version, int):
        raise TraceFormatError(
            f"record {index}: 'version' must be an integer, got {version!r}"
        )
    value = raw.get("value")
    if value is not None and (
        isinstance(value, bool) or not isinstance(value, (int, float))
    ):
        raise TraceFormatError(
            f"record {index}: 'value' must be a number or null, got {value!r}"
        )
    return UpdateRecord(float(time), version, None if value is None else float(value))


def from_json_dict(data: Dict[str, Any]) -> UpdateTrace:
    """Rebuild a trace from :func:`to_json_dict` output."""
    try:
        version = data["format_version"]
        if version != _JSON_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version!r}"
            )
        meta = data.get("metadata", {})
        metadata = TraceMetadata(
            name=meta.get("name", data["object_id"]),
            description=meta.get("description", ""),
            source=meta.get("source", "unknown"),
            value_unit=meta.get("value_unit"),
        )
        records = [
            _record_from_json(index, r)
            for index, r in enumerate(data["records"])
        ]
        return UpdateTrace(
            ObjectId(data["object_id"]),
            records,
            start_time=data["start_time"],
            end_time=data["end_time"],
            metadata=metadata,
        )
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed trace JSON: {exc}") from exc


def write_json(trace: UpdateTrace, destination: Union[PathLike, TextIO]) -> None:
    """Write a trace (with metadata) to a JSON file or stream."""
    data = to_json_dict(trace)
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
    else:
        json.dump(data, destination, indent=2)


def read_json(source: Union[PathLike, TextIO]) -> UpdateTrace:
    """Read a trace written by :func:`write_json`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    if not isinstance(data, dict):
        raise TraceFormatError("trace JSON must be an object at the top level")
    return from_json_dict(data)


def trace_to_csv_string(trace: UpdateTrace) -> str:
    """Serialise a trace to a CSV string (convenience for tests/examples)."""
    buffer = io.StringIO()
    write_csv(trace, buffer)
    return buffer.getvalue()


def trace_from_csv_string(
    text: str,
    object_id: str,
    *,
    start_time: Optional[float] = None,
    end_time: Optional[float] = None,
    metadata: Optional[TraceMetadata] = None,
) -> UpdateTrace:
    """Parse a trace from a CSV string (convenience for tests/examples)."""
    return read_csv(
        io.StringIO(text),
        object_id,
        start_time=start_time,
        end_time=end_time,
        metadata=metadata,
    )
