"""Proxy-log ingestion: access logs → per-object update traces.

The paper's workloads were collected by polling live servers; real
deployments sit on the other side of that pipeline — they have *proxy
access logs* (Apache Common Log Format, squid native format) and need
update traces inferred from them.  This module is that ingestion path:

* :func:`parse_log` / :func:`read_log` — strict, line-numbered parsing
  of CLF and squid-style logs into :class:`LogRecord` rows;
* :func:`serialize_log` — the inverse, so fixtures round-trip
  (``parse → serialize → parse`` is the identity on records);
* :func:`infer_update_times` / :func:`log_to_traces` — configurable
  update-inference rules mapping request rows to per-object
  :class:`~repro.traces.model.UpdateTrace` instances;
* :func:`generate_synthetic_log` — a deterministic generator for
  shareable fixtures (golden scenarios replay its output).

The ``trace_replay`` workload source (:mod:`repro.api.workloads`)
exposes all of this to any JSON :class:`~repro.api.config.SimulationConfig`.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.errors import TraceFormatError
from repro.core.types import ObjectId, Seconds
from repro.traces.model import TraceMetadata, UpdateTrace, trace_from_times

#: Log dialects the parser and serializer understand.
LOG_FORMATS = ("clf", "squid")

#: Update-inference rules for :func:`infer_update_times`.
#:
#: * ``size_change`` — an object updated when the response size for its
#:   URL differs from the previous response (first sighting counts);
#:   the classic last-modified-free heuristic for proxy logs.
#: * ``every_request`` — every successful response counts as an update
#:   (an upper bound on update activity).
UPDATE_RULES = ("size_change", "every_request")

_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_NUMBER = {name: index + 1 for index, name in enumerate(_MONTHS)}

# host ident authuser [date] "request" status size
_CLF_RE = re.compile(
    r'^(\S+) (\S+) (\S+) \[([^\]]+)\] "([^"]*)" (\d{3}) (\d+|-)$'
)
_CLF_DATE_RE = re.compile(
    r"^(\d{2})/([A-Za-z]{3})/(\d{4}):(\d{2}):(\d{2}):(\d{2}) ([+-])(\d{2})(\d{2})$"
)


@dataclass(frozen=True)
class LogRecord:
    """One parsed access-log line (the fields both dialects share).

    ``time`` is epoch seconds.  Serialization keeps exactly these
    fields, so ``parse(serialize(records)) == records`` whenever the
    times fit the dialect's resolution (whole seconds for CLF,
    milliseconds for squid).
    """

    time: float
    host: str
    method: str
    url: str
    status: int
    size: int

    def __post_init__(self) -> None:
        if self.time < 0 or self.time != self.time or self.time in (
            float("inf"),
            float("-inf"),
        ):
            raise ValueError(f"time must be finite and >= 0, got {self.time!r}")
        for name in ("host", "method", "url"):
            value = getattr(self, name)
            if not value or any(c.isspace() for c in value):
                raise ValueError(
                    f"{name} must be non-empty and whitespace-free, "
                    f"got {value!r}"
                )
        if any('"' in getattr(self, n) for n in ("host", "method", "url")):
            raise ValueError(f"quotes are not allowed in log fields: {self!r}")
        if not 100 <= self.status <= 599:
            raise ValueError(f"status must be in [100, 599], got {self.status}")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _parse_clf_date(line_no: int, text: str) -> float:
    match = _CLF_DATE_RE.match(text)
    if match is None:
        raise TraceFormatError(
            f"line {line_no}: bad CLF timestamp {text!r} "
            "(expected dd/Mon/yyyy:HH:MM:SS +zzzz)"
        )
    day, month_name, year, hour, minute, second, sign, off_h, off_m = (
        match.groups()
    )
    month = _MONTH_NUMBER.get(month_name.title())
    if month is None:
        raise TraceFormatError(
            f"line {line_no}: unknown month {month_name!r}"
        )
    offset = timedelta(hours=int(off_h), minutes=int(off_m))
    if sign == "-":
        offset = -offset
    try:
        stamp = datetime(
            int(year), month, int(day),
            int(hour), int(minute), int(second),
            tzinfo=timezone(offset),
        )
    except ValueError as exc:
        raise TraceFormatError(f"line {line_no}: {exc}") from None
    return stamp.timestamp()


def _parse_clf_line(line_no: int, line: str) -> LogRecord:
    match = _CLF_RE.match(line)
    if match is None:
        raise TraceFormatError(
            f"line {line_no}: not a Common Log Format line: {line!r}"
        )
    host, _ident, _user, date_text, request, status, size = match.groups()
    parts = request.split(" ")
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise TraceFormatError(
            f"line {line_no}: bad request field {request!r} "
            '(expected "METHOD URL [PROTOCOL]")'
        )
    try:
        return LogRecord(
            time=_parse_clf_date(line_no, date_text),
            host=host,
            method=parts[0],
            url=parts[1],
            status=int(status),
            size=0 if size == "-" else int(size),
        )
    except ValueError as exc:
        raise TraceFormatError(f"line {line_no}: {exc}") from None


def _parse_squid_line(line_no: int, line: str) -> LogRecord:
    fields = line.split()
    if len(fields) < 7:
        raise TraceFormatError(
            f"line {line_no}: squid lines need >= 7 fields, "
            f"got {len(fields)}: {line!r}"
        )
    action = fields[3]
    if "/" not in action:
        raise TraceFormatError(
            f"line {line_no}: bad squid action/status field {action!r}"
        )
    status_text = action.rsplit("/", 1)[1]
    try:
        return LogRecord(
            time=float(fields[0]),
            host=fields[2],
            method=fields[5],
            url=fields[6],
            status=int(status_text),
            size=int(fields[4]),
        )
    except ValueError as exc:
        raise TraceFormatError(f"line {line_no}: {exc}") from None


def parse_log(
    source: Union[str, Iterable[str]], *, format: str = "clf"
) -> List[LogRecord]:
    """Parse an access log (a string or an iterable of lines).

    Blank lines and ``#`` comments are skipped; anything else that does
    not parse raises :class:`~repro.core.errors.TraceFormatError`
    naming the 1-based line number.
    """
    if format not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {format!r}; known: {LOG_FORMATS}"
        )
    lines = source.splitlines() if isinstance(source, str) else source
    parse_line = _parse_clf_line if format == "clf" else _parse_squid_line
    records: List[LogRecord] = []
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        records.append(parse_line(line_no, line))
    return records


def read_log(
    path: Union[str, Path], *, format: str = "clf"
) -> List[LogRecord]:
    """Parse an access-log file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_log(handle, format=format)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def format_log_line(record: LogRecord, *, format: str = "clf") -> str:
    """Render one record in the given dialect.

    CLF carries whole seconds and squid milliseconds; a record whose
    time does not fit the dialect's resolution would not round-trip, so
    it is rejected instead of silently truncated.
    """
    if format not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {format!r}; known: {LOG_FORMATS}"
        )
    if format == "clf":
        if record.time != int(record.time):
            raise TraceFormatError(
                f"CLF timestamps have whole-second resolution; "
                f"{record.time!r} would not round-trip"
            )
        if record.host.startswith("#"):
            # CLF lines open with the host; the parser would read this
            # record back as a comment and drop it.
            raise TraceFormatError(
                f"host {record.host!r} would serialize as a comment line"
            )
        stamp = datetime.fromtimestamp(int(record.time), tz=timezone.utc)
        date_text = (
            f"{stamp.day:02d}/{_MONTHS[stamp.month - 1]}/{stamp.year:04d}"
            f":{stamp.hour:02d}:{stamp.minute:02d}:{stamp.second:02d} +0000"
        )
        return (
            f"{record.host} - - [{date_text}] "
            f'"{record.method} {record.url} HTTP/1.0" '
            f"{record.status} {record.size}"
        )
    if round(record.time, 3) != record.time:
        raise TraceFormatError(
            f"squid timestamps have millisecond resolution; "
            f"{record.time!r} would not round-trip"
        )
    return (
        f"{record.time:.3f} 0 {record.host} TCP_MISS/{record.status} "
        f"{record.size} {record.method} {record.url} - DIRECT/- -"
    )


def serialize_log(
    records: Sequence[LogRecord], *, format: str = "clf"
) -> str:
    """Render records as a log string (one line each, trailing newline)."""
    lines = [format_log_line(record, format=format) for record in records]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Update inference
# ----------------------------------------------------------------------
def infer_update_times(
    records: Sequence[LogRecord], *, rule: str = "size_change"
) -> Dict[str, List[Seconds]]:
    """Per-URL update instants inferred from request rows.

    Only successful (2xx) responses are considered.  Under
    ``size_change`` the first sighting of a URL and every subsequent
    response whose size differs from the previous one count as updates;
    under ``every_request`` every successful response does.  Same-URL
    rows sharing an instant collapse to one update (a trace cannot hold
    two updates at the same time).
    """
    if rule not in UPDATE_RULES:
        raise ValueError(f"unknown update rule {rule!r}; known: {UPDATE_RULES}")
    ordered = sorted(records, key=lambda r: r.time)
    times: Dict[str, List[Seconds]] = {}
    last_size: Dict[str, int] = {}
    for record in ordered:
        if not 200 <= record.status < 300:
            continue
        changed = (
            True
            if rule == "every_request"
            else record.url not in last_size
            or last_size[record.url] != record.size
        )
        last_size[record.url] = record.size
        if not changed:
            continue
        bucket = times.setdefault(record.url, [])
        if not bucket or record.time > bucket[-1]:
            bucket.append(record.time)
    return times


def log_to_traces(
    records: Sequence[LogRecord],
    objects: Sequence[str],
    *,
    rule: str = "size_change",
    time_scale: float = 1.0,
    url_map: Optional[Mapping[str, str]] = None,
) -> List[UpdateTrace]:
    """Map a parsed log to one :class:`UpdateTrace` per object key.

    Every object key names a URL directly, or through ``url_map``
    (object key → URL).  All traces share one observation window —
    simulation time 0 is the log's first request and the window closes
    at its last, both scaled by ``time_scale`` (0.5 replays twice as
    fast).  Traces come back in ``objects`` order.
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    if not records:
        raise TraceFormatError("empty log: no records to replay")
    by_url = infer_update_times(records, rule=rule)
    origin = min(record.time for record in records)
    window_end = (max(record.time for record in records) - origin) * time_scale
    traces = []
    mapping = url_map or {}
    for key in objects:
        url = mapping.get(key, key)
        instants = by_url.get(url)
        if instants is None:
            raise ValueError(
                f"object {key!r} maps to url {url!r}, which never appears "
                f"with a 2xx status in the log; urls seen: {sorted(by_url)}"
            )
        traces.append(
            trace_from_times(
                ObjectId(key),
                [(t - origin) * time_scale for t in instants],
                start_time=0.0,
                end_time=window_end,
                metadata=TraceMetadata(
                    name=key,
                    description=f"replayed from access log ({rule})",
                    source="log_replay",
                ),
            )
        )
    return traces


# ----------------------------------------------------------------------
# Synthetic fixtures
# ----------------------------------------------------------------------
def generate_synthetic_log(
    seed: int,
    *,
    urls: Sequence[str] = ("/index.html", "/news/front", "/quote/ticker"),
    duration_s: float = 3600.0,
    mean_interval_s: float = 30.0,
    change_probability: float = 0.3,
    start_epoch: int = 1_000_000_000,
) -> List[LogRecord]:
    """A deterministic request log for shareable fixtures.

    Requests arrive with exponential gaps (rounded up to whole seconds,
    so the output serializes losslessly in both dialects); each request
    picks a URL — the first pass covers every URL once, so short logs
    still mention the whole population — and with ``change_probability``
    the response size bumps, which the ``size_change`` rule reads as an
    update.  Identical ``seed`` and knobs always yield identical logs.
    """
    if not urls:
        raise ValueError("urls must be non-empty")
    if duration_s <= 0 or mean_interval_s <= 0:
        raise ValueError(
            "duration_s and mean_interval_s must be > 0, got "
            f"{duration_s} and {mean_interval_s}"
        )
    if not 0.0 <= change_probability <= 1.0:
        raise ValueError(
            f"change_probability must be in [0, 1], got {change_probability}"
        )
    rng = random.Random(seed)
    url_list = list(urls)
    sizes = {url: 1000 + 64 * index for index, url in enumerate(url_list)}
    records: List[LogRecord] = []
    time = float(start_epoch)
    index = 0
    while True:
        time += max(1.0, float(round(rng.expovariate(1.0 / mean_interval_s))))
        if time > start_epoch + duration_s:
            break
        url = (
            url_list[index]
            if index < len(url_list)
            else rng.choice(url_list)
        )
        if rng.random() < change_probability:
            sizes[url] += rng.randrange(1, 128)
        records.append(
            LogRecord(
                time=time,
                host=f"10.0.0.{rng.randrange(1, 255)}",
                method="GET",
                url=url,
                status=200,
                size=sizes[url],
            )
        )
        index += 1
    return records
