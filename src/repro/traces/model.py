"""Trace data model.

The paper's evaluation is trace-driven: each object is driven by a
sequence of timestamped updates.  Temporal-domain traces carry only
update instants (news pages); value-domain traces carry an instant and
a new value (stock ticks).  Both are represented by ``UpdateTrace``,
whose records optionally carry values.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.errors import TraceFormatError, TraceOrderingError
from repro.core.types import ObjectId, Seconds, UpdateRecord


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive metadata attached to a trace.

    Mirrors the columns of the paper's Tables 2 and 3: a human-readable
    name, the observation window, and (for valued traces) the value unit.
    """

    name: str
    description: str = ""
    source: str = "synthetic"
    value_unit: Optional[str] = None


class UpdateTrace:
    """An immutable, time-ordered sequence of updates to one object.

    Records must be strictly increasing in time (two updates cannot share
    an instant for a single object) and version numbers must increase by
    exactly one per record, starting from the first record's version.
    """

    def __init__(
        self,
        object_id: ObjectId,
        records: Iterable[UpdateRecord],
        *,
        start_time: Seconds = 0.0,
        end_time: Optional[Seconds] = None,
        metadata: Optional[TraceMetadata] = None,
    ) -> None:
        self._object_id = object_id
        self._records: List[UpdateRecord] = list(records)
        self._metadata = metadata or TraceMetadata(name=str(object_id))
        self._validate()
        self._start_time = start_time
        if self._records and start_time > self._records[0].time:
            raise TraceFormatError(
                f"start_time {start_time} exceeds first update at "
                f"{self._records[0].time}"
            )
        last = self._records[-1].time if self._records else start_time
        self._end_time = end_time if end_time is not None else last
        if self._end_time < last:
            raise TraceFormatError(
                f"end_time {self._end_time} precedes last update at {last}"
            )
        self._times = [r.time for r in self._records]

    def _validate(self) -> None:
        prev_time: Optional[Seconds] = None
        prev_version: Optional[int] = None
        for index, record in enumerate(self._records):
            if prev_time is not None and record.time <= prev_time:
                raise TraceOrderingError(index, prev_time, record.time)
            if prev_version is not None and record.version != prev_version + 1:
                raise TraceFormatError(
                    f"record {index}: version {record.version} does not follow "
                    f"{prev_version} (versions must increment by one)"
                )
            prev_time = record.time
            prev_version = record.version

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def object_id(self) -> ObjectId:
        return self._object_id

    @property
    def metadata(self) -> TraceMetadata:
        return self._metadata

    @property
    def records(self) -> Sequence[UpdateRecord]:
        return tuple(self._records)

    @property
    def start_time(self) -> Seconds:
        """Beginning of the observation window."""
        return self._start_time

    @property
    def end_time(self) -> Seconds:
        """End of the observation window (>= last update time)."""
        return self._end_time

    @property
    def duration(self) -> Seconds:
        return self._end_time - self._start_time

    @property
    def update_count(self) -> int:
        return len(self._records)

    @property
    def has_values(self) -> bool:
        """True if every record carries a value (a value-domain trace)."""
        return bool(self._records) and all(r.value is not None for r in self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> UpdateRecord:
        return self._records[index]

    # ------------------------------------------------------------------
    # Queries used by the simulator and metrics
    # ------------------------------------------------------------------
    def updates_in(self, start: Seconds, end: Seconds) -> List[UpdateRecord]:
        """Return updates with start < time <= end (poll-interval query).

        This matches the question a poll answers: "what changed since the
        previous poll (exclusive) up to now (inclusive)?"
        """
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return self._records[lo:hi]

    def latest_at(self, t: Seconds) -> Optional[UpdateRecord]:
        """Return the most recent update at or before time ``t``."""
        index = bisect.bisect_right(self._times, t)
        if index == 0:
            return None
        return self._records[index - 1]

    def next_after(self, t: Seconds) -> Optional[UpdateRecord]:
        """Return the first update strictly after time ``t``."""
        index = bisect.bisect_right(self._times, t)
        if index >= len(self._records):
            return None
        return self._records[index]

    def value_at(self, t: Seconds, *, default: Optional[float] = None) -> Optional[float]:
        """Return the object's value at time ``t`` (last tick at or before)."""
        record = self.latest_at(t)
        if record is None:
            return default
        return record.value

    def version_at(self, t: Seconds) -> Optional[int]:
        """Return the object's version at time ``t``, or None if unborn."""
        record = self.latest_at(t)
        return record.version if record is not None else None

    # ------------------------------------------------------------------
    # Derived traces
    # ------------------------------------------------------------------
    def shifted(self, offset: Seconds) -> "UpdateTrace":
        """Return a copy with all times shifted by ``offset`` (>= 0 result)."""
        if self._start_time + offset < 0:
            raise ValueError(
                f"shift by {offset} would move start before t=0"
            )
        return UpdateTrace(
            self._object_id,
            [
                UpdateRecord(r.time + offset, r.version, r.value)
                for r in self._records
            ],
            start_time=self._start_time + offset,
            end_time=self._end_time + offset,
            metadata=self._metadata,
        )

    def clipped(self, start: Seconds, end: Seconds) -> "UpdateTrace":
        """Return the sub-trace covering [start, end]; versions renumbered."""
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        selected = [r for r in self._records if start <= r.time <= end]
        renumbered = [
            UpdateRecord(r.time, i, r.value) for i, r in enumerate(selected)
        ]
        return UpdateTrace(
            self._object_id,
            renumbered,
            start_time=start,
            end_time=end,
            metadata=self._metadata,
        )

    def __repr__(self) -> str:
        return (
            f"UpdateTrace({self._object_id!r}, updates={len(self._records)}, "
            f"window=[{self._start_time}, {self._end_time}])"
        )


def trace_from_times(
    object_id: ObjectId,
    times: Iterable[Seconds],
    *,
    start_time: Seconds = 0.0,
    end_time: Optional[Seconds] = None,
    metadata: Optional[TraceMetadata] = None,
) -> UpdateTrace:
    """Build a temporal-domain trace from bare update instants."""
    records = [UpdateRecord(t, i) for i, t in enumerate(sorted(times))]
    return UpdateTrace(
        object_id,
        records,
        start_time=start_time,
        end_time=end_time,
        metadata=metadata,
    )


def trace_from_ticks(
    object_id: ObjectId,
    ticks: Iterable[tuple[Seconds, float]],
    *,
    start_time: Seconds = 0.0,
    end_time: Optional[Seconds] = None,
    metadata: Optional[TraceMetadata] = None,
) -> UpdateTrace:
    """Build a value-domain trace from (time, value) pairs."""
    ordered = sorted(ticks, key=lambda tv: tv[0])
    records = [UpdateRecord(t, i, v) for i, (t, v) in enumerate(ordered)]
    return UpdateTrace(
        object_id,
        records,
        start_time=start_time,
        end_time=end_time,
        metadata=metadata,
    )
