"""Synthetic news-page update traces (Table 2 substitute).

The paper collected update traces from four news pages by polling them
once a minute for 2–3 days (Table 2).  We cannot replay those exact
traces, so we generate synthetic ones with the same *structure*:

* exactly the update count and window duration listed in Table 2;
* a diurnal intensity profile — updates slow dramatically overnight and
  stop entirely in a quiet window, the feature that drives the LIMD
  TTR growth/collapse cycle in Figure 4;
* bursty spacing within the active period (a mixture of short follow-up
  gaps and longer lulls, as breaking-news pages exhibit).

The generator draws *exactly* N update instants by inverse-transform
sampling against the integrated diurnal intensity, so the Table 2
columns (duration, number of updates, mean update interval) are matched
by construction.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.rng import RngRegistry
from repro.core.types import DAY, HOUR, MINUTE, ObjectId, Seconds
from repro.traces.model import TraceMetadata, UpdateTrace, trace_from_times

#: Minimum separation between consecutive synthetic updates.  The paper's
#: collection program polled once a minute, so sub-second spacing carries
#: no information; one second keeps traces strictly ordered.
MIN_UPDATE_SPACING: Seconds = 1.0


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-hour piecewise-constant update intensity profile.

    ``weights[h]`` is the *relative* intensity during hour ``h`` (0–23).
    Absolute rates are irrelevant because the generator conditions on the
    total update count; only the shape matters.  Hours with weight zero
    produce no updates (the overnight quiet window of Figure 4(a)).
    """

    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.weights) != 24:
            raise ValueError(f"need 24 hourly weights, got {len(self.weights)}")
        if any(w < 0 for w in self.weights):
            raise ValueError("hourly weights must be non-negative")
        if not any(w > 0 for w in self.weights):
            raise ValueError("at least one hourly weight must be positive")

    def weight_at(self, time_of_day: Seconds) -> float:
        """Relative intensity at a given time of day (seconds into the day)."""
        hour = int(time_of_day % DAY) // int(HOUR)
        return self.weights[hour]


#: A newsroom-like profile: quiet 1am–6am, busiest mid-morning through
#: evening.  Matches the Figure 4(a) shape (update rate falls to ~zero
#: for a few hours every night).
DEFAULT_NEWS_PROFILE = DiurnalProfile(
    weights=(
        0.3,  # 00
        0.0,  # 01
        0.0,  # 02
        0.0,  # 03
        0.0,  # 04
        0.0,  # 05
        0.4,  # 06
        0.8,  # 07
        1.0,  # 08
        1.2,  # 09
        1.3,  # 10
        1.3,  # 11
        1.2,  # 12
        1.2,  # 13
        1.3,  # 14
        1.3,  # 15
        1.2,  # 16
        1.1,  # 17
        1.0,  # 18
        0.9,  # 19
        0.8,  # 20
        0.7,  # 21
        0.6,  # 22
        0.4,  # 23
    )
)


@dataclass(frozen=True)
class NewsTraceSpec:
    """Calibration target for one synthetic news trace (one Table 2 row).

    Attributes:
        name: Trace name as in Table 2.
        start_hour_of_day: Hour (fractional) at which collection began;
            aligns the diurnal profile with the observation window.
        duration: Window length in seconds.
        update_count: Number of updates in the window.
        profile: Diurnal intensity shape.
        burstiness: In [0, 1); fraction of updates that arrive as rapid
            follow-ups shortly after a predecessor (news stories are
            updated in bursts as details emerge).  0 disables bursts.
    """

    name: str
    start_hour_of_day: float
    duration: Seconds
    update_count: int
    profile: DiurnalProfile = DEFAULT_NEWS_PROFILE
    burstiness: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.start_hour_of_day < 24:
            raise ValueError(
                f"start_hour_of_day must be in [0, 24), got {self.start_hour_of_day}"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.update_count < 1:
            raise ValueError(f"update_count must be >= 1, got {self.update_count}")
        if not 0 <= self.burstiness < 1:
            raise ValueError(f"burstiness must be in [0, 1), got {self.burstiness}")
        if self.update_count * MIN_UPDATE_SPACING >= self.duration:
            raise ValueError(
                f"{self.update_count} updates cannot fit in {self.duration}s "
                f"with {MIN_UPDATE_SPACING}s minimum spacing"
            )

    @property
    def mean_update_interval(self) -> Seconds:
        """The Table 2 'Avg. Update Frequency' column (seconds per update)."""
        return self.duration / self.update_count


def _duration(hours: float, minutes: float = 0.0) -> Seconds:
    return hours * HOUR + minutes * MINUTE


# ----------------------------------------------------------------------
# Table 2 presets.  Durations and counts transcribed from the paper:
#   CNN/FN        Aug 7 13:04 - Aug 9 14:34   113 updates  every 26 min
#   NYT (AP)      Aug 7 14:07 - Aug 9 11:25   233 updates  every 11.6 min
#   NYT (Reuters) Aug 7 14:12 - Aug 9 11:25   133 updates  every 20.3 min
#   Guardian      Aug 6 13:40 - Aug 9 15:32   902 updates  every 4.9 min
# ----------------------------------------------------------------------
CNN_FN = NewsTraceSpec(
    name="CNN Financial News Briefs",
    start_hour_of_day=13.0 + 4.0 / 60.0,
    duration=_duration(49, 30),
    update_count=113,
)

NYT_AP = NewsTraceSpec(
    name="NY Times Breaking News (AP)",
    start_hour_of_day=14.0 + 7.0 / 60.0,
    duration=_duration(45, 18),
    update_count=233,
)

NYT_REUTERS = NewsTraceSpec(
    name="NY Times Breaking News (Reuters)",
    start_hour_of_day=14.0 + 12.0 / 60.0,
    duration=_duration(45, 13),
    update_count=133,
)

GUARDIAN = NewsTraceSpec(
    name="Guardian Breaking News",
    start_hour_of_day=13.0 + 40.0 / 60.0,
    duration=_duration(73, 52),
    update_count=902,
)

TABLE2_SPECS: tuple[NewsTraceSpec, ...] = (CNN_FN, NYT_AP, NYT_REUTERS, GUARDIAN)

#: Short keys used by experiments and the CLI-style harness.
TABLE2_BY_KEY = {
    "cnn_fn": CNN_FN,
    "nyt_ap": NYT_AP,
    "nyt_reuters": NYT_REUTERS,
    "guardian": GUARDIAN,
}


class NewsTraceGenerator:
    """Generates diurnal, bursty update traces matching a spec exactly."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def generate(self, spec: NewsTraceSpec, *, object_id: Optional[str] = None) -> UpdateTrace:
        """Generate a trace with exactly ``spec.update_count`` updates.

        The trace's time axis starts at 0 (== the observation start);
        diurnal structure is aligned via ``spec.start_hour_of_day``.
        """
        base = self._sample_base_times(spec)
        times = self._apply_bursts(spec, base)
        times = _enforce_spacing(times, spec.duration)
        oid = ObjectId(object_id if object_id is not None else spec.name)
        metadata = TraceMetadata(
            name=spec.name,
            description=(
                f"synthetic news-update trace calibrated to Table 2: "
                f"{spec.update_count} updates over {spec.duration / HOUR:.1f} h"
            ),
            source="synthetic:news",
        )
        return trace_from_times(
            oid,
            times,
            start_time=0.0,
            end_time=spec.duration,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    def _sample_base_times(self, spec: NewsTraceSpec) -> List[Seconds]:
        """Inverse-transform sample N instants against the diurnal CDF."""
        cumulative, total = _integrated_intensity(spec)
        if total <= 0:
            # The observation window lies entirely inside the profile's
            # quiet hours (possible for short windows).  The requested
            # updates must still be placed somewhere: degrade to uniform
            # sampling over the window.
            return sorted(
                self._rng.random() * spec.duration
                for _ in range(spec.update_count)
            )
        times: List[Seconds] = []
        for _ in range(spec.update_count):
            u = self._rng.random() * total
            times.append(_invert_cumulative(cumulative, u))
        times.sort()
        return times

    def _apply_bursts(self, spec: NewsTraceSpec, times: List[Seconds]) -> List[Seconds]:
        """Re-position a fraction of updates as rapid follow-ups.

        Each selected update is moved to land 30 s – 5 min after its
        predecessor, emulating follow-up edits to a breaking story.  The
        total count is unchanged.
        """
        if spec.burstiness <= 0 or len(times) < 2:
            return times
        out = list(times)
        for i in range(1, len(out)):
            if self._rng.random() < spec.burstiness:
                gap = 30.0 + self._rng.random() * (5 * MINUTE - 30.0)
                candidate = out[i - 1] + gap
                if candidate < min(out[i], spec.duration):
                    out[i] = candidate
        out.sort()
        return out


def _integrated_intensity(
    spec: NewsTraceSpec,
) -> tuple[List[tuple[Seconds, float]], float]:
    """Integrate the diurnal profile over the observation window.

    Returns a list of (segment_start_time, cumulative_intensity_at_start)
    knots plus the total integrated intensity.  Segments are the hourly
    pieces of the profile clipped to the window.
    """
    knots: List[tuple[Seconds, float]] = []
    cumulative = 0.0
    t = 0.0
    offset = spec.start_hour_of_day * HOUR
    while t < spec.duration:
        time_of_day = (offset + t) % DAY
        hour_index = int(time_of_day // HOUR)
        # Distance to the next hour boundary.
        to_boundary = HOUR - (time_of_day - hour_index * HOUR)
        segment = min(to_boundary, spec.duration - t)
        weight = spec.profile.weights[hour_index]
        knots.append((t, cumulative))
        cumulative += weight * segment
        t += segment
    knots.append((spec.duration, cumulative))
    return knots, cumulative


def _invert_cumulative(
    knots: List[tuple[Seconds, float]], target: float
) -> Seconds:
    """Map a cumulative-intensity value back to a time in the window."""
    cumulative_values = [c for _, c in knots]
    index = bisect.bisect_right(cumulative_values, target) - 1
    index = max(0, min(index, len(knots) - 2))
    t0, c0 = knots[index]
    t1, c1 = knots[index + 1]
    if c1 <= c0:
        # Zero-intensity segment: no mass here; land at its start.
        return t0
    frac = (target - c0) / (c1 - c0)
    return t0 + frac * (t1 - t0)


def _enforce_spacing(times: List[Seconds], duration: Seconds) -> List[Seconds]:
    """Nudge sorted times so consecutive gaps are >= MIN_UPDATE_SPACING.

    Works in a single forward pass, then clamps into the window with a
    backward pass if the last update overflowed.
    """
    if not times:
        return times
    out = list(times)
    for i in range(1, len(out)):
        if out[i] - out[i - 1] < MIN_UPDATE_SPACING:
            out[i] = out[i - 1] + MIN_UPDATE_SPACING
    overflow = out[-1] - (duration - MIN_UPDATE_SPACING)
    if overflow > 0:
        # Shift the tail back; spacing was already >= MIN so walking
        # backwards preserves it.
        out[-1] = duration - MIN_UPDATE_SPACING
        for i in range(len(out) - 2, -1, -1):
            if out[i + 1] - out[i] < MIN_UPDATE_SPACING:
                out[i] = out[i + 1] - MIN_UPDATE_SPACING
        if out[0] < 0:
            raise ValueError("updates do not fit in the window with minimum spacing")
    return out


def generate_table2_traces(
    rngs: RngRegistry, *, specs: Sequence[NewsTraceSpec] = TABLE2_SPECS
) -> dict[str, UpdateTrace]:
    """Generate all Table 2 traces keyed by their short names."""
    inverse = {spec.name: key for key, spec in TABLE2_BY_KEY.items()}
    traces: dict[str, UpdateTrace] = {}
    for spec in specs:
        key = inverse.get(spec.name, spec.name)
        generator = NewsTraceGenerator(rngs.stream(f"news.{key}"))
        traces[key] = generator.generate(spec, object_id=key)
    return traces
